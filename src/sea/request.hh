/**
 * @file
 * The unified PAL request/response API.
 *
 * One request type and one report type front every execution backend in
 * the registry (backend/registry.hh): the one-shot SEA path (Section 4's
 * measured reality), the multi-PAL service on the recommended hardware
 * (Section 5/6's proposal), and the simulated modern-TEE cost models
 * (SGX process enclaves, SEV-SNP/TDX VM TEEs, TrustZone world switches).
 *
 * Callers describe *what* to run (a Pal, its input), *where* (a backend
 * name; empty means the native service scheduler), and *how it matters*
 * (deadline, priority, attestation). The report answers with the output,
 * a canonical PhaseBreakdown along the cost axes every TEE family shares
 * (launch / compute / transition / attestation / teardown), and
 * capability-tagged ReportSections carrying each backend's
 * family-specific costs, counters, and evidence. A backend populates
 * only the sections for capabilities it implements -- adding a backend
 * never widens these structs.
 */

#ifndef MINTCB_SEA_REQUEST_HH
#define MINTCB_SEA_REQUEST_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/simtime.hh"
#include "common/types.hh"
#include "sea/capability.hh"
#include "sea/pal.hh"
#include "tpm/tpm.hh"

namespace mintcb::rec
{
class PalHooks; // sea/ cannot depend on rec/ headers (layering)
}

namespace mintcb::sea
{

class SealedStateStore;

/** Work a service-backed PAL performs inside its protected slices,
 *  with sealed-state access through the hooks; returns the PAL output.
 *  (The one-shot backends use Pal::body() instead.) */
using SecureBody =
    std::function<Result<Bytes>(rec::PalHooks &, const Bytes &)>;

/** Everything the untrusted OS submits to run one PAL. Construct with
 *  the identity and input, then set the scheduling fields that matter:
 *
 *      PalRequest req(pal, input);
 *      req.priority = 2;
 *      req.deadline = machine.now() + Duration::seconds(5);
 */
struct PalRequest
{
    explicit PalRequest(Pal pal_, Bytes input_ = {})
        : pal(std::move(pal_)), input(std::move(input_))
    {
    }

    Pal pal;     //!< measured identity + one-shot behavior
    Bytes input; //!< parameters from the untrusted world

    /** Registered backend to execute on. Empty means the native
     *  recommended-hardware scheduler inside the execution service
     *  (equivalent to "rec-service"); any other name is resolved
     *  against the service's BackendRegistry at submit time. */
    std::string backend;

    /** Absolute virtual-time deadline; epoch (default) means none. */
    TimePoint deadline{};

    /** Higher runs sooner; the service ages waiting requests so low
     *  priorities cannot starve. */
    int priority = 0;

    /** Request attestation evidence as the PAL exits. Fails closed at
     *  submit when the chosen backend lacks Capability::attestation. */
    bool wantQuote = false;

    /** Shard-affinity key for the sharded execution service: requests
     *  with the same key always land on the same shard (one simulated
     *  machine + TPM), so work targeting the same sealed state never
     *  runs on two shards concurrently. 0 (default) derives the key
     *  from the PAL's name. */
    std::uint64_t affinity = 0;

    /** Durable home for this PAL's sealed state (not part of the wire
     *  encoding, like secureBody): backends expose it to the body via
     *  PalContext::stateStore() / PalHooks::stateStore(). Null keeps
     *  the classic sealed-blob-through-output arrangement. */
    SealedStateStore *stateStore = nullptr;

    /** @name Service-backend execution shape.
     * The execution service runs PALs in preemptible slices; it needs
     * the compute demand up front and an optional slice-safe body.
     * @{ */
    std::size_t dataPages = 1;  //!< SECB data pages
    Duration slicedCompute{};   //!< preemptible compute demand
    SecureBody secureBody;      //!< runs on the final slice (may be null)
    /** @} */
};

/**
 * The canonical cross-architecture latency axes. Every TEE family pays
 * these five costs; only their magnitudes differ (the SoK's comparison
 * table). Family-specific detail lives in ExecutionReport::sections.
 */
struct PhaseBreakdown
{
    Duration launch;      //!< entering the protected environment
                          //!< (suspend+SKINIT, ECREATE..EINIT, VM
                          //!< launch-measure, TA session open)
    Duration compute;     //!< application-specific work
    Duration transition;  //!< boundary crossings while running (seal/
                          //!< unseal, ECALL/OCALL, VM exits, SMCs)
    Duration attestation; //!< evidence generation (when requested)
    Duration teardown;    //!< leaving the environment (resume OS,
                          //!< EREMOVE, TA session close)

    Duration total() const
    {
        return launch + compute + transition + attestation + teardown;
    }
};

/** The answer to one PalRequest. */
struct ExecutionReport
{
    std::uint64_t requestId = 0; //!< service-assigned; 0 for one-shot
    std::string palName;
    std::string backend;         //!< backend that executed the request
    Status status = okStatus();  //!< the PAL's application result

    Bytes output;         //!< PAL output to the untrusted OS
    Bytes palMeasurement; //!< SHA-1 identity of the measured code

    tpm::TpmQuote quote; //!< TPM-backed backends, when wantQuote
    bool quoted = false;

    PhaseBreakdown phases;

    /** Family-specific costs, counters, and evidence, keyed by the
     *  capability that produced them. A backend appends its sections
     *  in one fixed order so encodings stay deterministic. */
    std::vector<ReportSection> sections;

    /** The section for @p c, created (empty) on first use. */
    ReportSection &section(Capability c);
    /** The section for @p c, or nullptr when the backend has none. */
    const ReportSection *findSection(Capability c) const;

    /** @name Section lookups (zero / nullptr when absent). @{ */
    Duration cost(Capability c, const std::string &name) const;
    std::uint64_t count(Capability c, const std::string &name) const;
    const Bytes *evidence(Capability c, const std::string &name) const;
    /** @} */

    /** @name Service-side lifecycle timestamps (platform time). @{ */
    TimePoint submittedAt;
    TimePoint startedAt;  //!< first protected entry
    TimePoint finishedAt; //!< session end
    /** @} */

    Duration queueWait; //!< startedAt - submittedAt
    Duration total;     //!< finishedAt - startedAt

    std::uint64_t launches = 0; //!< protected entries (one-shot: 1)
    std::uint64_t yields = 0;   //!< preemptions + voluntary SYIELDs
    CpuId cpu = 0;              //!< core that ran (last ran) the PAL
    std::uint32_t shard = 0;    //!< sharded service: executing shard
                                //!< (deterministic affinity, not the
                                //!< host worker); 0 for inline drains

    /** True when no deadline was set or finishedAt met it. */
    bool deadlineMet = true;

    /** Deterministic byte serialization; byte-equal encodings mean
     *  byte-equal reports (the determinism tests compare these). */
    Bytes encode() const;
};

} // namespace mintcb::sea

#endif // MINTCB_SEA_REQUEST_HH
