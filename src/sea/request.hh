/**
 * @file
 * The unified PAL request/response API.
 *
 * One request type and one report type serve both execution backends:
 *
 *  - the legacy one-shot SEA path (SeaDriver::run: suspend OS, SKINIT,
 *    run to completion, resume -- Section 4's measured reality), and
 *  - the multi-PAL execution service on the recommended hardware
 *    (sea::ExecutionService: SLAUNCH slices under a preemption timer,
 *    Section 5/6's proposal).
 *
 * Callers describe *what* to run (a Pal, its input) and *how it matters*
 * (deadline, priority, attestation); the report answers with the output,
 * identity evidence, and a phase-by-phase latency breakdown that is a
 * superset of both backends' cost structures. Fields a backend does not
 * model stay zero.
 */

#ifndef MINTCB_SEA_REQUEST_HH
#define MINTCB_SEA_REQUEST_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.hh"
#include "common/simtime.hh"
#include "common/types.hh"
#include "sea/pal.hh"
#include "tpm/tpm.hh"

namespace mintcb::rec
{
class PalHooks; // sea/ cannot depend on rec/ headers (layering)
}

namespace mintcb::sea
{

/** Work a service-backed PAL performs inside its protected slices,
 *  with sealed-state access through the hooks; returns the PAL output.
 *  (The one-shot backend uses Pal::body() instead.) */
using SecureBody =
    std::function<Result<Bytes>(rec::PalHooks &, const Bytes &)>;

/** Everything the untrusted OS submits to run one PAL. Construct with
 *  the identity and input, then set the scheduling fields that matter:
 *
 *      PalRequest req(pal, input);
 *      req.priority = 2;
 *      req.deadline = machine.now() + Duration::seconds(5);
 */
struct PalRequest
{
    explicit PalRequest(Pal pal_, Bytes input_ = {})
        : pal(std::move(pal_)), input(std::move(input_))
    {
    }

    Pal pal;     //!< measured identity + one-shot behavior
    Bytes input; //!< parameters from the untrusted world

    /** Absolute virtual-time deadline; epoch (default) means none. */
    TimePoint deadline{};

    /** Higher runs sooner; the service ages waiting requests so low
     *  priorities cannot starve. */
    int priority = 0;

    /** Request a sePCR quote as the PAL exits (service backend). */
    bool wantQuote = false;

    /** Shard-affinity key for the sharded execution service: requests
     *  with the same key always land on the same shard (one simulated
     *  machine + TPM), so work targeting the same sealed state never
     *  runs on two shards concurrently. 0 (default) derives the key
     *  from the PAL's name. */
    std::uint64_t affinity = 0;

    /** @name Service-backend execution shape.
     * The execution service runs PALs in preemptible slices; it needs
     * the compute demand up front and an optional slice-safe body.
     * @{ */
    std::size_t dataPages = 1;  //!< SECB data pages
    Duration slicedCompute{};   //!< preemptible compute demand
    SecureBody secureBody;      //!< runs on the final slice (may be null)
    /** @} */
};

/** Phase-by-phase latency breakdown (superset of both backends). */
struct PhaseBreakdown
{
    Duration suspendOs;   //!< one-shot: save untrusted state in place
    Duration lateLaunch;  //!< SKINIT/SENTER or first SLAUNCH
    Duration palCompute;  //!< application-specific work
    Duration seal;        //!< TPM_Seal / sePCR seal calls
    Duration unseal;      //!< TPM_Unseal / sePCR unseal calls
    Duration resumeOs;    //!< one-shot: restore the untrusted world
    Duration quote;       //!< attestation generation (when requested)
};

/** The answer to one PalRequest. */
struct ExecutionReport
{
    std::uint64_t requestId = 0; //!< service-assigned; 0 for one-shot
    std::string palName;
    Status status = okStatus();  //!< the PAL's application result

    Bytes output;           //!< PAL output to the untrusted OS
    Bytes palMeasurement;   //!< SHA-1 identity of the measured code
    Bytes pcr17AfterLaunch; //!< PCR 17 evidence (one-shot backend)

    tpm::TpmQuote quote; //!< filled when wantQuote was honored
    bool quoted = false;

    PhaseBreakdown phases;

    /** Wasted compute on halted sibling cores (one-shot backend only;
     *  the service keeps siblings productive). */
    Duration siblingStall;

    /** @name Service-side lifecycle timestamps (platform time). @{ */
    TimePoint submittedAt;
    TimePoint startedAt;  //!< first SLAUNCH (one-shot: session start)
    TimePoint finishedAt; //!< SFREE / session end
    /** @} */

    Duration queueWait; //!< startedAt - submittedAt
    Duration total;     //!< finishedAt - startedAt

    std::uint64_t launches = 0; //!< SLAUNCHes (one-shot: 1)
    std::uint64_t yields = 0;   //!< preemptions + voluntary SYIELDs
    CpuId cpu = 0;              //!< core that ran (last ran) the PAL
    std::uint32_t shard = 0;    //!< sharded service: executing shard
                                //!< (deterministic affinity, not the
                                //!< host worker); 0 for inline drains

    /** True when no deadline was set or finishedAt met it. */
    bool deadlineMet = true;

    /** Deterministic byte serialization; byte-equal encodings mean
     *  byte-equal reports (the determinism tests compare these). */
    Bytes encode() const;
};

} // namespace mintcb::sea

#endif // MINTCB_SEA_REQUEST_HH
