/**
 * @file
 * PAL implementation.
 */

#include "sea/pal.hh"

#include "common/hex.hh"
#include "crypto/sha1.hh"
#include "latelaunch/slb.hh"
#include "machine/vmswitch.hh"

namespace mintcb::sea
{

Pal
Pal::fromLogic(std::string name, std::size_t code_bytes, PalBody body)
{
    // Deterministic code image: a SHA-1-seeded byte stream over the name,
    // so the measured identity tracks the logical identity.
    Bytes code(code_bytes);
    const Bytes seed = crypto::Sha1::digestBytes(asciiBytes(name));
    Rng rng(static_cast<std::uint64_t>(seed[0]) << 32 |
            static_cast<std::uint64_t>(seed[1]) << 24 |
            static_cast<std::uint64_t>(seed[2]) << 16 |
            static_cast<std::uint64_t>(seed[3]) << 8 | seed[4]);
    Bytes filler = rng.bytes(code_bytes);
    code = std::move(filler);
    return Pal(std::move(name), std::move(code), std::move(body));
}

std::size_t
Pal::slbBytes() const
{
    return code_.size() + latelaunch::slbHeaderBytes;
}

Bytes
Pal::slbImage() const
{
    auto slb = latelaunch::Slb::wrap(code_);
    // PALs are size-validated at construction sites; an oversized PAL is
    // a programmer error here.
    assert(slb.ok() && "PAL exceeds the 64 KB SLB limit");
    return slb->image();
}

Bytes
Pal::measurement() const
{
    return crypto::Sha1::digestBytes(slbImage());
}

Bytes
Pal::expectedPcr17() const
{
    const Bytes zero(crypto::sha1DigestSize, 0x00);
    crypto::Sha1 ctx;
    ctx.update(zero);
    ctx.update(measurement());
    const auto digest = ctx.finish();
    return Bytes(digest.begin(), digest.end());
}

PalContext::PalContext(machine::Machine &machine, CpuId cpu, Bytes input)
    : machine_(machine), cpu_(cpu), input_(std::move(input))
{
}

std::vector<std::size_t>
PalContext::identityPcrs() const
{
    if (machine_.spec().cpuVendor == machine::CpuVendor::intel)
        return {tpm::dynamicLaunchPcr, tpm::intelMlePcr};
    return {tpm::dynamicLaunchPcr};
}

Result<tpm::SealedBlob>
PalContext::sealState(const Bytes &state)
{
    if (!machine_.hasTpm()) {
        return Error(Errc::unavailable,
                     "sealed storage requires a TPM on this platform");
    }
    auto &the_tpm = tpm();
    const TimePoint start = cpu().now();
    auto blob = the_tpm.seal(state, identityPcrs());
    sealTime_ += cpu().now() - start;
    return blob;
}

Result<Bytes>
PalContext::unsealState(const tpm::SealedBlob &blob)
{
    if (!machine_.hasTpm()) {
        return Error(Errc::unavailable,
                     "sealed storage requires a TPM on this platform");
    }
    auto &the_tpm = tpm();
    const TimePoint start = cpu().now();
    auto state = the_tpm.unseal(blob);
    unsealTime_ += cpu().now() - start;
    return state;
}

} // namespace mintcb::sea
