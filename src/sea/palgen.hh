/**
 * @file
 * The paper's two generic PALs (Section 4.1) and the Figure 2 harness.
 *
 * "The first PAL (PAL Gen) launches, generates application-specific
 * data, seals the data using the TPM's sealed storage capability, and
 * exits. ... The second PAL (PAL Use) launches, unseals data sealed
 * during a previous session, and operates on that data. It optionally
 * reseals the data and exits."
 */

#ifndef MINTCB_SEA_PALGEN_HH
#define MINTCB_SEA_PALGEN_HH

#include "common/result.hh"
#include "sea/session.hh"

namespace mintcb::sea
{

/** Payload sizes behind the paper's two Broadcom seal numbers: PAL Gen
 *  seals a fresh keypair-sized blob (20.01 ms), PAL Use re-seals compact
 *  working state (11.39 ms). */
inline constexpr std::size_t palGenPayloadBytes = 416;
inline constexpr std::size_t palUsePayloadBytes = 128;

/** One Figure 2 sample: the overhead components of a generic session. */
struct GenericPalReport
{
    ExecutionReport session; //!< full report (phase breakdown in .phases)
    tpm::SealedBlob blob;    //!< sealed state handed to the OS
    Duration quote;          //!< TPM_Quote cost, measured separately
};

/** Build the PAL Gen piece of application logic (4 KB of code). */
Pal makePalGen();

/** Build the PAL Use piece of application logic. */
Pal makePalUse(const tpm::SealedBlob &previous_state, bool reseal);

/**
 * Run a complete PAL Gen session on @p driver's machine: late launch,
 * generate palGenPayloadBytes of data, seal to the PAL identity, exit.
 */
Result<GenericPalReport> runPalGen(SeaDriver &driver, CpuId cpu = 0);

/**
 * Run a complete PAL Use session: late launch, unseal @p state, mutate
 * it, optionally reseal, exit.
 */
Result<GenericPalReport> runPalUse(SeaDriver &driver,
                                   const tpm::SealedBlob &state,
                                   bool reseal, CpuId cpu = 0);

/** Measure a standalone TPM_Quote over the dynamic PCRs (the
 *  attestation leg of Figure 2). */
Result<Duration> measureQuote(machine::Machine &machine, CpuId cpu = 0);

} // namespace mintcb::sea

#endif // MINTCB_SEA_PALGEN_HH
