/**
 * @file
 * Work-stealing pool implementation.
 */

#include "sea/workerpool.hh"

namespace mintcb::sea
{

WorkerPool::WorkerPool(unsigned workers)
    : queues_(workers == 0 ? 1 : workers)
{
    threads_.reserve(queues_.size());
    for (unsigned w = 0; w < queues_.size(); ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

WorkerPool::~WorkerPool()
{
    shutdown();
}

void
WorkerPool::submit(std::function<void()> task, unsigned hint)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_)
            return;
        queues_[hint % queues_.size()].push_back(std::move(task));
        ++queued_;
    }
    workCv_.notify_one();
}

std::function<void()>
WorkerPool::claimLocked(unsigned self)
{
    // Own queue first, oldest task (submission order within a shard's
    // home worker).
    if (!queues_[self].empty()) {
        auto task = std::move(queues_[self].front());
        queues_[self].pop_front();
        return task;
    }
    // Steal the oldest task from the most loaded peer: oldest tasks
    // are the longest-waiting shards, and the most loaded peer is the
    // one whose backlog most needs spreading.
    std::size_t victim = queues_.size();
    std::size_t victim_depth = 0;
    for (std::size_t q = 0; q < queues_.size(); ++q) {
        if (q != self && queues_[q].size() > victim_depth) {
            victim = q;
            victim_depth = queues_[q].size();
        }
    }
    if (victim == queues_.size())
        return {};
    auto task = std::move(queues_[victim].front());
    queues_[victim].pop_front();
    ++stats_.steals;
    return task;
}

void
WorkerPool::workerLoop(unsigned self)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        std::function<void()> task = claimLocked(self);
        if (!task) {
            if (stop_)
                return;
            workCv_.wait(lock);
            continue;
        }
        --queued_;
        ++inFlight_;
        lock.unlock();
        task();
        lock.lock();
        --inFlight_;
        ++stats_.executed;
        if (queued_ == 0 && inFlight_ == 0)
            idleCv_.notify_all();
    }
}

void
WorkerPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idleCv_.wait(lock, [this] { return queued_ == 0 && inFlight_ == 0; });
}

void
WorkerPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_ && threads_.empty())
            return;
        stop_ = true;
        for (auto &q : queues_) {
            stats_.discarded += q.size();
            queued_ -= q.size();
            q.clear();
        }
        if (queued_ == 0 && inFlight_ == 0)
            idleCv_.notify_all();
    }
    workCv_.notify_all();
    for (std::thread &t : threads_) {
        if (t.joinable())
            t.join();
    }
    threads_.clear();
    // Discarding may have emptied everything while wait()ers slept.
    idleCv_.notify_all();
}

WorkerPool::Stats
WorkerPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace mintcb::sea
