/**
 * @file
 * Measured boot implementation.
 */

#include "sea/measuredboot.hh"

#include <algorithm>
#include <set>

#include "crypto/sha1.hh"

namespace mintcb::sea
{

MeasuredBoot::MeasuredBoot(machine::Machine &machine) : machine_(machine)
{
}

Status
MeasuredBoot::loadComponent(BootLayer layer, const std::string &name,
                            const Bytes &image, CpuId cpu)
{
    if (!machine_.hasTpm())
        return Error(Errc::unavailable, "measured boot requires a TPM");
    const Bytes measurement = crypto::Sha1::digestBytes(image);
    const auto pcr = static_cast<std::uint32_t>(layer);
    if (auto s = machine_.tpmAs(cpu).pcrExtend(pcr, measurement); !s.ok())
        return s;
    log_.append({pcr, name, measurement});
    return okStatus();
}

Status
MeasuredBoot::bootTypicalStack(CpuId cpu)
{
    // A representative 2007 stack; every layer below the application is
    // in the application's TCB under trusted boot (Section 1's layered
    // architecture complaint).
    struct Component
    {
        BootLayer layer;
        const char *name;
        std::size_t bytes;
    };
    const Component stack[] = {
        {BootLayer::bios, "bios-1.24", 512 * 1024 / 8},
        {BootLayer::firmware, "nic-oprom", 16 * 1024},
        {BootLayer::firmware, "raid-oprom", 24 * 1024},
        {BootLayer::bootloader, "grub-stage1", 512},
        {BootLayer::bootloader, "grub-stage2", 120 * 1024},
        {BootLayer::kernel, "vmlinuz-2.6.20", 1800 * 1024 / 8},
        {BootLayer::kernel, "initrd", 900 * 1024 / 8},
        {BootLayer::application, "init", 40 * 1024},
        {BootLayer::application, "sshd", 300 * 1024 / 8},
    };
    Rng rng(0xb007);
    for (const Component &c : stack) {
        if (auto s = loadComponent(c.layer, c.name, rng.bytes(c.bytes),
                                   cpu);
            !s.ok()) {
            return s;
        }
    }
    return okStatus();
}

std::vector<std::size_t>
MeasuredBoot::coveredPcrs() const
{
    std::set<std::size_t> indices;
    for (const tpm::MeasuredEvent &e : log_.events())
        indices.insert(e.pcrIndex);
    return std::vector<std::size_t>(indices.begin(), indices.end());
}

Result<Attestation>
MeasuredBoot::attest(const Bytes &nonce, CpuId cpu)
{
    if (!machine_.hasTpm())
        return Error(Errc::unavailable, "no TPM to quote");
    auto quote = machine_.tpmAs(cpu).quote(nonce, coveredPcrs());
    if (!quote)
        return quote.error();
    Attestation a;
    a.quote = quote.take();
    a.aikCert = PrivacyCa::instance().issue(machine_.tpm().aikPublic(),
                                            "trusted-boot-platform");
    return a;
}

void
BootVerifier::trustComponent(const std::string &name, Bytes measurement)
{
    whitelist_[name] = std::move(measurement);
}

Status
BootVerifier::verify(const Attestation &attestation,
                     const tpm::EventLog &log,
                     const Bytes &expected_nonce) const
{
    if (auto s = PrivacyCa::instance().validate(attestation.aikCert);
        !s.ok()) {
        return s.error();
    }
    auto aik = crypto::RsaPublicKey::decode(attestation.aikCert.aikPublic);
    if (!aik)
        return aik.error();
    if (auto s = tpm::verifyQuote(*aik, attestation.quote,
                                  expected_nonce);
        !s.ok()) {
        return s.error();
    }

    // Replay the log and require the quoted PCRs to match exactly.
    const auto replayed = log.replay();
    for (std::size_t i = 0; i < attestation.quote.selection.size(); ++i) {
        auto it = replayed.find(attestation.quote.selection[i]);
        if (it == replayed.end() ||
            it->second != attestation.quote.values[i]) {
            return Error(Errc::integrityFailure,
                         "event log does not reproduce the quoted PCRs");
        }
    }

    // Every logged component must be known good -- the whole stack is
    // in the TCB.
    for (const tpm::MeasuredEvent &e : log.events()) {
        auto it = whitelist_.find(e.description);
        if (it == whitelist_.end()) {
            return Error(Errc::permissionDenied,
                         "unknown component in boot log: " +
                             e.description);
        }
        if (it->second != e.measurement) {
            return Error(Errc::permissionDenied,
                         "component measurement mismatch: " +
                             e.description);
        }
    }
    return okStatus();
}

} // namespace mintcb::sea
