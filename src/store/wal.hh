/**
 * @file
 * MWL1: the sealed-store write-ahead log record format.
 *
 * The engine's durability story is a log of length-prefixed,
 * CRC-guarded records in the MGW1 framing idiom (net/wire.hh), written
 * append-only and fsync'd at batch-commit boundaries:
 *
 *     u32 magic   "MWL1" (0x4d574c31)
 *     u16 version (walVersion; mismatches are refused, never guessed)
 *     u16 type    (RecordType)
 *     u32 length  (payload bytes that follow; <= maxWalPayload)
 *     ...payload...
 *     u32 crc32   (IEEE, over magic..payload)
 *
 * The CRC is *not* the integrity story -- it is keyless, so an
 * adversarial disk can forge it. It exists to make torn tails and bit
 * rot detectable without unsealing anything: a scan walks records
 * until the first short/corrupt one and reports how many bytes were
 * well-formed, which is exactly the prefix recovery may trust
 * structurally. Authenticity of mutations comes from a per-generation
 * log key (sealed to the store's PAL identity in a keyBlob record);
 * every mutation and commit record carries an HMAC under that key, and
 * replay order is pinned by the sequence number inside the MAC.
 */

#ifndef MINTCB_STORE_WAL_HH
#define MINTCB_STORE_WAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/types.hh"

namespace mintcb::store
{

/** WAL record magic: "MWL1". */
inline constexpr std::uint32_t walMagic = 0x4d574c31;

/** Record-layout revision carried in every record header. */
inline constexpr std::uint16_t walVersion = 1;

/** Fixed record-header size on disk (magic + version + type + length). */
inline constexpr std::size_t walHeaderBytes = 12;

/** Trailing CRC size. */
inline constexpr std::size_t walCrcBytes = 4;

/** Upper bound on one record's payload (a corrupted length field must
 *  not make replay allocate unbounded memory). */
inline constexpr std::size_t maxWalPayload = 1u << 20;

/** Record kinds. A generation opens with exactly one keyBlob record;
 *  mutations accumulate until a commit record closes the batch. */
enum class RecordType : std::uint16_t
{
    keyBlob = 1, //!< sealed per-generation log key (SealedBlob bytes)
    put = 2,     //!< encrypted+MAC'd {key, value} insert/overwrite
    remove = 3,  //!< encrypted+MAC'd {key} erase
    commit = 4,  //!< batch boundary: epoch + covered sequence + MAC
};

/** Printable record-type name (logs, the inspect tool, tests). */
const char *recordTypeName(RecordType t);

/** One parsed record. */
struct WalRecord
{
    RecordType type = RecordType::commit;
    Bytes payload;
};

/** IEEE CRC32 over @p len bytes of @p data starting at @p offset. */
std::uint32_t crc32(const Bytes &data, std::size_t offset,
                    std::size_t len);

/** Append one framed record (header + payload + CRC) to @p out. */
void appendRecord(Bytes &out, RecordType type, const Bytes &payload);

/** Result of a structural scan over a WAL image. */
struct WalScan
{
    std::vector<WalRecord> records; //!< every well-formed record
    /** File offset one past each record (records[i] ends at
     *  recordEnds[i]); recovery truncates uncommitted tails to the
     *  last committed boundary using these. */
    std::vector<std::size_t> recordEnds;
    std::size_t validBytes = 0;     //!< prefix length that parsed clean
    bool torn = false;              //!< scan stopped before end-of-file
    std::string tornReason;         //!< why (short header, bad CRC, ...)
};

/**
 * Walk @p image from the front, collecting records until end-of-file
 * or the first structural defect. Total: any byte string in, a clean
 * WalScan out -- a torn tail or flipped bit is data, not an error.
 */
WalScan scanWal(const Bytes &image);

/** @name Authenticated mutation payloads.
 * put/remove payload layout: u64 seq | u32 ctLen | ct | 32-byte MAC.
 * The plaintext (u8 op | str key | lengthPrefixed value) is encrypted
 * with an HMAC-SHA256 keystream under the generation log key and
 * MAC'd as HMAC(logKey, "mwl-rec" || seq || ct); commit payloads are
 * u64 epoch | u64 upToSeq | 32-byte MAC with
 * HMAC(logKey, "mwl-commit" || epoch || upToSeq). @{ */

/** A decrypted, authenticated mutation. */
struct Mutation
{
    bool isRemove = false;
    std::string key;
    Bytes value; //!< empty for removes
    std::uint64_t seq = 0;
};

/** Encode + encrypt + MAC one mutation under @p log_key. */
Bytes encodeMutation(const Bytes &log_key, const Mutation &m);

/** Decrypt + verify one put/remove payload. Fails with integrityFailure
 *  on a MAC mismatch (forged or re-keyed record). */
Result<Mutation> decodeMutation(const Bytes &log_key,
                                const Bytes &payload,
                                bool is_remove);

/** A batch-commit marker. */
struct CommitMark
{
    std::uint64_t epoch = 0;   //!< strictly monotone per generation lineage
    std::uint64_t upToSeq = 0; //!< last mutation sequence it covers
};

/** Encode + MAC one commit marker under @p log_key. */
Bytes encodeCommit(const Bytes &log_key, const CommitMark &mark);

/** Verify + decode one commit payload. */
Result<CommitMark> decodeCommit(const Bytes &log_key,
                                const Bytes &payload);

/** @} */

/** Exact on-disk payload size encodeMutation would produce for a
 *  mutation with these key/value sizes. The engine bounds mutations
 *  against maxWalPayload with this *before* journaling anything, so a
 *  record the replay scanner would refuse as oversized can never be
 *  committed in the first place. */
std::size_t encodedMutationBytes(std::size_t key_bytes,
                                 std::size_t value_bytes);

/**
 * Derive a replacement generation key from the previous one.
 *
 * The machine RNG is seeded and restarts from the same position on
 * every open, so a raw rng draw after a crash can reproduce bytes an
 * earlier instance already turned into a key (or published). Chaining
 * through the previous key -- which only ever exists unsealed inside
 * an engine -- keeps every generation's keystream distinct even at
 * colliding RNG positions: HMAC(prev_key, "mwl-rekey" || lp(fresh) ||
 * counter).
 */
Bytes chainedGenerationKey(const Bytes &prev_key, const Bytes &fresh,
                           std::uint64_t counter);

} // namespace mintcb::store

#endif // MINTCB_STORE_WAL_HH
