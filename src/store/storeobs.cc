/**
 * @file
 * Store metrics bridge implementation.
 */

#include "store/storeobs.hh"

namespace mintcb::store
{

void
bridgeStoreStats(obs::MetricsRegistry &registry,
                 const StoreStats &stats, obs::Labels labels)
{
    const StoreStats *s = &stats;
    auto counter = [&](const char *name, const char *help,
                       const std::uint64_t StoreStats::*field) {
        registry.addCallback(
            name, help, labels,
            [s, field] { return static_cast<double>(s->*field); },
            "counter");
    };

    counter("store_wal_records_appended_total",
            "WAL records appended (mutations and commit marks)",
            &StoreStats::walRecordsAppended);
    counter("store_wal_bytes_appended_total",
            "Framed WAL bytes appended",
            &StoreStats::walBytesAppended);
    counter("store_commits_total",
            "Durable batch commits (fsync + counter advance)",
            &StoreStats::commits);
    counter("store_checkpoints_total",
            "Snapshot checkpoints with log compaction",
            &StoreStats::checkpoints);
    counter("store_fsyncs_total", "WAL fsync calls",
            &StoreStats::fsyncs);
    counter("store_recoveries_total",
            "Opens that replayed an existing WAL",
            &StoreStats::recoveries);
    counter("store_records_replayed_total",
            "WAL records examined during recovery",
            &StoreStats::recordsReplayed);
    counter("store_commits_replayed_total",
            "Commit marks verified during recovery",
            &StoreStats::commitsReplayed);
    counter("store_torn_bytes_discarded_total",
            "Torn-tail bytes truncated during recovery",
            &StoreStats::tornBytesDiscarded);
    counter("store_uncommitted_discarded_total",
            "Uncommitted mutations discarded during recovery",
            &StoreStats::uncommittedDiscarded);
    counter("store_recovery_rekeys_total",
            "Generations rotated after a truncating recovery",
            &StoreStats::recoveryRekeys);
    counter("store_rollback_rejections_total",
            "Opens refused because the durable epoch was behind the "
            "hardware counter",
            &StoreStats::rollbackRejections);
    counter("store_counter_repairs_total",
            "Forward repairs of a lost counter increment",
            &StoreStats::counterRepairs);
    counter("store_migrations_out_total",
            "Outbound attested migrations (store invalidated)",
            &StoreStats::migrationsOut);
    counter("store_migrations_in_total",
            "Inbound migration bundles adopted",
            &StoreStats::migrationsIn);
}

} // namespace mintcb::store
