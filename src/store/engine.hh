/**
 * @file
 * The durable sealed-state engine.
 *
 * SealedStore promotes the secure-kvstore example's state handling
 * into a first-class subsystem: a crash-safe, rollback-detecting,
 * migratable home for sealed PAL state.
 *
 * Durability: every mutation is journaled as an encrypted+MAC'd MWL1
 * record (store/wal.hh); commit() appends a commit record, fsyncs the
 * log, and only then advances the hardware freshness root. Periodic
 * checkpoints seal the whole map into a snapshot file and rewrite the
 * log down to a fresh generation (log compaction, new log key).
 *
 * Freshness: the store owns a TPM monotonic counter on its *identity
 * machine* -- a dedicated simulated platform that late-launched the
 * store identity PAL at open, exactly the AttestedIdentity idiom, so
 * seal/unseal traffic charges the store's own clocks and can never
 * perturb a service timeline (the PR 4 byte-identity argument). The
 * counter lives in chip NVRAM, persisted via Tpm::exportNvState to a
 * sidecar file *outside* the store directory: an adversary who rolls
 * the directory back to yesterday cannot roll the chip back with it,
 * so open() sees sealed epoch < hardware counter and refuses with a
 * typed rollback error instead of silently serving stale state.
 *
 * Crash safety: a StoreObserver receives a callback at every injected
 * sync point; returning true kills the engine on the spot (files
 * closed mid-state, all APIs dead), which is how the kill-point sweep
 * murders the store at each boundary and asserts recovery converges.
 */

#ifndef MINTCB_STORE_ENGINE_HH
#define MINTCB_STORE_ENGINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hh"
#include "machine/machine.hh"
#include "obs/span.hh"
#include "sea/attestation.hh"
#include "sea/pal.hh"
#include "sea/statestore.hh"
#include "store/wal.hh"

namespace mintcb::store
{

/** Where the engine is between two durability actions. Observers are
 *  invoked *after* the named action completed. */
enum class SyncPoint
{
    walAppended,      //!< a mutation record reached the OS file
    commitAppended,   //!< the commit record reached the OS file
    commitSynced,     //!< fsync returned: the batch is on the platter
    counterAdvanced,  //!< the hardware freshness counter incremented
    nvWritten,        //!< the chip-NV sidecar was rewritten
    snapshotReplaced, //!< the checkpoint atomically replaced the old one
    walRewritten,     //!< the log was compacted to a fresh generation
};

/** Printable sync-point name (the kill-point sweep's test labels). */
const char *syncPointName(SyncPoint p);

/** Crash-injection hook: return true to kill the engine immediately
 *  after the named sync point (modeling power loss at that boundary). */
class StoreObserver
{
  public:
    virtual ~StoreObserver() = default;
    virtual bool
    onSyncPoint(SyncPoint point, std::uint64_t epoch)
    {
        (void)point;
        (void)epoch;
        return false;
    }
};

/** Engine observability (bridged to store_* metrics by storeobs.hh). */
struct StoreStats
{
    std::uint64_t walRecordsAppended = 0;
    std::uint64_t walBytesAppended = 0;
    std::uint64_t commits = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t recoveries = 0;          //!< opens that replayed a log
    std::uint64_t recordsReplayed = 0;
    std::uint64_t commitsReplayed = 0;
    std::uint64_t tornBytesDiscarded = 0;  //!< truncated torn tails
    std::uint64_t uncommittedDiscarded = 0; //!< mutations past last commit
    std::uint64_t recoveryRekeys = 0; //!< generations rotated after a
                                      //!< truncating recovery
    std::uint64_t rollbackRejections = 0;
    std::uint64_t counterRepairs = 0; //!< commit durable, increment lost
    std::uint64_t migrationsOut = 0;
    std::uint64_t migrationsIn = 0;

    std::string str() const;
};

/** Engine tuning. */
struct StoreConfig
{
    /** Directory holding wal.mwl + snapshot.mss (the untrusted disk). */
    std::string dir;

    /** Chip-NV sidecar path; empty derives "<dir>.tpmnv". Deliberately
     *  *outside* dir: rolling the store directory back must not roll
     *  the chip back (that is the whole point of the counter). */
    std::string nvPath;

    /** Seed for the identity machine (same seed across restarts =>
     *  same SRK => old blobs still unseal). */
    std::uint64_t seed = 0x53544f52; // "STOR"

    machine::PlatformId platform = machine::PlatformId::hpDc5750;

    /** Auto-checkpoint after this many commits (0 = manual only). */
    std::size_t snapshotEvery = 64;

    /** Crash-injection hook (tests). */
    StoreObserver *observer = nullptr;

    /** Optional sim-time tracer: commits/checkpoints/recoveries land
     *  on obs::track::store. */
    obs::SpanTracer *tracer = nullptr;
};

class MigrationBundle;

/**
 * The engine. Thread-safe (one mutex over the public surface): PAL
 * bodies on several service workers may share one store; WAL order
 * then follows scheduling, but the *recovered contents* stay a pure
 * function of the committed mutations, which is what the worker-sweep
 * tests pin down.
 *
 *     auto store = SealedStore::open({.dir = "/var/lib/pal-state"});
 *     (*store)->put("ssh-host-key", sealedBytes);
 *     (*store)->commit();               // fsync + counter advance
 */
class SealedStore final : public sea::SealedStateStore
{
  public:
    /** Open (or create) the store at cfg.dir. Typed failures: a
     *  rolled-back directory is integrityFailure with a "rollback
     *  detected" message, never a silently accepted stale map. */
    static Result<std::unique_ptr<SealedStore>> open(StoreConfig cfg);

    ~SealedStore() override;

    SealedStore(const SealedStore &) = delete;
    SealedStore &operator=(const SealedStore &) = delete;

    /** @name Mutations (journaled immediately, durable at commit()). @{ */
    Status put(const std::string &key, const Bytes &value);
    Status remove(const std::string &key);
    /** Durably commit every mutation since the last commit: append the
     *  commit record, fsync, advance the hardware counter, persist the
     *  chip NV. No-op when nothing is pending. Any I/O failure after
     *  the commit record is appended kills the instance (a retry would
     *  write a duplicate epoch and double-advance the counter); reopen
     *  to repair. */
    Status commit();
    /** @} */

    /** @name Reads (in-memory map, including uncommitted writes). @{ */
    Result<Bytes> get(const std::string &key) const;
    bool has(const std::string &key) const;
    std::size_t size() const;
    std::vector<std::string> keys() const;
    /** @} */

    /** Seal the map into a snapshot and compact the log to a fresh
     *  generation (new log key). Refuses with uncommitted mutations. */
    Status checkpoint();

    /** @name sea::SealedStateStore (the PAL state hook).
     * store commits per call: a PAL front end that stored state must
     * be able to crash immediately after and find it on replay. @{ */
    Result<Bytes> loadSealedState(const std::string &name) override;
    Status storeSealedState(const std::string &name,
                            const Bytes &sealed) override;
    bool hasSealedState(const std::string &name) const override;
    /** @} */

    /** Committed epoch (equals the hardware counter when healthy). */
    std::uint64_t epoch() const;

    /** Mutations journaled since the last commit. */
    std::size_t pendingMutations() const;

    /** Canonical digest of (epoch, sorted map): equal digests mean
     *  equal recovered state, independent of WAL arrival order. */
    Bytes stateDigest() const;

    /** False after an injected crash or an outbound migration. */
    bool alive() const;

    const StoreStats &stats() const { return stats_; }
    const StoreConfig &config() const { return config_; }

    /** @name Migration support (driven by store/migrate.hh). @{ */
    /** The well-known store identity PAL (what a migration source
     *  whitelists before re-sealing state to a target). */
    static sea::Pal identityPal();
    /** This store's SRK public key, wire-encoded (what a target sends
     *  to the source so state can be re-sealed to its TPM). */
    Bytes srkPublicEncoded() const;
    /** Quote this store's PCR-17 identity over
     *  sha256(nonce || srkPublicEncoded()) -- binding the quoted
     *  launch to the SRK that will receive the re-sealed state. */
    Result<sea::Attestation> attestForMigration(const Bytes &nonce);
    /** Unseal the full map for re-sealing to a verified target, then
     *  invalidate this replica: the hardware counter advances with no
     *  matching commit, so every future open of this directory is a
     *  typed rollback rejection. Refuses with uncommitted mutations. */
    Result<Bytes> exportForMigration();
    /** Adopt a verified inbound bundle into an empty store. */
    Status adoptMigrated(const Bytes &snapshot_payload);
    /** @} */

    /** @name Introspection for tools and the kill-point harness. @{ */
    /** Bytes of the WAL known to be on the platter (post-fsync). */
    std::size_t syncedWalBytes() const;
    const std::string &walPath() const { return walPath_; }
    const std::string &snapshotPath() const { return snapPath_; }
    const std::string &nvPath() const { return nvPath_; }
    /** @} */

  private:
    friend class MigrationAuthority; //!< unseals inbound bundles

    explicit SealedStore(StoreConfig cfg);

    Status openInternal();
    Status launchIdentity();
    Status loadChipNv();
    Status persistChipNv();
    Result<Bytes> loadSnapshot(std::uint64_t *snap_epoch);
    Status replayWal(std::uint64_t snap_epoch);
    Status writeFreshWal();
    Status journalMutation(bool is_remove, const std::string &key,
                           const Bytes &value);
    Status checkpointLocked();
    Status sealSnapshotTo(const std::string &path,
                          std::uint64_t at_epoch);
    Bytes encodeMapPayload(std::uint64_t at_epoch) const;
    Status applyMapPayload(const Bytes &payload,
                           std::uint64_t *out_epoch);
    Result<Bytes> unsealWithDiagnosis(const tpm::SealedBlob &blob);
    Status die(const char *what);
    Status fatal(Status cause, const char *what);
    Bytes srkPublicEncodedLocked() const;
    bool observe(SyncPoint point);
    Status requireAlive() const;
    Status fsyncWal();
    void traceInstant(const char *name);

    StoreConfig config_;
    std::string walPath_;
    std::string snapPath_;
    std::string nvPath_;

    /** Mutable: the TPM front end charges sim time on every access,
     *  so even logically-const reads (the SRK public key) tick it. */
    mutable machine::Machine idMachine_;
    Status launchStatus_;
    std::uint32_t counterHandle_ = 0;

    mutable std::mutex mu_;
    std::map<std::string, Bytes> map_;
    std::uint64_t epoch_ = 0;
    Bytes logKey_;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t lastJournaledSeq_ = 0;
    std::size_t pending_ = 0;
    std::size_t commitsSinceCheckpoint_ = 0;
    int walFd_ = -1;
    std::size_t walBytes_ = 0;
    std::size_t syncedBytes_ = 0;
    /** Recovery discarded bytes (torn tail or uncommitted records): a
     *  partially written record's ciphertext may survive on the
     *  attacker-visible disk under a sequence number a new write would
     *  reuse, so open() must rotate the generation before serving. */
    bool truncatedOnRecovery_ = false;
    bool dead_ = false;
    std::string deadReason_;

    StoreStats stats_;
};

} // namespace mintcb::store

#endif // MINTCB_STORE_ENGINE_HH
