/**
 * @file
 * Attested state migration between sealed stores.
 *
 * Sealed state is useless on another machine: the SRK never leaves the
 * TPM, so a copied store directory cannot be unsealed elsewhere -- and
 * that is the correct default. Migration is the deliberate exception,
 * and it must not weaken the sealing story on the way through:
 *
 *   1. the source issues a fresh challenge nonce;
 *   2. the *target* store quotes its PCR-17 launch identity over
 *      sha256(nonce || targetSrk) -- binding the attested launch to
 *      the exact key that will receive the state;
 *   3. the source verifies the quote against the well-known store
 *      identity PAL (sea::Verifier: CA chain, signature, freshness,
 *      whitelist) and only then unseals its map, re-seals it to the
 *      target's SRK under the same PCR-17 policy, and invalidates
 *      itself (hardware counter advances with no matching commit, so
 *      the old directory is a typed rollback rejection forever);
 *   4. the target adopts the bundle into an empty store, journaling
 *      the entries through its own WAL at a fresh epoch.
 *
 * At no point do clear state bytes exist outside a verified store
 * engine, and at no point are two replicas simultaneously openable.
 */

#ifndef MINTCB_STORE_MIGRATE_HH
#define MINTCB_STORE_MIGRATE_HH

#include <cstdint>
#include <deque>
#include <mutex>

#include "common/result.hh"
#include "common/rng.hh"
#include "sea/attestation.hh"
#include "store/engine.hh"

namespace mintcb::store
{

/** Migration bundle magic: "MMB1". */
inline constexpr std::uint32_t migrationMagic = 0x4d4d4231;
inline constexpr std::uint16_t migrationVersion = 1;

/** The sealed parcel a source hands a verified target. */
struct MigrationBundle
{
    std::uint64_t sourceEpoch = 0; //!< audit trail; target restarts at 1
    Bytes sealedState; //!< SealedBlob wire, sealed to the target SRK

    Bytes encode() const;
    static Result<MigrationBundle> decode(const Bytes &wire);
};

/** sha256(lp(nonce) || lp(srk_wire)): the quoted challenge that binds
 *  a target's attested launch to its receiving SRK. */
Bytes migrationBoundNonce(const Bytes &nonce, const Bytes &srk_wire);

/**
 * Source-side policy engine for outbound migration. Owns the challenge
 * nonces (fresh, single-use, bounded FIFO) and the verifier trusting
 * the store identity PAL; the gateway's MIGRATE verb drives exactly
 * this object.
 */
class MigrationAuthority
{
  public:
    explicit MigrationAuthority(SealedStore &source,
                                std::uint64_t nonce_seed = 0x4d494752);

    /** Mint a fresh challenge nonce and remember it as outstanding. */
    Bytes beginChallenge();

    /**
     * Complete a migration: verify that @p attestation_wire quotes the
     * store identity PAL over migrationBoundNonce(@p nonce,
     * @p target_srk_wire), then export + invalidate the source and
     * return the encoded MigrationBundle re-sealed to the target.
     * Typed refusals: unknown/replayed nonce (permissionDenied),
     * failed quote verification (whatever verifyFresh diagnosed),
     * uncommitted source mutations (failedPrecondition).
     */
    Result<Bytes> complete(const Bytes &nonce,
                           const Bytes &target_srk_wire,
                           const Bytes &attestation_wire);

    /** Target-side adoption: unseal @p bundle_wire on @p target (only
     *  possible on the machine whose SRK it was sealed to, inside the
     *  store identity) and journal it in at a fresh epoch. */
    static Status adopt(SealedStore &target, const Bytes &bundle_wire);

    std::size_t outstandingChallenges() const;

  private:
    SealedStore &source_;
    sea::Verifier verifier_;
    Rng rng_;
    mutable std::mutex mu_;
    std::deque<Bytes> outstanding_;
};

} // namespace mintcb::store

#endif // MINTCB_STORE_MIGRATE_HH
