/**
 * @file
 * MWL1 record codec implementation.
 */

#include "store/wal.hh"

#include <array>

#include "common/bytebuf.hh"
#include "crypto/hmac.hh"

namespace mintcb::store
{

namespace
{

/** IEEE CRC32 lookup table, built once. */
const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

/** Keystream block i = HMAC-SHA256(log_key, "mwl-ks" || seq || i),
 *  mirroring the sealed-blob xorStream construction. */
Bytes
recordStream(const Bytes &log_key, std::uint64_t seq, const Bytes &input)
{
    Bytes out(input.size());
    Bytes block;
    for (std::size_t i = 0; i < input.size(); ++i) {
        if (i % 32 == 0) {
            ByteWriter w;
            w.str("mwl-ks");
            w.u64(seq);
            w.u64(i / 32);
            block = crypto::hmacSha256(log_key, w.bytes());
        }
        out[i] = input[i] ^ block[i % 32];
    }
    return out;
}

Bytes
mutationMac(const Bytes &log_key, std::uint64_t seq, const Bytes &ct)
{
    ByteWriter w;
    w.str("mwl-rec");
    w.u64(seq);
    w.lengthPrefixed(ct);
    return crypto::hmacSha256(log_key, w.bytes());
}

Bytes
commitMac(const Bytes &log_key, const CommitMark &mark)
{
    ByteWriter w;
    w.str("mwl-commit");
    w.u64(mark.epoch);
    w.u64(mark.upToSeq);
    return crypto::hmacSha256(log_key, w.bytes());
}

} // namespace

const char *
recordTypeName(RecordType t)
{
    switch (t) {
      case RecordType::keyBlob:
        return "keyBlob";
      case RecordType::put:
        return "put";
      case RecordType::remove:
        return "remove";
      case RecordType::commit:
        return "commit";
    }
    return "unknown";
}

std::uint32_t
crc32(const Bytes &data, std::size_t offset, std::size_t len)
{
    const auto &table = crcTable();
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ data[offset + i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
appendRecord(Bytes &out, RecordType type, const Bytes &payload)
{
    const std::size_t start = out.size();
    ByteAppender a(out);
    a.u32(walMagic);
    a.u16(walVersion);
    a.u16(static_cast<std::uint16_t>(type));
    a.u32(static_cast<std::uint32_t>(payload.size()));
    a.raw(payload);
    a.u32(crc32(out, start, out.size() - start));
}

WalScan
scanWal(const Bytes &image)
{
    WalScan scan;
    std::size_t pos = 0;
    auto stop = [&](std::string why) {
        scan.torn = true;
        scan.tornReason = std::move(why);
    };
    while (pos < image.size()) {
        if (image.size() - pos < walHeaderBytes) {
            stop("short record header");
            break;
        }
        auto be32 = [&](std::size_t at) {
            return (static_cast<std::uint32_t>(image[at]) << 24) |
                   (static_cast<std::uint32_t>(image[at + 1]) << 16) |
                   (static_cast<std::uint32_t>(image[at + 2]) << 8) |
                   static_cast<std::uint32_t>(image[at + 3]);
        };
        const std::uint32_t magic = be32(pos);
        if (magic != walMagic) {
            stop("bad record magic");
            break;
        }
        const std::uint16_t version = static_cast<std::uint16_t>(
            (image[pos + 4] << 8) | image[pos + 5]);
        if (version != walVersion) {
            stop("unknown record version");
            break;
        }
        const std::uint16_t rawType = static_cast<std::uint16_t>(
            (image[pos + 6] << 8) | image[pos + 7]);
        if (rawType < 1 ||
            rawType > static_cast<std::uint16_t>(RecordType::commit)) {
            stop("unknown record type");
            break;
        }
        const std::uint32_t length = be32(pos + 8);
        if (length > maxWalPayload) {
            stop("oversized record payload");
            break;
        }
        const std::size_t total = walHeaderBytes + length + walCrcBytes;
        if (image.size() - pos < total) {
            stop("short record body");
            break;
        }
        const std::uint32_t stored = be32(pos + walHeaderBytes + length);
        const std::uint32_t computed =
            crc32(image, pos, walHeaderBytes + length);
        if (stored != computed) {
            stop("record CRC mismatch");
            break;
        }
        WalRecord record;
        record.type = static_cast<RecordType>(rawType);
        record.payload.assign(
            image.begin() +
                static_cast<std::ptrdiff_t>(pos + walHeaderBytes),
            image.begin() +
                static_cast<std::ptrdiff_t>(pos + walHeaderBytes +
                                            length));
        scan.records.push_back(std::move(record));
        pos += total;
        scan.recordEnds.push_back(pos);
        scan.validBytes = pos;
    }
    return scan;
}

Bytes
encodeMutation(const Bytes &log_key, const Mutation &m)
{
    ByteWriter plain;
    plain.u8(m.isRemove ? 2 : 1);
    plain.str(m.key);
    plain.lengthPrefixed(m.value);
    const Bytes ct = recordStream(log_key, m.seq, plain.bytes());

    ByteWriter w;
    w.u64(m.seq);
    w.lengthPrefixed(ct);
    w.raw(mutationMac(log_key, m.seq, ct));
    return w.take();
}

Result<Mutation>
decodeMutation(const Bytes &log_key, const Bytes &payload,
               bool is_remove)
{
    ByteReader r(payload);
    auto seq = r.u64();
    if (!seq)
        return seq.error();
    auto ct = r.lengthPrefixed();
    if (!ct)
        return ct.error();
    auto mac = r.raw(32);
    if (!mac)
        return mac.error();
    if (!r.atEnd()) {
        return Error(Errc::integrityFailure,
                     "trailing bytes in mutation record");
    }
    if (!crypto::constantTimeEqual(mutationMac(log_key, *seq, *ct),
                                   *mac)) {
        return Error(Errc::integrityFailure,
                     "mutation record MAC mismatch");
    }
    const Bytes plain = recordStream(log_key, *seq, *ct);
    ByteReader pr(plain);
    auto op = pr.u8();
    if (!op)
        return op.error();
    if (*op != (is_remove ? 2 : 1)) {
        return Error(Errc::integrityFailure,
                     "mutation op does not match its record type");
    }
    Mutation m;
    m.isRemove = is_remove;
    m.seq = *seq;
    auto key = pr.str();
    if (!key)
        return key.error();
    m.key = key.take();
    auto value = pr.lengthPrefixed();
    if (!value)
        return value.error();
    m.value = value.take();
    if (!pr.atEnd()) {
        return Error(Errc::integrityFailure,
                     "trailing bytes in mutation plaintext");
    }
    return m;
}

Bytes
encodeCommit(const Bytes &log_key, const CommitMark &mark)
{
    ByteWriter w;
    w.u64(mark.epoch);
    w.u64(mark.upToSeq);
    w.raw(commitMac(log_key, mark));
    return w.take();
}

std::size_t
encodedMutationBytes(std::size_t key_bytes, std::size_t value_bytes)
{
    // Plaintext: u8 op | lp(key) | lp(value); payload wraps it as
    // u64 seq | lp(ct) | 32-byte MAC (ct is plaintext-sized).
    const std::size_t ct = 1 + 4 + key_bytes + 4 + value_bytes;
    return 8 + 4 + ct + 32;
}

Bytes
chainedGenerationKey(const Bytes &prev_key, const Bytes &fresh,
                     std::uint64_t counter)
{
    ByteWriter w;
    w.str("mwl-rekey");
    w.lengthPrefixed(fresh);
    w.u64(counter);
    return crypto::hmacSha256(prev_key, w.bytes());
}

Result<CommitMark>
decodeCommit(const Bytes &log_key, const Bytes &payload)
{
    ByteReader r(payload);
    auto epoch = r.u64();
    if (!epoch)
        return epoch.error();
    auto upTo = r.u64();
    if (!upTo)
        return upTo.error();
    auto mac = r.raw(32);
    if (!mac)
        return mac.error();
    if (!r.atEnd()) {
        return Error(Errc::integrityFailure,
                     "trailing bytes in commit record");
    }
    CommitMark mark{*epoch, *upTo};
    if (!crypto::constantTimeEqual(commitMac(log_key, mark), *mac)) {
        return Error(Errc::integrityFailure,
                     "commit record MAC mismatch");
    }
    return mark;
}

} // namespace mintcb::store
