/**
 * @file
 * Bridge from store-engine counters into the obs metrics registry.
 *
 * Same pull-callback idiom as net/netobs.hh: the engine keeps its
 * plain StoreStats struct and pays nothing for observability; callers
 * that want a scrape register callbacks that read the live struct at
 * render time. Every series lands in the `store_*` namespace next to
 * the net_* / tpm_* families.
 */

#ifndef MINTCB_STORE_STOREOBS_HH
#define MINTCB_STORE_STOREOBS_HH

#include "obs/metrics.hh"
#include "store/engine.hh"

namespace mintcb::store
{

/**
 * Register pull-based store_* series reading @p stats live. The struct
 * must outlive @p registry (or the registry be rendered before the
 * store dies). @p labels tag every bridged series (e.g. the store
 * directory).
 */
void bridgeStoreStats(obs::MetricsRegistry &registry,
                      const StoreStats &stats,
                      obs::Labels labels = {});

} // namespace mintcb::store

#endif // MINTCB_STORE_STOREOBS_HH
