/**
 * @file
 * Attested migration implementation.
 */

#include "store/migrate.hh"

#include <algorithm>

#include "common/bytebuf.hh"
#include "crypto/rsa.hh"
#include "crypto/sha256.hh"
#include "tpm/blob.hh"

namespace mintcb::store
{

namespace
{

/** How many unanswered challenges a source keeps before the oldest
 *  silently expires. */
constexpr std::size_t maxOutstanding = 16;

} // namespace

Bytes
MigrationBundle::encode() const
{
    ByteWriter w;
    w.u32(migrationMagic);
    w.u16(migrationVersion);
    w.u64(sourceEpoch);
    w.lengthPrefixed(sealedState);
    return w.take();
}

Result<MigrationBundle>
MigrationBundle::decode(const Bytes &wire)
{
    ByteReader r(wire);
    auto magic = r.u32();
    if (!magic)
        return magic.error();
    if (*magic != migrationMagic) {
        return Error(Errc::integrityFailure,
                     "not a migration bundle");
    }
    auto version = r.u16();
    if (!version)
        return version.error();
    if (*version != migrationVersion) {
        return Error(Errc::invalidArgument,
                     "unknown migration bundle version");
    }
    MigrationBundle bundle;
    auto epoch = r.u64();
    if (!epoch)
        return epoch.error();
    bundle.sourceEpoch = *epoch;
    auto sealed = r.lengthPrefixed();
    if (!sealed)
        return sealed.error();
    bundle.sealedState = sealed.take();
    if (!r.atEnd()) {
        return Error(Errc::integrityFailure,
                     "trailing bytes in migration bundle");
    }
    return bundle;
}

Bytes
migrationBoundNonce(const Bytes &nonce, const Bytes &srk_wire)
{
    ByteWriter w;
    w.lengthPrefixed(nonce);
    w.lengthPrefixed(srk_wire);
    return crypto::Sha256::digestBytes(w.bytes());
}

MigrationAuthority::MigrationAuthority(SealedStore &source,
                                       std::uint64_t nonce_seed)
    : source_(source), rng_(nonce_seed)
{
    verifier_.trustPal(SealedStore::identityPal());
}

Bytes
MigrationAuthority::beginChallenge()
{
    std::lock_guard<std::mutex> lock(mu_);
    Bytes nonce = rng_.bytes(20);
    outstanding_.push_back(nonce);
    while (outstanding_.size() > maxOutstanding)
        outstanding_.pop_front();
    return nonce;
}

std::size_t
MigrationAuthority::outstandingChallenges() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return outstanding_.size();
}

Result<Bytes>
MigrationAuthority::complete(const Bytes &nonce,
                             const Bytes &target_srk_wire,
                             const Bytes &attestation_wire)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = std::find(outstanding_.begin(), outstanding_.end(),
                            nonce);
        if (it == outstanding_.end()) {
            return Error(Errc::permissionDenied,
                         "migration nonce is unknown or already used");
        }
        outstanding_.erase(it);
    }

    auto targetSrk = crypto::RsaPublicKey::decode(target_srk_wire);
    if (!targetSrk)
        return targetSrk.error();

    auto attestation = sea::Attestation::decode(attestation_wire);
    if (!attestation)
        return attestation.error();

    // The quote must cover sha256(nonce || targetSrk): a valid quote
    // stapled to a *different* SRK (the classic relay) binds to the
    // wrong challenge and dies here in verifyFresh.
    const Bytes bound = migrationBoundNonce(nonce, target_srk_wire);
    auto verified = verifier_.verifyFresh(*attestation, bound);
    if (!verified)
        return verified.error();

    const std::uint64_t sourceEpoch = source_.epoch();
    auto payload = source_.exportForMigration();
    if (!payload)
        return payload.error();

    const tpm::SealPolicy policy = {
        {17, SealedStore::identityPal().expectedPcr17()}};
    tpm::SealedBlob blob =
        tpm::sealBlob(*targetSrk, rng_, *payload, policy);

    MigrationBundle bundle;
    bundle.sourceEpoch = sourceEpoch;
    bundle.sealedState = blob.encode();
    return bundle.encode();
}

Status
MigrationAuthority::adopt(SealedStore &target, const Bytes &bundle_wire)
{
    auto bundle = MigrationBundle::decode(bundle_wire);
    if (!bundle)
        return bundle.error();
    auto blob = tpm::SealedBlob::decode(bundle->sealedState);
    if (!blob)
        return blob.error();
    Result<Bytes> payload = [&]() -> Result<Bytes> {
        std::lock_guard<std::mutex> lock(target.mu_);
        return target.unsealWithDiagnosis(*blob);
    }();
    if (!payload)
        return payload.error();
    if (auto s = target.adoptMigrated(*payload); !s.ok())
        return s;
    // Commit immediately: the source was invalidated the moment the
    // bundle was produced, so the adopted state must not be able to
    // vanish in a pre-commit crash.
    return target.commit();
}

} // namespace mintcb::store
