/**
 * @file
 * Durable sealed-state engine implementation.
 */

#include "store/engine.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/bytebuf.hh"
#include "crypto/sha256.hh"
#include "latelaunch/latelaunch.hh"
#include "store/migrate.hh"
#include "tpm/blob.hh"

namespace mintcb::store
{

namespace
{

/** Snapshot container magic: "MSS1". */
constexpr std::uint32_t snapshotMagic = 0x4d535331;
constexpr std::uint16_t snapshotVersion = 1;

/** Where the identity SLB is staged for the launch. */
constexpr PhysAddr storeSlbAddr = 0x10000;

Error
posixError(Errc code, const std::string &what)
{
    return Error(code, what + ": " + std::strerror(errno));
}

/** Read a whole file; notFound when it does not exist. */
Result<Bytes>
readFileBytes(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT)
            return Error(Errc::notFound, "no such file: " + path);
        return posixError(Errc::unavailable, "open " + path);
    }
    Bytes out;
    std::uint8_t buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            ::close(fd);
            return posixError(Errc::unavailable, "read " + path);
        }
        if (n == 0)
            break;
        out.insert(out.end(), buf, buf + n);
    }
    ::close(fd);
    return out;
}

/** fsync the directory containing @p path so a rename is durable. */
void
syncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

/** Durable whole-file replace: tmp + fsync + rename + dir fsync. */
Status
writeFileDurable(const std::string &path, const Bytes &data)
{
    const std::string tmp = path + ".tmp";
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return posixError(Errc::unavailable, "create " + tmp);
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            ::close(fd);
            return posixError(Errc::unavailable, "write " + tmp);
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        return posixError(Errc::unavailable, "fsync " + tmp);
    }
    ::close(fd);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return posixError(Errc::unavailable, "rename to " + path);
    syncParentDir(path);
    return okStatus();
}

/** mkdir -p for the store directory. */
Status
makeDirs(const std::string &path)
{
    std::string sofar;
    std::size_t pos = 0;
    while (pos <= path.size()) {
        const std::size_t slash = path.find('/', pos);
        const std::size_t end =
            slash == std::string::npos ? path.size() : slash;
        sofar = path.substr(0, end);
        pos = end + 1;
        if (sofar.empty())
            continue;
        if (::mkdir(sofar.c_str(), 0755) != 0 && errno != EEXIST)
            return posixError(Errc::unavailable, "mkdir " + sofar);
        if (slash == std::string::npos)
            break;
    }
    return okStatus();
}

} // namespace

const char *
syncPointName(SyncPoint p)
{
    switch (p) {
      case SyncPoint::walAppended:
        return "walAppended";
      case SyncPoint::commitAppended:
        return "commitAppended";
      case SyncPoint::commitSynced:
        return "commitSynced";
      case SyncPoint::counterAdvanced:
        return "counterAdvanced";
      case SyncPoint::nvWritten:
        return "nvWritten";
      case SyncPoint::snapshotReplaced:
        return "snapshotReplaced";
      case SyncPoint::walRewritten:
        return "walRewritten";
    }
    return "unknown";
}

std::string
StoreStats::str() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "wal: %llu records / %llu bytes, %llu commits, %llu "
        "checkpoints, %llu fsyncs\nreplay: %llu recoveries, %llu "
        "records, %llu commits, %llu torn bytes, %llu uncommitted, "
        "%llu repairs, %llu rekeys\nrefusals: %llu rollback\n"
        "migration: %llu out, %llu in",
        static_cast<unsigned long long>(walRecordsAppended),
        static_cast<unsigned long long>(walBytesAppended),
        static_cast<unsigned long long>(commits),
        static_cast<unsigned long long>(checkpoints),
        static_cast<unsigned long long>(fsyncs),
        static_cast<unsigned long long>(recoveries),
        static_cast<unsigned long long>(recordsReplayed),
        static_cast<unsigned long long>(commitsReplayed),
        static_cast<unsigned long long>(tornBytesDiscarded),
        static_cast<unsigned long long>(uncommittedDiscarded),
        static_cast<unsigned long long>(counterRepairs),
        static_cast<unsigned long long>(recoveryRekeys),
        static_cast<unsigned long long>(rollbackRejections),
        static_cast<unsigned long long>(migrationsOut),
        static_cast<unsigned long long>(migrationsIn));
    return buf;
}

sea::Pal
SealedStore::identityPal()
{
    return sea::Pal::fromLogic("mintcb-store", 12 * 1024,
                               [](sea::PalContext &) {
                                   return okStatus();
                               });
}

SealedStore::SealedStore(StoreConfig cfg)
    : config_(std::move(cfg)),
      walPath_(config_.dir + "/wal.mwl"),
      snapPath_(config_.dir + "/snapshot.mss"),
      nvPath_(config_.nvPath.empty() ? config_.dir + ".tpmnv"
                                     : config_.nvPath),
      idMachine_(machine::PlatformSpec::forPlatform(config_.platform),
                 config_.seed)
{
}

SealedStore::~SealedStore()
{
    if (walFd_ >= 0)
        ::close(walFd_);
}

Result<std::unique_ptr<SealedStore>>
SealedStore::open(StoreConfig cfg)
{
    if (cfg.dir.empty())
        return Error(Errc::invalidArgument, "store dir must be set");
    std::unique_ptr<SealedStore> store(new SealedStore(std::move(cfg)));
    if (auto s = store->openInternal(); !s.ok())
        return s.error();
    return store;
}

Status
SealedStore::launchIdentity()
{
    const sea::Pal pal = identityPal();
    latelaunch::LateLaunch launcher(idMachine_);
    if (auto s = idMachine_.writeAs(0, storeSlbAddr, pal.slbImage());
        !s.ok()) {
        return s;
    }
    auto report = launcher.invoke(0, storeSlbAddr);
    if (!report.ok())
        return report.error();
    launcher.resumeOtherCpus();
    return okStatus();
}

Status
SealedStore::loadChipNv()
{
    auto image = readFileBytes(nvPath_);
    if (!image) {
        if (image.error().code != Errc::notFound)
            return image.error();
        // Fresh chip: bind the store's freshness counter (handle 0).
        auto handle = idMachine_.tpm().counterCreate();
        if (!handle)
            return handle.error();
        counterHandle_ = *handle;
        return okStatus();
    }
    if (auto s = idMachine_.tpm().importNvState(*image); !s.ok())
        return s;
    counterHandle_ = 0;
    if (!idMachine_.tpm().counterRead(counterHandle_).ok()) {
        return Error(Errc::integrityFailure,
                     "chip NV image holds no freshness counter");
    }
    return okStatus();
}

Status
SealedStore::persistChipNv()
{
    return writeFileDurable(nvPath_, idMachine_.tpm().exportNvState());
}

Bytes
SealedStore::encodeMapPayload(std::uint64_t at_epoch) const
{
    ByteWriter w;
    w.u64(at_epoch);
    w.u32(static_cast<std::uint32_t>(map_.size()));
    for (const auto &[key, value] : map_) {
        w.str(key);
        w.lengthPrefixed(value);
    }
    return w.take();
}

Status
SealedStore::applyMapPayload(const Bytes &payload,
                             std::uint64_t *out_epoch)
{
    ByteReader r(payload);
    auto epoch = r.u64();
    if (!epoch)
        return epoch.error();
    auto count = r.u32();
    if (!count)
        return count.error();
    std::map<std::string, Bytes> map;
    for (std::uint32_t i = 0; i < *count; ++i) {
        auto key = r.str();
        if (!key)
            return key.error();
        auto value = r.lengthPrefixed();
        if (!value)
            return value.error();
        map.emplace(key.take(), value.take());
    }
    if (!r.atEnd()) {
        return Error(Errc::integrityFailure,
                     "trailing bytes in snapshot payload");
    }
    map_ = std::move(map);
    *out_epoch = *epoch;
    return okStatus();
}

Result<Bytes>
SealedStore::unsealWithDiagnosis(const tpm::SealedBlob &blob)
{
    auto out = idMachine_.tpmAs(0).unseal(blob);
    if (out)
        return out;
    const tpm::UnsealFault fault =
        tpm::classifyUnsealError(out.error());
    return Error(out.error().code,
                 std::string("snapshot unseal failed [") +
                     tpm::unsealFaultName(fault) +
                     "]: " + out.error().message);
}

Result<Bytes>
SealedStore::loadSnapshot(std::uint64_t *snap_epoch)
{
    auto image = readFileBytes(snapPath_);
    if (!image)
        return image.error();
    const Bytes &wire = *image;
    if (wire.size() < walCrcBytes) {
        return Error(Errc::integrityFailure,
                     "corrupt snapshot: short container");
    }
    const std::size_t body = wire.size() - walCrcBytes;
    const std::uint32_t stored =
        (static_cast<std::uint32_t>(wire[body]) << 24) |
        (static_cast<std::uint32_t>(wire[body + 1]) << 16) |
        (static_cast<std::uint32_t>(wire[body + 2]) << 8) |
        static_cast<std::uint32_t>(wire[body + 3]);
    if (stored != crc32(wire, 0, body)) {
        return Error(Errc::integrityFailure,
                     "corrupt snapshot: container CRC mismatch");
    }
    Bytes container(wire.begin(),
                    wire.begin() + static_cast<std::ptrdiff_t>(body));
    ByteReader r(container);
    auto magic = r.u32();
    if (!magic)
        return magic.error();
    if (*magic != snapshotMagic) {
        return Error(Errc::integrityFailure,
                     "corrupt snapshot: bad magic");
    }
    auto version = r.u16();
    if (!version)
        return version.error();
    if (*version != snapshotVersion) {
        return Error(Errc::invalidArgument,
                     "unknown snapshot version");
    }
    auto clearEpoch = r.u64();
    if (!clearEpoch)
        return clearEpoch.error();
    auto sealed = r.lengthPrefixed();
    if (!sealed)
        return sealed.error();
    if (!r.atEnd()) {
        return Error(Errc::integrityFailure,
                     "corrupt snapshot: trailing bytes");
    }
    auto blob = tpm::SealedBlob::decode(*sealed);
    if (!blob)
        return blob.error();
    auto payload = unsealWithDiagnosis(*blob);
    if (!payload)
        return payload.error();
    std::uint64_t sealedEpoch = 0;
    if (auto s = applyMapPayload(*payload, &sealedEpoch); !s.ok())
        return s.error();
    // The clear epoch is advisory (the inspect tool reads it without
    // unsealing); the sealed one is authoritative. Disagreement means
    // the container was stitched together from two snapshots.
    if (sealedEpoch != *clearEpoch) {
        return Error(Errc::integrityFailure,
                     "corrupt snapshot: clear epoch does not match "
                     "the sealed epoch");
    }
    *snap_epoch = sealedEpoch;
    return payload.take();
}

Status
SealedStore::sealSnapshotTo(const std::string &path,
                            std::uint64_t at_epoch)
{
    auto blob = idMachine_.tpmAs(0).seal(encodeMapPayload(at_epoch),
                                         {17});
    if (!blob)
        return blob.error();
    ByteWriter w;
    w.u32(snapshotMagic);
    w.u16(snapshotVersion);
    w.u64(at_epoch);
    w.lengthPrefixed(blob->encode());
    Bytes wire = w.take();
    ByteAppender a(wire);
    a.u32(crc32(wire, 0, wire.size()));
    return writeFileDurable(path, wire);
}

Status
SealedStore::writeFreshWal()
{
    // The machine RNG restarts from the same seed on every open, so a
    // raw draw here could reproduce a key an earlier instance already
    // used on this disk. Chain every rotation through the previous key
    // (held unsealed only inside the engine) so generations never share
    // a keystream; only the very first generation is a raw draw.
    const Bytes fresh = idMachine_.rng().bytes(32);
    if (logKey_.empty()) {
        logKey_ = fresh;
    } else {
        const std::uint64_t counter =
            idMachine_.tpm().counterRead(counterHandle_).value();
        logKey_ = chainedGenerationKey(logKey_, fresh, counter);
    }
    auto blob = idMachine_.tpmAs(0).seal(logKey_, {17});
    if (!blob)
        return blob.error();
    Bytes image;
    appendRecord(image, RecordType::keyBlob, blob->encode());
    if (auto s = writeFileDurable(walPath_, image); !s.ok())
        return s;
    if (walFd_ >= 0)
        ::close(walFd_);
    walFd_ = ::open(walPath_.c_str(), O_WRONLY | O_APPEND);
    if (walFd_ < 0)
        return posixError(Errc::unavailable, "open " + walPath_);
    walBytes_ = image.size();
    syncedBytes_ = image.size();
    nextSeq_ = 1;
    lastJournaledSeq_ = 0;
    pending_ = 0;
    return okStatus();
}

Status
SealedStore::replayWal(std::uint64_t snap_epoch)
{
    auto image = readFileBytes(walPath_);
    if (!image) {
        if (image.error().code != Errc::notFound)
            return image.error();
        if (snap_epoch > 0 ||
            idMachine_.tpm().counterRead(counterHandle_).value() > 0) {
            return Error(Errc::integrityFailure,
                         "store WAL missing for a non-empty store");
        }
        // Brand-new store: open the first generation.
        if (auto s = writeFreshWal(); !s.ok())
            return s;
        return persistChipNv();
    }

    ++stats_.recoveries;
    WalScan scan = scanWal(*image);
    if (scan.torn) {
        stats_.tornBytesDiscarded += image->size() - scan.validBytes;
    }
    if (scan.records.empty() ||
        scan.records[0].type != RecordType::keyBlob) {
        return Error(Errc::integrityFailure,
                     "store WAL is missing its generation key record");
    }
    auto keyBlob = tpm::SealedBlob::decode(scan.records[0].payload);
    if (!keyBlob)
        return keyBlob.error();
    auto logKey = unsealWithDiagnosis(*keyBlob);
    if (!logKey)
        return logKey.error();
    logKey_ = logKey.take();

    // Replay: apply each committed batch beyond the snapshot epoch;
    // batches the snapshot already folded in are verified and skipped.
    std::vector<Mutation> batch;
    std::uint64_t expectedEpoch = 0; //!< 0 = take it from first commit
    std::uint64_t maxSeq = 0;
    std::size_t lastCommittedEnd = scan.recordEnds.empty()
                                       ? 0
                                       : scan.recordEnds[0];
    std::size_t uncommitted = 0;
    for (std::size_t i = 1; i < scan.records.size(); ++i) {
        const WalRecord &record = scan.records[i];
        ++stats_.recordsReplayed;
        switch (record.type) {
          case RecordType::keyBlob:
            return Error(Errc::integrityFailure,
                         "duplicate generation key record");
          case RecordType::put:
          case RecordType::remove: {
              auto m = decodeMutation(
                  logKey_, record.payload,
                  record.type == RecordType::remove);
              if (!m)
                  return m.error();
              if (m->seq <= maxSeq) {
                  return Error(Errc::integrityFailure,
                               "mutation sequence regressed (spliced "
                               "log)");
              }
              maxSeq = m->seq;
              batch.push_back(m.take());
              ++uncommitted;
              break;
          }
          case RecordType::commit: {
              auto mark = decodeCommit(logKey_, record.payload);
              if (!mark)
                  return mark.error();
              if (expectedEpoch == 0) {
                  // The chain must connect to the snapshot: the first
                  // commit of a generation is snap_epoch + 1, and only
                  // the snapshotReplaced crash window (old WAL, newer
                  // snapshot) legitimately starts lower. Seeding from
                  // whatever commit happens to survive would let an
                  // adversarial disk delete a committed prefix of the
                  // generation without breaking the chain.
                  if (mark->epoch > snap_epoch + 1) {
                      return Error(
                          Errc::integrityFailure,
                          "commit epoch chain starts at " +
                              std::to_string(mark->epoch) +
                              " but the snapshot covers only epoch " +
                              std::to_string(snap_epoch) +
                              " (committed log prefix deleted)");
                  }
                  expectedEpoch = mark->epoch;
              }
              if (mark->epoch != expectedEpoch) {
                  return Error(Errc::integrityFailure,
                               "commit epoch chain broken");
              }
              if (mark->upToSeq != maxSeq) {
                  return Error(Errc::integrityFailure,
                               "commit record does not cover its "
                               "batch");
              }
              if (mark->epoch > snap_epoch) {
                  for (Mutation &m : batch) {
                      if (m.isRemove)
                          map_.erase(m.key);
                      else
                          map_[m.key] = std::move(m.value);
                  }
                  epoch_ = mark->epoch;
              }
              batch.clear();
              uncommitted = 0;
              ++expectedEpoch;
              ++stats_.commitsReplayed;
              lastCommittedEnd = scan.recordEnds[i];
              break;
          }
        }
    }
    epoch_ = std::max(epoch_, snap_epoch);
    stats_.uncommittedDiscarded += uncommitted;
    nextSeq_ = maxSeq + 1;
    lastJournaledSeq_ = 0;
    pending_ = 0;

    // Truncate everything past the last committed record: the torn
    // tail (power loss) and any uncommitted mutations both die here,
    // so the on-disk log equals the replayed state exactly.
    if (lastCommittedEnd < image->size()) {
        if (::truncate(walPath_.c_str(),
                       static_cast<off_t>(lastCommittedEnd)) != 0) {
            return posixError(Errc::unavailable,
                              "truncate " + walPath_);
        }
        // The discarded bytes may include a partially written record
        // whose ciphertext prefix used a sequence number nextSeq_
        // would reissue; openInternal rotates the generation before
        // the store accepts writes, so no keystream repeats.
        truncatedOnRecovery_ = true;
    }
    walFd_ = ::open(walPath_.c_str(), O_WRONLY | O_APPEND);
    if (walFd_ < 0)
        return posixError(Errc::unavailable, "open " + walPath_);
    walBytes_ = lastCommittedEnd;
    syncedBytes_ = lastCommittedEnd;
    return okStatus();
}

Status
SealedStore::openInternal()
{
    launchStatus_ = launchIdentity();
    if (!launchStatus_.ok())
        return launchStatus_;
    if (auto s = makeDirs(config_.dir); !s.ok())
        return s;
    if (auto s = loadChipNv(); !s.ok())
        return s;

    std::uint64_t snapEpoch = 0;
    auto snapshot = loadSnapshot(&snapEpoch);
    if (!snapshot && snapshot.error().code != Errc::notFound)
        return snapshot.error();
    epoch_ = snapEpoch;

    if (auto s = replayWal(snapEpoch); !s.ok())
        return s;

    // Reconcile the durable epoch against the hardware counter -- the
    // rollback argument (DESIGN.md section 15.3). One commit of slack
    // is a *forward* repair: the commit record is MAC'd under the
    // sealed log key, so completing the lost increment only ever moves
    // the chip toward state the store genuinely reached.
    const std::uint64_t counter =
        idMachine_.tpm().counterRead(counterHandle_).value();
    if (epoch_ == counter + 1) {
        auto repaired = idMachine_.tpm().counterIncrement(counterHandle_);
        if (!repaired)
            return repaired.error();
        if (auto s = persistChipNv(); !s.ok())
            return s;
        ++stats_.counterRepairs;
    } else if (epoch_ < counter) {
        ++stats_.rollbackRejections;
        return Error(Errc::integrityFailure,
                     "rollback detected: durable epoch " +
                         std::to_string(epoch_) +
                         " is behind hardware counter " +
                         std::to_string(counter));
    } else if (epoch_ > counter + 1) {
        return Error(Errc::integrityFailure,
                     "sealed state claims epoch " +
                         std::to_string(epoch_) +
                         " but the hardware counter only reached " +
                         std::to_string(counter));
    }

    // A truncating recovery rotates the generation: seal the replayed
    // map as a snapshot and open a fresh log under a chained key, so a
    // record the new instance journals can never share a keystream
    // with a discarded (possibly half-written) one. This runs only
    // after reconciliation -- a rolled-back directory must be refused
    // before anything overwrites its snapshot.
    if (truncatedOnRecovery_) {
        truncatedOnRecovery_ = false;
        if (auto s = sealSnapshotTo(snapPath_, epoch_); !s.ok())
            return s;
        if (auto s = writeFreshWal(); !s.ok())
            return s;
        commitsSinceCheckpoint_ = 0;
        ++stats_.recoveryRekeys;
    }
    traceInstant("store:open");
    return okStatus();
}

Status
SealedStore::requireAlive() const
{
    if (dead_) {
        return Error(Errc::failedPrecondition,
                     "store is dead: " + deadReason_);
    }
    return okStatus();
}

Status
SealedStore::die(const char *what)
{
    dead_ = true;
    deadReason_ = what;
    if (walFd_ >= 0) {
        ::close(walFd_);
        walFd_ = -1;
    }
    return Error(Errc::failedPrecondition,
                 std::string("store killed at sync point: ") + what);
}

/** A durability step failed partway through a protocol a retry would
 *  corrupt (duplicate commit epoch, double counter advance): kill this
 *  instance and surface the underlying cause. Reopening repairs via
 *  recovery instead. */
Status
SealedStore::fatal(Status cause, const char *what)
{
    dead_ = true;
    deadReason_ = what;
    if (walFd_ >= 0) {
        ::close(walFd_);
        walFd_ = -1;
    }
    return cause;
}

bool
SealedStore::observe(SyncPoint point)
{
    if (config_.observer == nullptr)
        return false;
    return config_.observer->onSyncPoint(point, epoch_);
}

Status
SealedStore::fsyncWal()
{
    if (walFd_ < 0)
        return Error(Errc::failedPrecondition, "WAL is closed");
    if (::fsync(walFd_) != 0)
        return posixError(Errc::unavailable, "fsync " + walPath_);
    syncedBytes_ = walBytes_;
    ++stats_.fsyncs;
    return okStatus();
}

void
SealedStore::traceInstant(const char *name)
{
    if (config_.tracer != nullptr) {
        config_.tracer->instant(obs::track::store, name, "store",
                                idMachine_.now());
    }
}

Status
SealedStore::journalMutation(bool is_remove, const std::string &key,
                             const Bytes &value)
{
    if (auto s = requireAlive(); !s.ok())
        return s;
    if (walFd_ < 0)
        return Error(Errc::failedPrecondition, "WAL is closed");
    // Refuse before anything is written: a record whose payload the
    // replay scanner would call oversized must never reach the log (it
    // would commit fine, then read back as a torn tail and turn the
    // epoch/counter reconciliation into a permanent rollback refusal).
    const std::size_t encoded =
        encodedMutationBytes(key.size(), value.size());
    if (encoded > maxWalPayload) {
        return Error(Errc::invalidArgument,
                     "mutation too large: key + value encode to " +
                         std::to_string(encoded) +
                         " payload bytes, over the " +
                         std::to_string(maxWalPayload) +
                         "-byte WAL record bound");
    }
    Mutation m;
    m.isRemove = is_remove;
    m.key = key;
    m.value = value;
    m.seq = nextSeq_;
    Bytes framed;
    appendRecord(framed,
                 is_remove ? RecordType::remove : RecordType::put,
                 encodeMutation(logKey_, m));
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n = ::write(walFd_, framed.data() + off,
                                  framed.size() - off);
        if (n < 0)
            return posixError(Errc::unavailable, "append " + walPath_);
        off += static_cast<std::size_t>(n);
    }
    walBytes_ += framed.size();
    ++stats_.walRecordsAppended;
    stats_.walBytesAppended += framed.size();
    lastJournaledSeq_ = nextSeq_;
    ++nextSeq_;
    ++pending_;
    if (is_remove)
        map_.erase(key);
    else
        map_[key] = value;
    if (observe(SyncPoint::walAppended))
        return die("walAppended");
    return okStatus();
}

Status
SealedStore::put(const std::string &key, const Bytes &value)
{
    std::lock_guard<std::mutex> lock(mu_);
    return journalMutation(false, key, value);
}

Status
SealedStore::remove(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.find(key) == map_.end())
        return Error(Errc::notFound, "no such key: " + key);
    return journalMutation(true, key, {});
}

Status
SealedStore::commit()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (auto s = requireAlive(); !s.ok())
        return s;
    if (pending_ == 0)
        return okStatus();

    // From the first byte of the commit record onward, every failure
    // is fatal for this instance: the record may already be (or later
    // become) durable, so a retried commit() would append a second
    // record with the same epoch -- breaking the epoch chain on the
    // next open -- and a second counter advance would read as a
    // permanent spurious rollback. Recovery over a reopen repairs all
    // of these windows; a live retry cannot.
    const CommitMark mark{epoch_ + 1, lastJournaledSeq_};
    Bytes framed;
    appendRecord(framed, RecordType::commit,
                 encodeCommit(logKey_, mark));
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n = ::write(walFd_, framed.data() + off,
                                  framed.size() - off);
        if (n < 0) {
            return fatal(
                posixError(Errc::unavailable, "append " + walPath_),
                "commit record write failed");
        }
        off += static_cast<std::size_t>(n);
    }
    walBytes_ += framed.size();
    ++stats_.walRecordsAppended;
    stats_.walBytesAppended += framed.size();
    if (observe(SyncPoint::commitAppended))
        return die("commitAppended");
    if (auto s = fsyncWal(); !s.ok())
        return fatal(std::move(s), "commit fsync failed");
    if (observe(SyncPoint::commitSynced))
        return die("commitSynced");

    auto advanced = idMachine_.tpm().counterIncrement(counterHandle_);
    if (!advanced) {
        return fatal(advanced.error(),
                     "freshness counter increment failed mid-commit");
    }
    if (observe(SyncPoint::counterAdvanced))
        return die("counterAdvanced");
    if (auto s = persistChipNv(); !s.ok())
        return fatal(std::move(s), "chip NV write failed mid-commit");
    if (observe(SyncPoint::nvWritten))
        return die("nvWritten");

    epoch_ = mark.epoch;
    pending_ = 0;
    ++stats_.commits;
    ++commitsSinceCheckpoint_;
    traceInstant("store:commit");

    if (config_.snapshotEvery > 0 &&
        commitsSinceCheckpoint_ >= config_.snapshotEvery) {
        return checkpointLocked();
    }
    return okStatus();
}

Status
SealedStore::checkpoint()
{
    std::lock_guard<std::mutex> lock(mu_);
    return checkpointLocked();
}

Status
SealedStore::checkpointLocked()
{
    if (auto s = requireAlive(); !s.ok())
        return s;
    if (pending_ != 0) {
        return Error(Errc::failedPrecondition,
                     "checkpoint with uncommitted mutations; commit "
                     "first");
    }
    if (auto s = sealSnapshotTo(snapPath_, epoch_); !s.ok())
        return s;
    if (observe(SyncPoint::snapshotReplaced))
        return die("snapshotReplaced");
    if (auto s = writeFreshWal(); !s.ok())
        return s;
    if (observe(SyncPoint::walRewritten))
        return die("walRewritten");
    commitsSinceCheckpoint_ = 0;
    ++stats_.checkpoints;
    traceInstant("store:checkpoint");
    return okStatus();
}

Result<Bytes>
SealedStore::get(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (auto s = requireAlive(); !s.ok())
        return s.error();
    auto it = map_.find(key);
    if (it == map_.end())
        return Error(Errc::notFound, "no such key: " + key);
    return it->second;
}

bool
SealedStore::has(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.find(key) != map_.end();
}

std::size_t
SealedStore::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

std::vector<std::string>
SealedStore::keys() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(map_.size());
    for (const auto &[key, value] : map_)
        out.push_back(key);
    return out;
}

Result<Bytes>
SealedStore::loadSealedState(const std::string &name)
{
    return get(name);
}

Status
SealedStore::storeSealedState(const std::string &name,
                              const Bytes &sealed)
{
    if (auto s = put(name, sealed); !s.ok())
        return s;
    return commit();
}

bool
SealedStore::hasSealedState(const std::string &name) const
{
    return has(name);
}

std::uint64_t
SealedStore::epoch() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return epoch_;
}

std::size_t
SealedStore::pendingMutations() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pending_;
}

Bytes
SealedStore::stateDigest() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return crypto::Sha256::digestBytes(encodeMapPayload(epoch_));
}

bool
SealedStore::alive() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return !dead_;
}

std::size_t
SealedStore::syncedWalBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return syncedBytes_;
}

Bytes
SealedStore::srkPublicEncoded() const
{
    // Even this logically-const read ticks the identity machine's sim
    // clocks, so it must serialize against put/commit/checkpoint.
    std::lock_guard<std::mutex> lock(mu_);
    return srkPublicEncodedLocked();
}

Bytes
SealedStore::srkPublicEncodedLocked() const
{
    return idMachine_.tpm().srkPublic().encode();
}

Result<sea::Attestation>
SealedStore::attestForMigration(const Bytes &nonce)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (auto s = requireAlive(); !s.ok())
        return s.error();
    const Bytes bound =
        migrationBoundNonce(nonce, srkPublicEncodedLocked());
    return sea::attestLaunch(idMachine_, 0, bound, "mintcb-store");
}

Result<Bytes>
SealedStore::exportForMigration()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (auto s = requireAlive(); !s.ok())
        return s.error();
    if (pending_ != 0) {
        return Error(Errc::failedPrecondition,
                     "migration with uncommitted mutations; commit "
                     "first");
    }
    const Bytes payload = encodeMapPayload(epoch_);

    // Invalidate this replica: advance the chip with no matching
    // commit. Every future open of this directory now sees durable
    // epoch < hardware counter -- the typed rollback rejection -- so
    // at most one live replica of the state exists after migration.
    auto advanced = idMachine_.tpm().counterIncrement(counterHandle_);
    if (!advanced)
        return advanced.error();
    if (auto s = persistChipNv(); !s.ok()) {
        // The counter already advanced: a retry would advance it again
        // and leave the directory permanently behind the chip. Same
        // rule as mid-commit failures -- this instance is done.
        return fatal(std::move(s),
                     "chip NV write failed mid-invalidation")
            .error();
    }
    ++stats_.migrationsOut;
    traceInstant("store:migrate-out");
    dead_ = true;
    deadReason_ = "state migrated away";
    if (walFd_ >= 0) {
        ::close(walFd_);
        walFd_ = -1;
    }
    return payload;
}

Status
SealedStore::adoptMigrated(const Bytes &snapshot_payload)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (auto s = requireAlive(); !s.ok())
        return s;
    if (epoch_ != 0 || !map_.empty() || pending_ != 0) {
        return Error(Errc::failedPrecondition,
                     "migration target store must be empty");
    }
    std::uint64_t sourceEpoch = 0;
    std::map<std::string, Bytes> imported;
    {
        // Decode into a scratch map first so a malformed bundle
        // leaves the store untouched.
        std::map<std::string, Bytes> keep;
        keep.swap(map_);
        auto s = applyMapPayload(snapshot_payload, &sourceEpoch);
        imported.swap(map_);
        map_.swap(keep);
        if (!s.ok())
            return s;
    }
    for (const auto &[key, value] : imported) {
        if (auto s = journalMutation(false, key, value); !s.ok())
            return s;
    }
    ++stats_.migrationsIn;
    traceInstant("store:migrate-in");
    return okStatus();
}

} // namespace mintcb::store
