/**
 * @file
 * Miller-Rabin and prime generation.
 */

#include "crypto/prime.hh"

#include <array>
#include <atomic>

namespace mintcb::crypto
{

namespace
{

// Small primes for trial division; rejects ~88% of random odd candidates
// before any modexp runs.
constexpr std::array<std::uint64_t, 168> smallPrimes = {
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
    307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383,
    389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463,
    467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547, 557, 563, 569,
    571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647,
    653, 659, 661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743,
    751, 757, 761, 769, 773, 787, 797, 809, 811, 821, 823, 827, 829, 839,
    853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929, 937, 941,
    947, 953, 967, 971, 977, 983, 991, 997,
};

} // namespace

BigNum
randomBits(Rng &rng, std::size_t bits)
{
    if (bits == 0)
        return BigNum();
    Bytes raw = rng.bytes((bits + 7) / 8);
    // Clear excess high bits, then force the top bit.
    const std::size_t excess = raw.size() * 8 - bits;
    raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);
    return BigNum::fromBytesBE(raw);
}

BigNum
randomBelow(Rng &rng, const BigNum &bound)
{
    const std::size_t bits = bound.bitLength();
    if (bits == 0)
        return BigNum();
    // Rejection sampling over [0, 2^bits).
    while (true) {
        Bytes raw = rng.bytes((bits + 7) / 8);
        const std::size_t excess = raw.size() * 8 - bits;
        raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
        BigNum candidate = BigNum::fromBytesBE(raw);
        if (candidate < bound)
            return candidate;
    }
}

bool
isProbablePrime(const BigNum &n, Rng &rng, int rounds)
{
    if (n < BigNum(2))
        return false;
    for (std::uint64_t p : smallPrimes) {
        if (n == BigNum(p))
            return true;
        if (n.modU64(p) == 0)
            return false;
    }

    // Write n - 1 = d * 2^r with d odd.
    const BigNum n_minus_1 = n.subU64(1);
    BigNum d = n_minus_1;
    std::size_t r = 0;
    while (!d.isOdd()) {
        d = d.shiftRight(1);
        ++r;
    }

    const BigNum two(2);
    const BigNum n_minus_3 = n.subU64(3);
    for (int round = 0; round < rounds; ++round) {
        // a uniform in [2, n-2]
        const BigNum a = randomBelow(rng, n_minus_3).addU64(2);
        BigNum x = a.modExp(d, n);
        if (x == BigNum(1) || x == n_minus_1)
            continue;
        bool witness = true;
        for (std::size_t i = 0; i + 1 < r; ++i) {
            x = x.modExp(two, n);
            if (x == n_minus_1) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

namespace
{

std::atomic<std::uint64_t> primeGenerations{0};

} // namespace

std::uint64_t
primeGenerationCount()
{
    return primeGenerations.load(std::memory_order_relaxed);
}

BigNum
generatePrime(Rng &rng, std::size_t bits)
{
    primeGenerations.fetch_add(1, std::memory_order_relaxed);
    while (true) {
        BigNum candidate = randomBits(rng, bits);
        if (!candidate.isOdd())
            candidate = candidate.addU64(1);
        if (isProbablePrime(candidate, rng))
            return candidate;
    }
}

} // namespace mintcb::crypto
