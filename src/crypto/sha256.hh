/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * The TPM v1.2 interface is SHA-1 based, but the simulated TPM's *internal*
 * sealed-blob integrity check uses HMAC-SHA-256 so that blob tampering in
 * tests is detected by a hash that is not trivially collidable.
 */

#ifndef MINTCB_CRYPTO_SHA256_HH
#define MINTCB_CRYPTO_SHA256_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace mintcb::crypto
{

/** Size of a SHA-256 digest in bytes. */
inline constexpr std::size_t sha256DigestSize = 32;

/** A SHA-256 digest value. */
using Sha256Digest = std::array<std::uint8_t, sha256DigestSize>;

/** Incremental SHA-256 context. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Restart the hash computation. */
    void reset();

    /** Absorb @p len bytes at @p data. */
    void update(const std::uint8_t *data, std::size_t len);

    /** Absorb a byte vector. */
    void update(const Bytes &data) { update(data.data(), data.size()); }

    /** Finish and return the digest. */
    Sha256Digest finish();

    /** One-shot digest of a byte vector. */
    static Sha256Digest digest(const Bytes &data);

    /** One-shot digest returned as a 32-entry byte vector. */
    static Bytes digestBytes(const Bytes &data);

    static constexpr std::size_t digestSize = sha256DigestSize;
    static constexpr std::size_t blockSize = 64;

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t h_[8];
    std::uint8_t buffer_[64];
    std::size_t bufferLen_;
    std::uint64_t totalBits_;
};

/** Convert a digest array to a Bytes vector. */
Bytes toBytes(const Sha256Digest &d);

} // namespace mintcb::crypto

#endif // MINTCB_CRYPTO_SHA256_HH
