/**
 * @file
 * HMAC implementation.
 */

#include "crypto/hmac.hh"

namespace mintcb::crypto
{

Bytes
hmacSha1(const Bytes &key, const Bytes &message)
{
    HmacSha1 ctx(key);
    ctx.update(message);
    return ctx.finish();
}

Bytes
hmacSha256(const Bytes &key, const Bytes &message)
{
    HmacSha256 ctx(key);
    ctx.update(message);
    return ctx.finish();
}

bool
constantTimeEqual(const Bytes &a, const Bytes &b)
{
    if (a.size() != b.size())
        return false;
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return acc == 0;
}

} // namespace mintcb::crypto
