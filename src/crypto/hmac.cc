/**
 * @file
 * HMAC implementation.
 */

#include "crypto/hmac.hh"

namespace mintcb::crypto
{

namespace
{

template <typename Hash>
Bytes
hmac(const Bytes &key, const Bytes &message)
{
    Bytes block_key = key;
    if (block_key.size() > Hash::blockSize)
        block_key = Hash::digestBytes(block_key);
    block_key.resize(Hash::blockSize, 0x00);

    Bytes ipad(Hash::blockSize), opad(Hash::blockSize);
    for (std::size_t i = 0; i < Hash::blockSize; ++i) {
        ipad[i] = block_key[i] ^ 0x36;
        opad[i] = block_key[i] ^ 0x5c;
    }

    Hash inner;
    inner.update(ipad);
    inner.update(message);
    Bytes inner_digest;
    {
        auto d = inner.finish();
        inner_digest.assign(d.begin(), d.end());
    }

    Hash outer;
    outer.update(opad);
    outer.update(inner_digest);
    auto d = outer.finish();
    return Bytes(d.begin(), d.end());
}

} // namespace

Bytes
hmacSha1(const Bytes &key, const Bytes &message)
{
    return hmac<Sha1>(key, message);
}

Bytes
hmacSha256(const Bytes &key, const Bytes &message)
{
    return hmac<Sha256>(key, message);
}

bool
constantTimeEqual(const Bytes &a, const Bytes &b)
{
    if (a.size() != b.size())
        return false;
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return acc == 0;
}

} // namespace mintcb::crypto
