/**
 * @file
 * HMAC (RFC 2104) over any of the mintcb hash contexts.
 *
 * Used by the simulated TPM for sealed-blob integrity and by the SEA
 * attestation path for transport-session binding (paper Section 3.3 notes
 * the TPM's secure transport sessions keep the south bridge out of the TCB).
 */

#ifndef MINTCB_CRYPTO_HMAC_HH
#define MINTCB_CRYPTO_HMAC_HH

#include "common/types.hh"
#include "crypto/sha1.hh"
#include "crypto/sha256.hh"

namespace mintcb::crypto
{

/** HMAC-SHA1 of @p message under @p key. */
Bytes hmacSha1(const Bytes &key, const Bytes &message);

/** HMAC-SHA256 of @p message under @p key. */
Bytes hmacSha256(const Bytes &key, const Bytes &message);

/** Constant-time byte comparison (avoids modeling a timing oracle). */
bool constantTimeEqual(const Bytes &a, const Bytes &b);

} // namespace mintcb::crypto

#endif // MINTCB_CRYPTO_HMAC_HH
