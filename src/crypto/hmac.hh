/**
 * @file
 * HMAC (RFC 2104) over any of the mintcb hash contexts.
 *
 * Used by the simulated TPM for sealed-blob integrity and by the SEA
 * attestation path for transport-session binding (paper Section 3.3 notes
 * the TPM's secure transport sessions keep the south bridge out of the TCB).
 */

#ifndef MINTCB_CRYPTO_HMAC_HH
#define MINTCB_CRYPTO_HMAC_HH

#include <cstring>

#include "common/types.hh"
#include "crypto/sha1.hh"
#include "crypto/sha256.hh"

namespace mintcb::crypto
{

/**
 * Incremental HMAC context over either hash. The key schedule (both
 * pads) is absorbed once at construction; update() streams message
 * bytes with no intermediate concatenation buffers, so MACing a
 * multi-part transcript costs exactly one pass over the bytes.
 */
template <typename Hash>
class HmacCtx
{
  public:
    explicit HmacCtx(const Bytes &key) { init(key); }

    /** Rekey and restart (equivalent to constructing afresh). */
    void
    init(const Bytes &key)
    {
        std::uint8_t block_key[Hash::blockSize] = {0};
        if (key.size() > Hash::blockSize) {
            Hash h;
            h.update(key);
            const auto digest = h.finish();
            std::memcpy(block_key, digest.data(), digest.size());
        } else if (!key.empty()) {
            std::memcpy(block_key, key.data(), key.size());
        }
        std::uint8_t pad[Hash::blockSize];
        inner_.reset();
        outer_.reset();
        for (std::size_t i = 0; i < Hash::blockSize; ++i)
            pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
        inner_.update(pad, Hash::blockSize);
        for (std::size_t i = 0; i < Hash::blockSize; ++i)
            pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
        outer_.update(pad, Hash::blockSize);
    }

    void
    update(const std::uint8_t *data, std::size_t len)
    {
        inner_.update(data, len);
    }

    void update(const Bytes &data) { update(data.data(), data.size()); }

    /** Finish and return the MAC; init() again to reuse the context. */
    Bytes
    finish()
    {
        const auto inner_digest = inner_.finish();
        outer_.update(inner_digest.data(), inner_digest.size());
        const auto mac = outer_.finish();
        return Bytes(mac.begin(), mac.end());
    }

  private:
    Hash inner_;
    Hash outer_;
};

using HmacSha1 = HmacCtx<Sha1>;
using HmacSha256 = HmacCtx<Sha256>;

/** HMAC-SHA1 of @p message under @p key. */
Bytes hmacSha1(const Bytes &key, const Bytes &message);

/** HMAC-SHA256 of @p message under @p key. */
Bytes hmacSha256(const Bytes &key, const Bytes &message);

/** Constant-time byte comparison (avoids modeling a timing oracle). */
bool constantTimeEqual(const Bytes &a, const Bytes &b);

} // namespace mintcb::crypto

#endif // MINTCB_CRYPTO_HMAC_HH
