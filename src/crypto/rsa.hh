/**
 * @file
 * RSA from scratch: key generation, PKCS#1 v1.5 signatures and encryption.
 *
 * The TPM v1.2 operations the paper measures are dominated by 2048-bit RSA:
 * Quote signs with the AIK, Seal/Unseal encrypt/decrypt under the Storage
 * Root Key (Section 4.2: "Both TPM Quote and TPM Unseal perform a private
 * RSA operation (digital signature and decrypt, respectively), which is
 * their dominant source of overhead"). mintcb performs those operations for
 * real so seal/quote round-trips are end-to-end verifiable.
 */

#ifndef MINTCB_CRYPTO_RSA_HH
#define MINTCB_CRYPTO_RSA_HH

#include <cstdint>

#include "common/result.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "crypto/bignum.hh"

namespace mintcb::crypto
{

/** Public half of an RSA key pair. */
struct RsaPublicKey
{
    BigNum n; //!< modulus
    BigNum e; //!< public exponent (65537)

    /** Modulus size in whole bytes. */
    std::size_t
    modulusBytes() const
    {
        return (n.bitLength() + 7) / 8;
    }

    /** Stable fingerprint (SHA-1 of the encoded key) for certificates. */
    Bytes fingerprint() const;

    /** Wire encoding (length-prefixed n and e). */
    Bytes encode() const;
    static Result<RsaPublicKey> decode(const Bytes &wire);
};

/** Private RSA key with CRT components. */
struct RsaPrivateKey
{
    RsaPublicKey pub;
    BigNum d;    //!< private exponent
    BigNum p;    //!< first prime
    BigNum q;    //!< second prime
    BigNum dP;   //!< d mod (p-1)
    BigNum dQ;   //!< d mod (q-1)
    BigNum qInv; //!< q^{-1} mod p

    /** True when every CRT parameter is present (fast private op). */
    bool hasCrt() const;

    /**
     * Fill in missing CRT parameters from d/p/q with three cheap
     * modular reductions -- never a prime search. A key without its
     * factorization (p or q absent) is returned unchanged and keeps
     * working through the plain-modExp fallback in rsaPrivateOp.
     */
    void augmentCrt();

    /** Wire encoding for the process-wide key cache (always the full
     *  eight-field layout). */
    Bytes encode() const;

    /** Decode either the full eight-field layout or the legacy
     *  three-field (n, e, d) layout of CRT-less imported keys. */
    static Result<RsaPrivateKey> decode(const Bytes &wire);
};

/** Generate an RSA key pair with modulus of exactly @p bits bits. */
RsaPrivateKey rsaGenerate(Rng &rng, std::size_t bits);

/** Raw RSA public operation m^e mod n (m must be < n). */
BigNum rsaPublicOp(const RsaPublicKey &key, const BigNum &m);

/** Raw RSA private operation via CRT. */
BigNum rsaPrivateOp(const RsaPrivateKey &key, const BigNum &c);

/**
 * PKCS#1 v1.5 signature over @p message using SHA-1 DigestInfo (the v1.2
 * TPM's signing format).
 */
Bytes rsaSignSha1(const RsaPrivateKey &key, const Bytes &message);

/** Verify a PKCS#1 v1.5 / SHA-1 signature. */
bool rsaVerifySha1(const RsaPublicKey &key, const Bytes &message,
                   const Bytes &signature);

/**
 * PKCS#1 v1.5 type-2 encryption. The plaintext must be at most
 * modulusBytes() - 11 bytes.
 */
Result<Bytes> rsaEncrypt(const RsaPublicKey &key, Rng &rng,
                         const Bytes &plaintext);

/** Decrypt a PKCS#1 v1.5 type-2 ciphertext. */
Result<Bytes> rsaDecrypt(const RsaPrivateKey &key, const Bytes &ciphertext);

} // namespace mintcb::crypto

#endif // MINTCB_CRYPTO_RSA_HH
