/**
 * @file
 * Bignum implementation: schoolbook multiply, Knuth Algorithm D division,
 * Montgomery modular exponentiation.
 */

#include "crypto/bignum.hh"

#include <algorithm>
#include <cassert>

#include "common/hex.hh"

namespace mintcb::crypto
{

using u64 = std::uint64_t;
using u128 = unsigned __int128;

void
BigNum::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

BigNum
BigNum::fromLimbs(std::vector<u64> limbs)
{
    BigNum n;
    n.limbs_ = std::move(limbs);
    n.trim();
    return n;
}

BigNum::BigNum(u64 v)
{
    if (v)
        limbs_.push_back(v);
}

BigNum
BigNum::fromBytesBE(const Bytes &bytes)
{
    BigNum n;
    const std::size_t nbytes = bytes.size();
    const std::size_t nlimbs = (nbytes + 7) / 8;
    n.limbs_.assign(nlimbs, 0);
    for (std::size_t i = 0; i < nbytes; ++i) {
        // bytes[0] is most significant.
        const std::size_t byte_index = nbytes - 1 - i; // from LSB
        n.limbs_[i / 8] |= static_cast<u64>(bytes[byte_index]) << (8 * (i % 8));
    }
    n.trim();
    return n;
}

BigNum
BigNum::fromHexString(const std::string &hex)
{
    std::string padded = hex;
    if (padded.size() % 2)
        padded.insert(padded.begin(), '0');
    auto bytes = fromHex(padded);
    assert(bytes.ok() && "invalid hex literal for BigNum");
    return fromBytesBE(*bytes);
}

Bytes
BigNum::toBytesBE(std::size_t width) const
{
    const std::size_t min_bytes = (bitLength() + 7) / 8;
    const std::size_t out_bytes = width ? width : std::max<std::size_t>(
        min_bytes, 1);
    assert(out_bytes >= min_bytes && "value wider than requested encoding");
    Bytes out(out_bytes, 0);
    for (std::size_t i = 0; i < min_bytes; ++i) {
        const u64 limb = limbs_[i / 8];
        out[out_bytes - 1 - i] =
            static_cast<std::uint8_t>(limb >> (8 * (i % 8)));
    }
    return out;
}

std::string
BigNum::toHexString() const
{
    if (isZero())
        return "0";
    std::string s = toHex(toBytesBE());
    const std::size_t first = s.find_first_not_of('0');
    return s.substr(first);
}

std::size_t
BigNum::bitLength() const
{
    if (limbs_.empty())
        return 0;
    const u64 top = limbs_.back();
    std::size_t bits = (limbs_.size() - 1) * 64;
    return bits + (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

bool
BigNum::bit(std::size_t i) const
{
    const std::size_t limb = i / 64;
    if (limb >= limbs_.size())
        return false;
    return (limbs_[limb] >> (i % 64)) & 1;
}

int
BigNum::compare(const BigNum &o) const
{
    if (limbs_.size() != o.limbs_.size())
        return limbs_.size() < o.limbs_.size() ? -1 : 1;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != o.limbs_[i])
            return limbs_[i] < o.limbs_[i] ? -1 : 1;
    }
    return 0;
}

BigNum
BigNum::operator+(const BigNum &o) const
{
    const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
    std::vector<u64> out(n + 1, 0);
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u64 a = i < limbs_.size() ? limbs_[i] : 0;
        const u64 b = i < o.limbs_.size() ? o.limbs_[i] : 0;
        const u128 sum = static_cast<u128>(a) + b + carry;
        out[i] = static_cast<u64>(sum);
        carry = static_cast<u64>(sum >> 64);
    }
    out[n] = carry;
    return fromLimbs(std::move(out));
}

BigNum
BigNum::operator-(const BigNum &o) const
{
    assert(*this >= o && "BigNum subtraction underflow");
    std::vector<u64> out(limbs_.size(), 0);
    u64 borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const u64 a = limbs_[i];
        const u64 b = i < o.limbs_.size() ? o.limbs_[i] : 0;
        const u128 sub = static_cast<u128>(a) - b - borrow;
        out[i] = static_cast<u64>(sub);
        borrow = (sub >> 64) ? 1 : 0; // wrapped => borrow
    }
    assert(borrow == 0);
    return fromLimbs(std::move(out));
}

BigNum
BigNum::operator*(const BigNum &o) const
{
    if (isZero() || o.isZero())
        return BigNum();
    std::vector<u64> out(limbs_.size() + o.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        u64 carry = 0;
        const u64 a = limbs_[i];
        for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
            const u128 cur = static_cast<u128>(a) * o.limbs_[j] +
                             out[i + j] + carry;
            out[i + j] = static_cast<u64>(cur);
            carry = static_cast<u64>(cur >> 64);
        }
        out[i + o.limbs_.size()] += carry;
    }
    return fromLimbs(std::move(out));
}

BigNum
BigNum::shiftLeft(std::size_t bits) const
{
    if (isZero() || bits == 0) {
        BigNum copy = *this;
        return copy;
    }
    const std::size_t limb_shift = bits / 64;
    const std::size_t bit_shift = bits % 64;
    std::vector<u64> out(limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        out[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift)
                                         : limbs_[i];
        if (bit_shift)
            out[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
    return fromLimbs(std::move(out));
}

BigNum
BigNum::shiftRight(std::size_t bits) const
{
    const std::size_t limb_shift = bits / 64;
    if (limb_shift >= limbs_.size())
        return BigNum();
    const std::size_t bit_shift = bits % 64;
    std::vector<u64> out(limbs_.size() - limb_shift, 0);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift && i + limb_shift + 1 < limbs_.size())
            out[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
    return fromLimbs(std::move(out));
}

BigNum
BigNum::addU64(u64 v) const
{
    return *this + BigNum(v);
}

BigNum
BigNum::subU64(u64 v) const
{
    return *this - BigNum(v);
}

BigNum
BigNum::mulU64(u64 v) const
{
    return *this * BigNum(v);
}

u64
BigNum::modU64(u64 divisor) const
{
    assert(divisor != 0);
    u128 rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;)
        rem = ((rem << 64) | limbs_[i]) % divisor;
    return static_cast<u64>(rem);
}

BigNum::DivMod
BigNum::divmod(const BigNum &divisor) const
{
    assert(!divisor.isZero() && "division by zero");
    if (*this < divisor)
        return {BigNum(), *this};

    // Single-limb divisor: simple long division.
    if (divisor.limbs_.size() == 1) {
        const u64 d = divisor.limbs_[0];
        std::vector<u64> q(limbs_.size(), 0);
        u128 rem = 0;
        for (std::size_t i = limbs_.size(); i-- > 0;) {
            const u128 cur = (rem << 64) | limbs_[i];
            q[i] = static_cast<u64>(cur / d);
            rem = cur % d;
        }
        return {fromLimbs(std::move(q)), BigNum(static_cast<u64>(rem))};
    }

    // Knuth TAOCP Vol 2, Algorithm D. Normalize so the divisor's top limb
    // has its high bit set.
    const std::size_t shift =
        static_cast<std::size_t>(__builtin_clzll(divisor.limbs_.back()));
    const BigNum u_norm = shiftLeft(shift);
    const BigNum v_norm = divisor.shiftLeft(shift);

    const std::size_t n = v_norm.limbs_.size();
    const std::size_t m = u_norm.limbs_.size() - n;

    std::vector<u64> u(u_norm.limbs_);
    u.push_back(0); // u has m + n + 1 limbs
    const std::vector<u64> &v = v_norm.limbs_;
    std::vector<u64> q(m + 1, 0);

    for (std::size_t j = m + 1; j-- > 0;) {
        // Estimate q_hat = (u[j+n]*B + u[j+n-1]) / v[n-1], then correct.
        const u128 numerator =
            (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
        u128 q_hat = numerator / v[n - 1];
        u128 r_hat = numerator % v[n - 1];

        while (q_hat >> 64 ||
               q_hat * v[n - 2] > ((r_hat << 64) | u[j + n - 2])) {
            --q_hat;
            r_hat += v[n - 1];
            if (r_hat >> 64)
                break;
        }

        // Multiply-and-subtract: u[j..j+n] -= q_hat * v[0..n-1].
        u128 borrow = 0;
        u128 carry = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const u128 product = q_hat * v[i] + carry;
            carry = product >> 64;
            const u128 sub = static_cast<u128>(u[j + i]) -
                             static_cast<u64>(product) - borrow;
            u[j + i] = static_cast<u64>(sub);
            borrow = (sub >> 64) ? 1 : 0;
        }
        const u128 sub = static_cast<u128>(u[j + n]) -
                         static_cast<u64>(carry) - borrow;
        u[j + n] = static_cast<u64>(sub);
        borrow = (sub >> 64) ? 1 : 0;

        q[j] = static_cast<u64>(q_hat);

        if (borrow) {
            // q_hat was one too large: add the divisor back.
            --q[j];
            u128 add_carry = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const u128 sum = static_cast<u128>(u[j + i]) + v[i] +
                                 add_carry;
                u[j + i] = static_cast<u64>(sum);
                add_carry = sum >> 64;
            }
            u[j + n] = static_cast<u64>(u[j + n] + add_carry);
        }
    }

    u.resize(n);
    const BigNum remainder = fromLimbs(std::move(u)).shiftRight(shift);
    return {fromLimbs(std::move(q)), remainder};
}

namespace
{

/** -n^{-1} mod 2^64 for odd n (Newton/Hensel lifting). */
u64
montgomeryN0Inv(u64 n0)
{
    u64 inv = n0; // 3-bit correct seed for odd n0
    for (int i = 0; i < 6; ++i)
        inv *= 2 - n0 * inv; // doubles correct bits each step
    return ~inv + 1; // -inv mod 2^64
}

/**
 * CIOS Montgomery multiplication: returns a*b*R^{-1} mod n, where all
 * operands are k-limb little-endian arrays and R = 2^(64k).
 */
void
montMul(const std::vector<u64> &a, const std::vector<u64> &b,
        const std::vector<u64> &n, u64 n0inv, std::vector<u64> &out,
        std::vector<u64> &scratch)
{
    const std::size_t k = n.size();
    std::vector<u64> &t = scratch;
    std::fill(t.begin(), t.end(), 0); // k + 2 limbs

    for (std::size_t i = 0; i < k; ++i) {
        // t += a[i] * b
        u64 carry = 0;
        const u64 ai = a[i];
        for (std::size_t j = 0; j < k; ++j) {
            const u128 cur = static_cast<u128>(ai) * b[j] + t[j] + carry;
            t[j] = static_cast<u64>(cur);
            carry = static_cast<u64>(cur >> 64);
        }
        u128 sum = static_cast<u128>(t[k]) + carry;
        t[k] = static_cast<u64>(sum);
        t[k + 1] = static_cast<u64>(sum >> 64);

        // m = t[0] * n0inv mod 2^64; t += m * n; t >>= 64
        const u64 m = t[0] * n0inv;
        carry = 0;
        {
            const u128 cur = static_cast<u128>(m) * n[0] + t[0];
            carry = static_cast<u64>(cur >> 64);
        }
        for (std::size_t j = 1; j < k; ++j) {
            const u128 cur = static_cast<u128>(m) * n[j] + t[j] + carry;
            t[j - 1] = static_cast<u64>(cur);
            carry = static_cast<u64>(cur >> 64);
        }
        sum = static_cast<u128>(t[k]) + carry;
        t[k - 1] = static_cast<u64>(sum);
        t[k] = t[k + 1] + static_cast<u64>(sum >> 64);
        t[k + 1] = 0;
    }

    // Conditional final subtraction: t may be in [0, 2n).
    bool ge = t[k] != 0;
    if (!ge) {
        ge = true;
        for (std::size_t i = k; i-- > 0;) {
            if (t[i] != n[i]) {
                ge = t[i] > n[i];
                break;
            }
        }
    }
    if (ge) {
        u64 borrow = 0;
        for (std::size_t i = 0; i < k; ++i) {
            const u128 sub = static_cast<u128>(t[i]) - n[i] - borrow;
            t[i] = static_cast<u64>(sub);
            borrow = (sub >> 64) ? 1 : 0;
        }
    }
    std::copy(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k),
              out.begin());
}

} // namespace

BigNum
BigNum::modExp(const BigNum &exp, const BigNum &m) const
{
    assert(!m.isZero() && "modExp with zero modulus");
    if (m == BigNum(1))
        return BigNum();
    const BigNum base = *this % m;
    if (exp.isZero())
        return BigNum(1);
    if (base.isZero())
        return BigNum();

    if (!m.isOdd()) {
        // Rare in RSA; fall back to square-and-multiply with division.
        BigNum result(1);
        BigNum b = base;
        for (std::size_t i = 0; i < exp.bitLength(); ++i) {
            if (exp.bit(i))
                result = (result * b) % m;
            b = (b * b) % m;
        }
        return result;
    }

    // Montgomery ladder (left-to-right square-and-multiply in the
    // Montgomery domain).
    const std::size_t k = m.limbs_.size();
    std::vector<u64> n(m.limbs_);
    const u64 n0inv = montgomeryN0Inv(n[0]);

    // R mod n and R^2 mod n via shifting.
    const BigNum r_mod_n = BigNum(1).shiftLeft(64 * k) % m;
    const BigNum r2_mod_n = (r_mod_n * r_mod_n) % m;

    auto widen = [k](const BigNum &v) {
        std::vector<u64> out(v.limbs_);
        out.resize(k, 0);
        return out;
    };

    std::vector<u64> scratch(k + 2, 0);
    std::vector<u64> base_mont(k, 0);
    std::vector<u64> acc(k, 0);
    const std::vector<u64> base_raw = widen(base);
    const std::vector<u64> r2 = widen(r2_mod_n);
    const std::vector<u64> one_mont = widen(r_mod_n);

    montMul(base_raw, r2, n, n0inv, base_mont, scratch); // to Montgomery

    // Fixed 4-bit windows pay for their 14-entry table only when the
    // exponent is long (RSA private exponents, Miller-Rabin witnesses);
    // short exponents (65537 verify path) keep the plain ladder.
    constexpr std::size_t windowBits = 4;
    const std::size_t expBits = exp.bitLength();
    if (expBits >= 2 * 64) {
        std::vector<std::vector<u64>> table(std::size_t{1} << windowBits);
        table[0] = one_mont;
        table[1] = base_mont;
        for (std::size_t i = 2; i < table.size(); ++i) {
            table[i].assign(k, 0);
            montMul(table[i - 1], base_mont, n, n0inv, table[i], scratch);
        }
        const std::size_t nwin =
            (expBits + windowBits - 1) / windowBits;
        for (std::size_t w = nwin; w-- > 0;) {
            std::size_t v = 0;
            for (std::size_t b = windowBits; b-- > 0;)
                v = (v << 1) | (exp.bit(w * windowBits + b) ? 1u : 0u);
            if (w == nwin - 1) {
                acc = table[v]; // top window: skip the 1^16 squarings
                continue;
            }
            for (std::size_t s = 0; s < windowBits; ++s)
                montMul(acc, acc, n, n0inv, acc, scratch);
            if (v)
                montMul(acc, table[v], n, n0inv, acc, scratch);
        }
    } else {
        acc = one_mont;
        for (std::size_t i = expBits; i-- > 0;) {
            montMul(acc, acc, n, n0inv, acc, scratch);
            if (exp.bit(i))
                montMul(acc, base_mont, n, n0inv, acc, scratch);
        }
    }

    // Convert out of the Montgomery domain: multiply by 1.
    std::vector<u64> one(k, 0);
    one[0] = 1;
    montMul(acc, one, n, n0inv, acc, scratch);
    return fromLimbs(std::move(acc));
}

BigNum
BigNum::gcd(BigNum a, BigNum b)
{
    while (!b.isZero()) {
        BigNum r = a % b;
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

BigNum
BigNum::modInverse(const BigNum &m) const
{
    // Extended Euclid with explicit sign tracking (values stay unsigned).
    assert(!m.isZero());
    BigNum r0 = m;
    BigNum r1 = *this % m;
    BigNum t0;      // coefficient for m
    BigNum t1(1);   // coefficient for *this
    bool t0_neg = false, t1_neg = false;

    while (!r1.isZero()) {
        const DivMod dm = r0.divmod(r1);
        const BigNum &q = dm.quotient;

        // t2 = t0 - q * t1 with sign handling.
        const BigNum qt1 = q * t1;
        BigNum t2;
        bool t2_neg;
        if (t0_neg == t1_neg) {
            // Same sign: t0 - q*t1 may flip sign.
            if (t0 >= qt1) {
                t2 = t0 - qt1;
                t2_neg = t0_neg;
            } else {
                t2 = qt1 - t0;
                t2_neg = !t0_neg;
            }
        } else {
            // Opposite signs: magnitudes add, sign follows t0.
            t2 = t0 + qt1;
            t2_neg = t0_neg;
        }

        r0 = r1;
        r1 = dm.remainder;
        t0 = std::move(t1);
        t0_neg = t1_neg;
        t1 = std::move(t2);
        t1_neg = t2_neg;
    }

    if (r0 != BigNum(1))
        return BigNum(); // no inverse
    if (t0_neg)
        return m - (t0 % m);
    return t0 % m;
}

} // namespace mintcb::crypto
