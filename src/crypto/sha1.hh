/**
 * @file
 * SHA-1 (RFC 3174), implemented from scratch.
 *
 * SHA-1 is the measurement hash of the TPM v1.2 era: PCR extends, SKINIT's
 * TPM_HASH_DATA path, the ACMod's CPU-side PAL hash, and quote composites
 * all use it (paper Sections 2.1 and 3.3). It is cryptographically broken
 * today; we implement it because the reproduction targets 2008 semantics.
 */

#ifndef MINTCB_CRYPTO_SHA1_HH
#define MINTCB_CRYPTO_SHA1_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace mintcb::crypto
{

/** Size of a SHA-1 digest in bytes. */
inline constexpr std::size_t sha1DigestSize = 20;

/** A SHA-1 digest value. */
using Sha1Digest = std::array<std::uint8_t, sha1DigestSize>;

/** Incremental SHA-1 context. */
class Sha1
{
  public:
    Sha1() { reset(); }

    /** Restart the hash computation. */
    void reset();

    /** Absorb @p len bytes at @p data. */
    void update(const std::uint8_t *data, std::size_t len);

    /** Absorb a byte vector. */
    void update(const Bytes &data) { update(data.data(), data.size()); }

    /** Finish and return the digest; the context must be reset to reuse. */
    Sha1Digest finish();

    /** One-shot digest of a byte vector. */
    static Sha1Digest digest(const Bytes &data);

    /** One-shot digest returned as a 20-entry byte vector. */
    static Bytes digestBytes(const Bytes &data);

    /** Digest size as a Bytes-compatible constant. */
    static constexpr std::size_t digestSize = sha1DigestSize;

    /** Internal block size in bytes (for HMAC). */
    static constexpr std::size_t blockSize = 64;

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t h_[5];
    std::uint8_t buffer_[64];
    std::size_t bufferLen_;
    std::uint64_t totalBits_;
};

/** Convert a digest array to a Bytes vector. */
Bytes toBytes(const Sha1Digest &d);

} // namespace mintcb::crypto

#endif // MINTCB_CRYPTO_SHA1_HH
