/**
 * @file
 * RSA implementation.
 */

#include "crypto/rsa.hh"

#include <cassert>

#include "common/bytebuf.hh"
#include "crypto/prime.hh"
#include "crypto/sha1.hh"

namespace mintcb::crypto
{

namespace
{

// DER prefix of DigestInfo{SHA-1} from RFC 3447 section 9.2.
constexpr std::uint8_t sha1DigestInfoPrefix[] = {
    0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e,
    0x03, 0x02, 0x1a, 0x05, 0x00, 0x04, 0x14,
};

Bytes
digestInfoSha1(const Bytes &message)
{
    Bytes out(std::begin(sha1DigestInfoPrefix),
              std::end(sha1DigestInfoPrefix));
    const Bytes digest = Sha1::digestBytes(message);
    out.insert(out.end(), digest.begin(), digest.end());
    return out;
}

/** EMSA-PKCS1-v1_5 encoding: 0x00 0x01 FF..FF 0x00 DigestInfo. */
Result<Bytes>
emsaPkcs1(const Bytes &digest_info, std::size_t em_len)
{
    if (em_len < digest_info.size() + 11)
        return Error(Errc::invalidArgument, "modulus too small for EMSA");
    Bytes em(em_len, 0xff);
    em[0] = 0x00;
    em[1] = 0x01;
    em[em_len - digest_info.size() - 1] = 0x00;
    std::copy(digest_info.begin(), digest_info.end(),
              em.end() - static_cast<std::ptrdiff_t>(digest_info.size()));
    return em;
}

} // namespace

Bytes
RsaPublicKey::encode() const
{
    ByteWriter w;
    w.lengthPrefixed(n.toBytesBE());
    w.lengthPrefixed(e.toBytesBE());
    return w.take();
}

Result<RsaPublicKey>
RsaPublicKey::decode(const Bytes &wire)
{
    ByteReader r(wire);
    auto n_bytes = r.lengthPrefixed();
    if (!n_bytes)
        return n_bytes.error();
    auto e_bytes = r.lengthPrefixed();
    if (!e_bytes)
        return e_bytes.error();
    RsaPublicKey key;
    key.n = BigNum::fromBytesBE(*n_bytes);
    key.e = BigNum::fromBytesBE(*e_bytes);
    if (key.n.isZero() || key.e.isZero())
        return Error(Errc::invalidArgument, "degenerate RSA public key");
    return key;
}

Bytes
RsaPublicKey::fingerprint() const
{
    return Sha1::digestBytes(encode());
}

Bytes
RsaPrivateKey::encode() const
{
    ByteWriter w;
    w.lengthPrefixed(pub.n.toBytesBE());
    w.lengthPrefixed(pub.e.toBytesBE());
    w.lengthPrefixed(d.toBytesBE());
    w.lengthPrefixed(p.toBytesBE());
    w.lengthPrefixed(q.toBytesBE());
    w.lengthPrefixed(dP.toBytesBE());
    w.lengthPrefixed(dQ.toBytesBE());
    w.lengthPrefixed(qInv.toBytesBE());
    return w.take();
}

bool
RsaPrivateKey::hasCrt() const
{
    return !p.isZero() && !q.isZero() && !dP.isZero() && !dQ.isZero() &&
           !qInv.isZero();
}

void
RsaPrivateKey::augmentCrt()
{
    if (hasCrt() || p.isZero() || q.isZero())
        return;
    dP = d % p.subU64(1);
    dQ = d % q.subU64(1);
    qInv = q.modInverse(p);
}

Result<RsaPrivateKey>
RsaPrivateKey::decode(const Bytes &wire)
{
    ByteReader r(wire);
    RsaPrivateKey key;
    BigNum *mandatory[] = {&key.pub.n, &key.pub.e, &key.d};
    for (BigNum *field : mandatory) {
        auto bytes = r.lengthPrefixed();
        if (!bytes)
            return bytes.error();
        *field = BigNum::fromBytesBE(*bytes);
    }
    // Legacy CRT-less keys stop here; the full layout carries p, q and
    // the three CRT values.
    if (!r.atEnd()) {
        BigNum *crt[] = {&key.p, &key.q, &key.dP, &key.dQ, &key.qInv};
        for (BigNum *field : crt) {
            auto bytes = r.lengthPrefixed();
            if (!bytes)
                return bytes.error();
            *field = BigNum::fromBytesBE(*bytes);
        }
    }
    if (!r.atEnd())
        return Error(Errc::invalidArgument, "trailing bytes in RSA key");
    return key;
}

RsaPrivateKey
rsaGenerate(Rng &rng, std::size_t bits)
{
    assert(bits >= 128 && bits % 2 == 0 && "unsupported RSA modulus size");
    const BigNum e(65537);
    while (true) {
        const BigNum p = generatePrime(rng, bits / 2);
        BigNum q = generatePrime(rng, bits / 2);
        if (p == q)
            continue;
        const BigNum n = p * q;
        if (n.bitLength() != bits)
            continue;
        const BigNum p1 = p.subU64(1);
        const BigNum q1 = q.subU64(1);
        const BigNum phi = p1 * q1;
        if (BigNum::gcd(e, phi) != BigNum(1))
            continue;
        const BigNum d = e.modInverse(phi);
        assert(!d.isZero());

        RsaPrivateKey key;
        key.pub.n = n;
        key.pub.e = e;
        key.d = d;
        if (p > q) {
            key.p = p;
            key.q = q;
        } else {
            key.p = q;
            key.q = p;
        }
        key.dP = key.d % key.p.subU64(1);
        key.dQ = key.d % key.q.subU64(1);
        key.qInv = key.q.modInverse(key.p);
        assert(!key.qInv.isZero());
        return key;
    }
}

BigNum
rsaPublicOp(const RsaPublicKey &key, const BigNum &m)
{
    assert(m < key.n);
    return m.modExp(key.e, key.n);
}

BigNum
rsaPrivateOp(const RsaPrivateKey &key, const BigNum &c)
{
    assert(c < key.pub.n);
    // Keys without CRT parameters (legacy cache entries, imported d-only
    // keys) take the full-width path; the result is identical.
    if (!key.hasCrt())
        return c.modExp(key.d, key.pub.n);
    // Garner's CRT recombination: ~4x faster than a full-width modexp.
    const BigNum m1 = (c % key.p).modExp(key.dP, key.p);
    const BigNum m2 = (c % key.q).modExp(key.dQ, key.q);
    // h = qInv * (m1 - m2) mod p
    BigNum diff;
    if (m1 >= m2) {
        diff = m1 - m2;
    } else {
        diff = key.p - ((m2 - m1) % key.p);
        if (diff == key.p)
            diff = BigNum();
    }
    const BigNum h = (key.qInv * diff) % key.p;
    return m2 + key.q * h;
}

Bytes
rsaSignSha1(const RsaPrivateKey &key, const Bytes &message)
{
    const std::size_t k = key.pub.modulusBytes();
    auto em = emsaPkcs1(digestInfoSha1(message), k);
    assert(em.ok() && "modulus too small to sign SHA-1 DigestInfo");
    const BigNum m = BigNum::fromBytesBE(*em);
    return rsaPrivateOp(key, m).toBytesBE(k);
}

bool
rsaVerifySha1(const RsaPublicKey &key, const Bytes &message,
              const Bytes &signature)
{
    const std::size_t k = key.modulusBytes();
    if (signature.size() != k)
        return false;
    const BigNum s = BigNum::fromBytesBE(signature);
    if (s >= key.n)
        return false;
    const Bytes em = rsaPublicOp(key, s).toBytesBE(k);
    auto expected = emsaPkcs1(digestInfoSha1(message), k);
    if (!expected.ok())
        return false;
    return em == *expected;
}

Result<Bytes>
rsaEncrypt(const RsaPublicKey &key, Rng &rng, const Bytes &plaintext)
{
    const std::size_t k = key.modulusBytes();
    if (plaintext.size() + 11 > k) {
        return Error(Errc::invalidArgument,
                     "plaintext too long for RSA modulus");
    }
    // EME-PKCS1-v1_5: 0x00 0x02 PS(nonzero random) 0x00 M
    Bytes em(k, 0);
    em[1] = 0x02;
    const std::size_t ps_len = k - plaintext.size() - 3;
    for (std::size_t i = 0; i < ps_len; ++i) {
        std::uint8_t b = 0;
        while (b == 0)
            b = static_cast<std::uint8_t>(rng.next() & 0xff);
        em[2 + i] = b;
    }
    em[2 + ps_len] = 0x00;
    std::copy(plaintext.begin(), plaintext.end(),
              em.begin() + static_cast<std::ptrdiff_t>(2 + ps_len + 1));
    const BigNum m = BigNum::fromBytesBE(em);
    return rsaPublicOp(key, m).toBytesBE(k);
}

Result<Bytes>
rsaDecrypt(const RsaPrivateKey &key, const Bytes &ciphertext)
{
    const std::size_t k = key.pub.modulusBytes();
    if (ciphertext.size() != k)
        return Error(Errc::invalidArgument, "ciphertext length mismatch");
    const BigNum c = BigNum::fromBytesBE(ciphertext);
    if (c >= key.pub.n)
        return Error(Errc::invalidArgument, "ciphertext out of range");
    const Bytes em = rsaPrivateOp(key, c).toBytesBE(k);
    if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02)
        return Error(Errc::integrityFailure, "bad PKCS#1 padding");
    std::size_t sep = 2;
    while (sep < em.size() && em[sep] != 0x00)
        ++sep;
    if (sep == em.size() || sep < 10)
        return Error(Errc::integrityFailure, "bad PKCS#1 padding");
    return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep + 1),
                 em.end());
}

} // namespace mintcb::crypto
