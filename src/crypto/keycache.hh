/**
 * @file
 * Process-wide deterministic RSA key cache.
 *
 * Every simulated TPM needs an SRK and an AIK; generating fresh 2048-bit
 * keys per test would dominate wall time without testing anything new.
 * The cache derives each key deterministically from a (label, bits) pair,
 * generates it once per process, and hands out copies. Tests that *do*
 * exercise key generation call rsaGenerate directly.
 */

#ifndef MINTCB_CRYPTO_KEYCACHE_HH
#define MINTCB_CRYPTO_KEYCACHE_HH

#include <string>

#include "crypto/rsa.hh"

namespace mintcb::crypto
{

/**
 * Return the deterministic RSA key for @p label at @p bits, generating and
 * memoizing it on first use. Thread-compatible (mintcb simulations are
 * single-threaded by design; simulated concurrency uses virtual time).
 */
const RsaPrivateKey &cachedKey(const std::string &label, std::size_t bits);

/** Default modulus size for simulated TPM keys (TCG v1.2: 2048). */
inline constexpr std::size_t tpmKeyBits = 2048;

/**
 * Deterministic 32-byte transport-session secret for @p label, memoized
 * per process. The execution service uses this to *resume* TPM transport
 * sessions across launches instead of re-running the RSA key exchange
 * (an in-TPM private-key operation costing hundreds of milliseconds of
 * simulated time, Section 4.3.3) for every request.
 */
const Bytes &cachedSessionSecret(const std::string &label);

} // namespace mintcb::crypto

#endif // MINTCB_CRYPTO_KEYCACHE_HH
