/**
 * @file
 * Process-wide deterministic RSA key cache.
 *
 * Every simulated TPM needs an SRK and an AIK; generating fresh 2048-bit
 * keys per test would dominate wall time without testing anything new.
 * The cache derives each key deterministically from a (label, bits) pair,
 * generates it once per process, and hands out copies. Tests that *do*
 * exercise key generation call rsaGenerate directly.
 */

#ifndef MINTCB_CRYPTO_KEYCACHE_HH
#define MINTCB_CRYPTO_KEYCACHE_HH

#include <string>

#include "crypto/rsa.hh"

namespace mintcb::crypto
{

/**
 * Return the deterministic RSA key for @p label at @p bits, generating and
 * memoizing it on first use. Thread-safe: the network gateway and its
 * clients build attested-identity machines from multiple host threads.
 */
const RsaPrivateKey &cachedKey(const std::string &label, std::size_t bits);

/** Default modulus size for simulated TPM keys (TCG v1.2: 2048). */
inline constexpr std::size_t tpmKeyBits = 2048;

/*
 * Note: the cache deliberately holds only *identity* keys (SRK, AIK),
 * which are derived from public labels. Session secrets must never live
 * here -- anything computable from a public label is computable by the
 * modeled bus adversary too. The execution service draws its transport
 * session key from the machine's seeded RNG instead.
 */

} // namespace mintcb::crypto

#endif // MINTCB_CRYPTO_KEYCACHE_HH
