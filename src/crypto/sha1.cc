/**
 * @file
 * SHA-1 implementation (RFC 3174).
 */

#include "crypto/sha1.hh"

#include <algorithm>
#include <cstring>

namespace mintcb::crypto
{

namespace
{

constexpr std::uint32_t
rotl32(std::uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

} // namespace

void
Sha1::reset()
{
    h_[0] = 0x67452301u;
    h_[1] = 0xefcdab89u;
    h_[2] = 0x98badcfeu;
    h_[3] = 0x10325476u;
    h_[4] = 0xc3d2e1f0u;
    bufferLen_ = 0;
    totalBits_ = 0;
}

void
Sha1::processBlock(const std::uint8_t *block)
{
    std::uint32_t w[80];
    for (int t = 0; t < 16; ++t) {
        w[t] = static_cast<std::uint32_t>(block[t * 4]) << 24 |
               static_cast<std::uint32_t>(block[t * 4 + 1]) << 16 |
               static_cast<std::uint32_t>(block[t * 4 + 2]) << 8 |
               static_cast<std::uint32_t>(block[t * 4 + 3]);
    }
    for (int t = 16; t < 80; ++t)
        w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);

    std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];

    for (int t = 0; t < 80; ++t) {
        std::uint32_t f, k;
        if (t < 20) {
            f = (b & c) | ((~b) & d);
            k = 0x5a827999u;
        } else if (t < 40) {
            f = b ^ c ^ d;
            k = 0x6ed9eba1u;
        } else if (t < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdcu;
        } else {
            f = b ^ c ^ d;
            k = 0xca62c1d6u;
        }
        const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[t];
        e = d;
        d = c;
        c = rotl32(b, 30);
        b = a;
        a = temp;
    }

    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
}

void
Sha1::update(const std::uint8_t *data, std::size_t len)
{
    totalBits_ += static_cast<std::uint64_t>(len) * 8;
    while (len > 0) {
        const std::size_t take =
            std::min(len, sizeof(buffer_) - bufferLen_);
        std::memcpy(buffer_ + bufferLen_, data, take);
        bufferLen_ += take;
        data += take;
        len -= take;
        if (bufferLen_ == sizeof(buffer_)) {
            processBlock(buffer_);
            bufferLen_ = 0;
        }
    }
}

Sha1Digest
Sha1::finish()
{
    const std::uint64_t bit_count = totalBits_;
    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0x00;
    while (bufferLen_ != 56)
        update(&zero, 1);
    std::uint8_t length_be[8];
    for (int i = 0; i < 8; ++i)
        length_be[i] = static_cast<std::uint8_t>(bit_count >> (56 - 8 * i));
    update(length_be, 8);

    Sha1Digest out;
    for (int i = 0; i < 5; ++i) {
        out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
        out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
        out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
        out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
    }
    return out;
}

Sha1Digest
Sha1::digest(const Bytes &data)
{
    Sha1 ctx;
    ctx.update(data);
    return ctx.finish();
}

Bytes
Sha1::digestBytes(const Bytes &data)
{
    return toBytes(digest(data));
}

Bytes
toBytes(const Sha1Digest &d)
{
    return Bytes(d.begin(), d.end());
}

} // namespace mintcb::crypto
