/**
 * @file
 * Key cache implementation.
 */

#include "crypto/keycache.hh"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>

#include "common/hex.hh"
#include "crypto/sha256.hh"

namespace mintcb::crypto
{

namespace
{

/**
 * Keys are deterministic functions of (label, bits), so a filesystem cache
 * is purely a wall-time optimization: every test process would otherwise
 * redo the same 2048-bit generation. A corrupt or stale file fails decode
 * and falls back to regeneration.
 */
std::string
cachePath(const std::string &label, std::size_t bits)
{
    const char *tmp = std::getenv("TMPDIR");
    const std::string dir = tmp ? tmp : "/tmp";
    const Bytes digest =
        Sha256::digestBytes(asciiBytes(label + ":" +
                                       std::to_string(bits)));
    return dir + "/mintcb-key-" +
           toHex(Bytes(digest.begin(), digest.begin() + 16)) + ".bin";
}

bool
loadFromDisk(const std::string &path, std::size_t bits, RsaPrivateKey &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    Bytes wire((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
    auto decoded = RsaPrivateKey::decode(wire);
    if (!decoded.ok() || decoded->pub.n.bitLength() != bits)
        return false;
    out = decoded.take();
    return true;
}

void
storeToDisk(const std::string &path, const RsaPrivateKey &key)
{
    // Write-then-rename so concurrent test processes never read a torn
    // file.
    const std::string tmp_path =
        path + ".tmp" + std::to_string(::getpid());
    {
        std::ofstream out(tmp_path, std::ios::binary);
        if (!out)
            return;
        const Bytes wire = key.encode();
        out.write(reinterpret_cast<const char *>(wire.data()),
                  static_cast<std::streamsize>(wire.size()));
    }
    std::rename(tmp_path.c_str(), path.c_str());
}

} // namespace

const RsaPrivateKey &
cachedKey(const std::string &label, std::size_t bits)
{
    static std::map<std::pair<std::string, std::size_t>, RsaPrivateKey>
        cache;
    // The network gateway builds attested-identity machines on client
    // threads, so the cache must tolerate concurrent first use.
    // std::map nodes are stable, so returned references stay valid.
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    const auto key = std::make_pair(label, bits);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    const std::string path = cachePath(label, bits);
    RsaPrivateKey loaded;
    if (loadFromDisk(path, bits, loaded)) {
        // A cache hit must never pay for a prime search again. Entries
        // written before the CRT fields existed (or with p/q but no
        // dP/dQ/qInv) are augmented in place -- three modular
        // reductions -- and re-stored in the full layout so the next
        // process gets the fast form directly.
        if (!loaded.hasCrt()) {
            loaded.augmentCrt();
            if (loaded.hasCrt())
                storeToDisk(path, loaded);
        }
        auto [inserted, _] = cache.emplace(key, std::move(loaded));
        return inserted->second;
    }

    // Derive a 64-bit seed from the label so distinct labels get distinct,
    // reproducible keys.
    const Bytes digest = Sha256::digestBytes(asciiBytes(label));
    std::uint64_t seed = static_cast<std::uint64_t>(bits);
    for (int i = 0; i < 8; ++i)
        seed = (seed << 8) ^ digest[i] ^ (seed >> 56);
    Rng rng(seed);
    auto [inserted, _] = cache.emplace(key, rsaGenerate(rng, bits));
    storeToDisk(path, inserted->second);
    return inserted->second;
}

} // namespace mintcb::crypto
