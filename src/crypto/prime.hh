/**
 * @file
 * Probabilistic prime generation for RSA key material.
 */

#ifndef MINTCB_CRYPTO_PRIME_HH
#define MINTCB_CRYPTO_PRIME_HH

#include "common/rng.hh"
#include "crypto/bignum.hh"

namespace mintcb::crypto
{

/** Uniform random BigNum with exactly @p bits bits (top bit set). */
BigNum randomBits(Rng &rng, std::size_t bits);

/** Uniform random BigNum in [0, bound). */
BigNum randomBelow(Rng &rng, const BigNum &bound);

/**
 * Miller-Rabin probable-prime test with @p rounds random bases.
 * Deterministically correct for the small primes it special-cases.
 */
bool isProbablePrime(const BigNum &n, Rng &rng, int rounds = 16);

/**
 * Generate a random probable prime of exactly @p bits bits with both the
 * top bit and the low bit set. Uses trial division by small primes before
 * Miller-Rabin.
 */
BigNum generatePrime(Rng &rng, std::size_t bits);

/**
 * Process-wide count of generatePrime() invocations. Prime search is the
 * expensive step of RSA generation; the key cache's contract is that a
 * cache hit never re-runs it, and the regression test pins that with
 * this counter.
 */
std::uint64_t primeGenerationCount();

} // namespace mintcb::crypto

#endif // MINTCB_CRYPTO_PRIME_HH
