/**
 * @file
 * Arbitrary-precision unsigned integers for the RSA substrate.
 *
 * The TPM v1.2 seals, unseals, and quotes with a 2048-bit RSA Storage Root
 * Key / AIK (paper Section 4.2: "the TPM's 2048-bit RSA Storage Root Key";
 * Section 5.7: "many of its operations use a 2048-bit RSA keypair"). mintcb
 * implements that keypair for real, on top of this bignum: 64-bit limbs,
 * schoolbook multiplication, Knuth Algorithm D division, and Montgomery
 * modular exponentiation for odd moduli.
 *
 * Only non-negative values are representable; subtraction of a larger value
 * from a smaller one is a programmer error (assert), matching how the RSA
 * math uses it.
 */

#ifndef MINTCB_CRYPTO_BIGNUM_HH
#define MINTCB_CRYPTO_BIGNUM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mintcb::crypto
{

struct BigNumDivMod;

/** Arbitrary-precision unsigned integer (little-endian 64-bit limbs). */
class BigNum
{
  public:
    /** Zero. */
    BigNum() = default;

    /** From a machine word. */
    explicit BigNum(std::uint64_t v);

    /** @name Construction from encodings. @{ */
    /** Parse big-endian bytes (TPM wire format). */
    static BigNum fromBytesBE(const Bytes &bytes);
    /** Parse a hexadecimal string (test vectors). */
    static BigNum fromHexString(const std::string &hex);
    /** @} */

    /** Encode as big-endian bytes, zero-padded/truncation-checked to
     *  @p width bytes (0 = minimal width). */
    Bytes toBytesBE(std::size_t width = 0) const;

    /** Render as lowercase hex with no leading zeros ("0" for zero). */
    std::string toHexString() const;

    /** @name Predicates and size queries. @{ */
    bool isZero() const { return limbs_.empty(); }
    bool isOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
    /** Number of significant bits (0 for zero). */
    std::size_t bitLength() const;
    /** Value of bit @p i (LSB = 0). */
    bool bit(std::size_t i) const;
    /** Low 64 bits. */
    std::uint64_t toU64() const { return limbs_.empty() ? 0 : limbs_[0]; }
    /** @} */

    /** Three-way comparison: negative/zero/positive like memcmp. */
    int compare(const BigNum &o) const;

    bool operator==(const BigNum &o) const { return compare(o) == 0; }
    bool operator!=(const BigNum &o) const { return compare(o) != 0; }
    bool operator<(const BigNum &o) const { return compare(o) < 0; }
    bool operator<=(const BigNum &o) const { return compare(o) <= 0; }
    bool operator>(const BigNum &o) const { return compare(o) > 0; }
    bool operator>=(const BigNum &o) const { return compare(o) >= 0; }

    /** @name Arithmetic. Subtraction requires *this >= o. @{ */
    BigNum operator+(const BigNum &o) const;
    BigNum operator-(const BigNum &o) const;
    BigNum operator*(const BigNum &o) const;
    /** Quotient and remainder in one pass; divisor must be nonzero. */
    using DivMod = BigNumDivMod;
    DivMod divmod(const BigNum &divisor) const;
    BigNum operator/(const BigNum &o) const; // divmod(o).quotient
    BigNum operator%(const BigNum &o) const; // divmod(o).remainder
    /** @} */

    /** @name Shifts. @{ */
    BigNum shiftLeft(std::size_t bits) const;
    BigNum shiftRight(std::size_t bits) const;
    /** @} */

    /** @name Small-word helpers. @{ */
    BigNum addU64(std::uint64_t v) const;
    BigNum subU64(std::uint64_t v) const;
    BigNum mulU64(std::uint64_t v) const;
    /** Remainder modulo a machine word (divisor nonzero). */
    std::uint64_t modU64(std::uint64_t divisor) const;
    /** @} */

    /** Modular exponentiation: this^exp mod m (m nonzero). Uses Montgomery
     *  multiplication when m is odd (fixed 4-bit windows for long
     *  exponents), division-based reduction otherwise. */
    BigNum modExp(const BigNum &exp, const BigNum &m) const;

    /** Greatest common divisor. */
    static BigNum gcd(BigNum a, BigNum b);

    /** Modular inverse of *this mod m; returns zero when none exists. */
    BigNum modInverse(const BigNum &m) const;

    /** Number of limbs (for tests poking at normalization). */
    std::size_t limbCount() const { return limbs_.size(); }

  private:
    void trim();
    static BigNum fromLimbs(std::vector<std::uint64_t> limbs);

    std::vector<std::uint64_t> limbs_; // little-endian, no trailing zeros
};

/** Quotient/remainder pair produced by BigNum::divmod. */
struct BigNumDivMod
{
    BigNum quotient;
    BigNum remainder;
};

inline BigNum
BigNum::operator/(const BigNum &o) const
{
    return divmod(o).quotient;
}

inline BigNum
BigNum::operator%(const BigNum &o) const
{
    return divmod(o).remainder;
}

} // namespace mintcb::crypto

#endif // MINTCB_CRYPTO_BIGNUM_HH
