/**
 * @file
 * Gateway metrics bridge implementation.
 */

#include "net/netobs.hh"

namespace mintcb::net
{

void
bridgeGatewayStats(obs::MetricsRegistry &registry,
                   const GatewayStats &stats, obs::Labels labels)
{
    const GatewayStats *s = &stats;
    auto counter = [&](const char *name, const char *help,
                       const std::uint64_t GatewayStats::*field) {
        registry.addCallback(
            name, help, labels,
            [s, field] { return static_cast<double>(s->*field); },
            "counter");
    };

    counter("net_connections_accepted_total",
            "TCP connections the gateway accepted",
            &GatewayStats::connectionsAccepted);
    counter("net_connections_closed_total",
            "Gateway connections closed (any reason)",
            &GatewayStats::connectionsClosed);
    counter("net_handshakes_completed_total",
            "Attested sessions admitted after verifyFresh",
            &GatewayStats::handshakesCompleted);
    counter("net_handshakes_refused_total",
            "Handshakes refused by the attestation verifier",
            &GatewayStats::handshakesRefused);
    counter("net_protocol_errors_total",
            "Malformed frames or out-of-state messages",
            &GatewayStats::protocolErrors);
    counter("net_idle_disconnects_total",
            "Connections reaped by the idle timeout",
            &GatewayStats::idleDisconnects);
    counter("net_frames_rx_total", "Frames received from clients",
            &GatewayStats::framesRx);
    counter("net_frames_tx_total", "Frames sent to clients",
            &GatewayStats::framesTx);
    counter("net_bytes_rx_total", "Payload bytes received",
            &GatewayStats::bytesRx);
    counter("net_bytes_tx_total", "Payload bytes sent",
            &GatewayStats::bytesTx);
    counter("net_requests_admitted_total",
            "Requests admitted into the execution service",
            &GatewayStats::requestsAdmitted);
    counter("net_busy_queue_full_total",
            "Busy responses: bounded in-flight queue at capacity",
            &GatewayStats::busyQueueFull);
    counter("net_busy_rate_limited_total",
            "Busy responses: per-client token bucket empty",
            &GatewayStats::busyRateLimited);
    counter("net_duplicate_sequence_total",
            "Submits refused for a duplicate in-cycle sequence",
            &GatewayStats::duplicateSequence);
    counter("net_unknown_pal_total",
            "Submits naming a PAL the registry does not hold",
            &GatewayStats::unknownPal);
    counter("net_backend_rejected_total",
            "Submits refused at backend admission (unknown backend or "
            "capability mismatch)",
            &GatewayStats::backendRejected);
    counter("net_drains_total", "Service drain cycles run",
            &GatewayStats::drains);
    counter("net_reports_delivered_total",
            "Execution reports delivered to their clients",
            &GatewayStats::reportsDelivered);
    counter("net_reports_dropped_total",
            "Reports dropped because the owner disconnected",
            &GatewayStats::reportsDropped);
    counter("net_migrations_served_total",
            "Attested migration bundles handed out",
            &GatewayStats::migrationsServed);
    counter("net_migrations_refused_total",
            "Migrations refused (bad nonce, quote, or store name)",
            &GatewayStats::migrationsRefused);

    registry.addCallback(
        "net_max_pending_depth",
        "High-water mark of the gateway's pending-request queue",
        labels,
        [s] { return static_cast<double>(s->maxPendingDepth); },
        "gauge");
}

} // namespace mintcb::net
