/**
 * @file
 * POSIX socket wrapper implementation.
 */

#include "net/socket.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mintcb::net
{

namespace
{

Error
sysError(Errc code, const std::string &what)
{
    return Error(code, what + ": " + std::strerror(errno));
}

sockaddr_in
loopbackAddr(std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return addr;
}

} // namespace

void
OwnedFd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Result<TcpStream>
TcpStream::connectLoopback(std::uint16_t port, int timeout_ms)
{
    OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return sysError(Errc::unavailable, "socket");
    const sockaddr_in addr = loopbackAddr(port);
    if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        return sysError(Errc::unavailable,
                        "connect 127.0.0.1:" + std::to_string(port));
    }
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    TcpStream stream{OwnedFd(fd.release())};
    if (timeout_ms > 0) {
        if (auto s = stream.setRecvTimeout(timeout_ms); !s.ok())
            return s.error();
    }
    return stream;
}

Status
TcpStream::setNonBlocking(bool on)
{
    const int flags = ::fcntl(fd_.get(), F_GETFL, 0);
    if (flags < 0)
        return sysError(Errc::unavailable, "fcntl(F_GETFL)");
    const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (::fcntl(fd_.get(), F_SETFL, next) != 0)
        return sysError(Errc::unavailable, "fcntl(F_SETFL)");
    return okStatus();
}

Status
TcpStream::setRecvTimeout(int timeout_ms)
{
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof tv) != 0) {
        return sysError(Errc::unavailable, "setsockopt(SO_RCVTIMEO)");
    }
    return okStatus();
}

Status
TcpStream::sendAll(const Bytes &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd_.get(), data.data() + sent, data.size() - sent,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return sysError(Errc::unavailable, "send");
        }
        sent += static_cast<std::size_t>(n);
    }
    return okStatus();
}

Result<std::size_t>
TcpStream::sendSome(const std::uint8_t *data, std::size_t len)
{
    for (;;) {
        const ssize_t n = ::send(fd_.get(), data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return static_cast<std::size_t>(0);
            return sysError(Errc::unavailable, "send");
        }
        return static_cast<std::size_t>(n);
    }
}

Result<std::size_t>
TcpStream::recvSome(Bytes &out, std::size_t max)
{
    Bytes chunk(max);
    for (;;) {
        const ssize_t n = ::recv(fd_.get(), chunk.data(), max, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                return Error(Errc::resourceExhausted,
                             "recv would block / timed out");
            }
            return sysError(Errc::unavailable, "recv");
        }
        out.insert(out.end(), chunk.begin(), chunk.begin() + n);
        return static_cast<std::size_t>(n);
    }
}

Result<TcpListener>
TcpListener::bindLoopback(std::uint16_t port)
{
    OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return sysError(Errc::unavailable, "socket");
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = loopbackAddr(port);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        return sysError(Errc::unavailable,
                        "bind 127.0.0.1:" + std::to_string(port));
    }
    if (::listen(fd.get(), 128) != 0)
        return sysError(Errc::unavailable, "listen");
    socklen_t len = sizeof addr;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        return sysError(Errc::unavailable, "getsockname");
    }
    TcpListener listener;
    listener.fd_ = OwnedFd(fd.release());
    listener.port_ = ntohs(addr.sin_port);
    return listener;
}

Result<TcpStream>
TcpListener::accept()
{
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    const int fd = ::accept(
        fd_.get(), reinterpret_cast<sockaddr *>(&addr), &len);
    if (fd < 0)
        return sysError(Errc::unavailable, "accept");
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return TcpStream{OwnedFd(fd)};
}

Result<Frame>
FrameChannel::recv()
{
    for (;;) {
        auto frame = takeFrame(rx_);
        if (!frame)
            return frame.error();
        if (frame->has_value())
            return std::move(**frame);
        auto n = stream_.recvSome(rx_);
        if (!n)
            return n.error();
        if (*n == 0)
            return Error(Errc::unavailable, "connection closed by peer");
    }
}

} // namespace mintcb::net
