/**
 * @file
 * POSIX socket wrapper implementation.
 */

#include "net/socket.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mintcb::net
{

namespace
{

Error
sysError(Errc code, const std::string &what)
{
    return Error(code, what + ": " + std::strerror(errno));
}

sockaddr_in
loopbackAddr(std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return addr;
}

} // namespace

void
OwnedFd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Result<TcpStream>
TcpStream::connectLoopback(std::uint16_t port, int timeout_ms)
{
    OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return sysError(Errc::unavailable, "socket");
    const sockaddr_in addr = loopbackAddr(port);
    if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        return sysError(Errc::unavailable,
                        "connect 127.0.0.1:" + std::to_string(port));
    }
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    TcpStream stream{OwnedFd(fd.release())};
    if (timeout_ms > 0) {
        if (auto s = stream.setRecvTimeout(timeout_ms); !s.ok())
            return s.error();
    }
    return stream;
}

Status
TcpStream::setNonBlocking(bool on)
{
    const int flags = ::fcntl(fd_.get(), F_GETFL, 0);
    if (flags < 0)
        return sysError(Errc::unavailable, "fcntl(F_GETFL)");
    const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (::fcntl(fd_.get(), F_SETFL, next) != 0)
        return sysError(Errc::unavailable, "fcntl(F_SETFL)");
    return okStatus();
}

Status
TcpStream::setRecvTimeout(int timeout_ms)
{
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof tv) != 0) {
        return sysError(Errc::unavailable, "setsockopt(SO_RCVTIMEO)");
    }
    return okStatus();
}

Status
TcpStream::sendAll(const Bytes &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd_.get(), data.data() + sent, data.size() - sent,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return sysError(Errc::unavailable, "send");
        }
        sent += static_cast<std::size_t>(n);
    }
    return okStatus();
}

Status
TcpStream::sendAllVec(iovec *iov, std::size_t count)
{
    std::size_t first = 0;
    while (first < count) {
        msghdr msg{};
        msg.msg_iov = iov + first;
        msg.msg_iovlen = count - first;
        const ssize_t sent = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return sysError(Errc::unavailable, "sendmsg");
        }
        // Consume sent bytes across the iovec entries.
        std::size_t n = static_cast<std::size_t>(sent);
        while (first < count && n >= iov[first].iov_len) {
            n -= iov[first].iov_len;
            ++first;
        }
        if (first < count && n > 0) {
            iov[first].iov_base =
                static_cast<std::uint8_t *>(iov[first].iov_base) + n;
            iov[first].iov_len -= n;
        }
    }
    return okStatus();
}

Result<std::size_t>
TcpStream::sendSome(const std::uint8_t *data, std::size_t len)
{
    for (;;) {
        const ssize_t n = ::send(fd_.get(), data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return static_cast<std::size_t>(0);
            return sysError(Errc::unavailable, "send");
        }
        return static_cast<std::size_t>(n);
    }
}

Result<std::size_t>
TcpStream::recvSome(Bytes &out, std::size_t max)
{
    Bytes chunk(max);
    for (;;) {
        const ssize_t n = ::recv(fd_.get(), chunk.data(), max, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                return Error(Errc::resourceExhausted,
                             "recv would block / timed out");
            }
            return sysError(Errc::unavailable, "recv");
        }
        out.insert(out.end(), chunk.begin(), chunk.begin() + n);
        return static_cast<std::size_t>(n);
    }
}

Result<TcpListener>
TcpListener::bindLoopback(std::uint16_t port)
{
    OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return sysError(Errc::unavailable, "socket");
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = loopbackAddr(port);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        return sysError(Errc::unavailable,
                        "bind 127.0.0.1:" + std::to_string(port));
    }
    if (::listen(fd.get(), 128) != 0)
        return sysError(Errc::unavailable, "listen");
    socklen_t len = sizeof addr;
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        return sysError(Errc::unavailable, "getsockname");
    }
    TcpListener listener;
    listener.fd_ = OwnedFd(fd.release());
    listener.port_ = ntohs(addr.sin_port);
    return listener;
}

Result<TcpStream>
TcpListener::accept()
{
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    const int fd = ::accept(
        fd_.get(), reinterpret_cast<sockaddr *>(&addr), &len);
    if (fd < 0)
        return sysError(Errc::unavailable, "accept");
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return TcpStream{OwnedFd(fd)};
}

Status
FrameChannel::send(FrameType type, const Bytes &payload)
{
    std::uint8_t header[frameHeaderBytes];
    std::size_t at = 0;
    for (int shift = 24; shift >= 0; shift -= 8)
        header[at++] = static_cast<std::uint8_t>(frameMagic >> shift);
    header[at++] = static_cast<std::uint8_t>(wireVersion >> 8);
    header[at++] = static_cast<std::uint8_t>(wireVersion);
    const std::uint16_t t = static_cast<std::uint16_t>(type);
    header[at++] = static_cast<std::uint8_t>(t >> 8);
    header[at++] = static_cast<std::uint8_t>(t);
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    for (int shift = 24; shift >= 0; shift -= 8)
        header[at++] = static_cast<std::uint8_t>(len >> shift);

    iovec iov[2];
    iov[0].iov_base = header;
    iov[0].iov_len = frameHeaderBytes;
    if (payload.empty())
        return stream_.sendAllVec(iov, 1);
    iov[1].iov_base = const_cast<std::uint8_t *>(payload.data());
    iov[1].iov_len = payload.size();
    return stream_.sendAllVec(iov, 2);
}

Result<Frame>
FrameChannel::recv()
{
    for (;;) {
        auto frame = takeFrame(rx_);
        if (!frame)
            return frame.error();
        if (frame->has_value())
            return std::move(**frame);
        auto n = stream_.recvSome(rx_);
        if (!n)
            return n.error();
        if (*n == 0)
            return Error(Errc::unavailable, "connection closed by peer");
    }
}

} // namespace mintcb::net
