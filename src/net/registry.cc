/**
 * @file
 * PAL registry implementation.
 */

#include "net/registry.hh"

namespace mintcb::net
{

void
PalRegistry::add(std::string name, std::size_t code_bytes,
                 sea::PalBody body, sea::SecureBody secure_body)
{
    for (Entry &e : entries_) {
        if (e.name == name) {
            e.codeBytes = code_bytes;
            e.body = std::move(body);
            e.secureBody = std::move(secure_body);
            return;
        }
    }
    entries_.push_back({std::move(name), code_bytes, std::move(body),
                        std::move(secure_body)});
}

void
PalRegistry::addEcho(const std::string &name, std::size_t code_bytes)
{
    add(
        name, code_bytes,
        [](sea::PalContext &ctx) {
            ctx.setOutput(ctx.input());
            return okStatus();
        },
        [](rec::PalHooks &, const Bytes &input) -> Result<Bytes> {
            return input;
        });
}

const PalRegistry::Entry *
PalRegistry::find(const std::string &name) const
{
    for (const Entry &e : entries_) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

bool
PalRegistry::has(const std::string &name) const
{
    return find(name) != nullptr;
}

std::vector<std::string>
PalRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.name);
    return out;
}

Result<sea::PalRequest>
PalRegistry::build(const WireRequest &wire_request) const
{
    const Entry *entry = find(wire_request.palName);
    if (!entry) {
        return Error(Errc::notFound, "no PAL registered under '" +
                                         wire_request.palName + "'");
    }
    sea::PalRequest req(
        sea::Pal::fromLogic(entry->name, entry->codeBytes, entry->body),
        wire_request.input);
    req.backend = wire_request.backend.empty() ? defaultBackend_
                                               : wire_request.backend;
    req.affinity = wire_request.affinity;
    req.priority = wire_request.priority;
    req.wantQuote = wire_request.wantQuote;
    req.dataPages = wire_request.dataPages;
    req.slicedCompute =
        Duration::picos(wire_request.slicedComputeTicks);
    if (wire_request.deadlineTicks != 0) {
        req.deadline =
            TimePoint() + Duration::picos(static_cast<std::int64_t>(
                              wire_request.deadlineTicks));
    }
    req.secureBody = entry->secureBody;
    return req;
}

} // namespace mintcb::net
