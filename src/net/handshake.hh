/**
 * @file
 * Attested-session handshake for the network gateway.
 *
 * Session establishment is mutual remote attestation (the SoK's
 * "attestation front door"):
 *
 *   1. client -> hello:     protocol version + a fresh client nonce
 *   2. gw  -> challenge:    the gateway platform's attestation (PCR 17
 *                           quote over the *client's* nonce, AIK cert
 *                           chained to the Privacy CA) + a fresh
 *                           gateway nonce
 *   3. client verifies the gateway quote (sea::Verifier), then
 *      client -> auth:      the client platform's attestation over the
 *                           *gateway's* nonce
 *   4. gw verifies through sea::Verifier::verifyFresh (certificate
 *      chain, signature, exact-nonce freshness, nonce-replay memory,
 *      PAL whitelist) and only then admits the session; any submit
 *      before authOk is refused and never reaches the service.
 *
 * AttestedIdentity packages the platform side: a simulated machine
 * that late-launched its identity PAL at construction, leaving the
 * PAL's measurement in PCR 17, from which fresh quotes are produced
 * per handshake. Identity machines are deliberately *separate* from
 * the machine behind the ExecutionService: handshake TPM traffic
 * charges their virtual clocks, so session churn can never perturb
 * the service timeline (the end-to-end determinism argument,
 * DESIGN.md section 11.4).
 */

#ifndef MINTCB_NET_HANDSHAKE_HH
#define MINTCB_NET_HANDSHAKE_HH

#include <string>

#include "machine/machine.hh"
#include "sea/attestation.hh"

namespace mintcb::net
{

/** Quote nonce size used by both sides of the handshake. */
inline constexpr std::size_t handshakeNonceBytes = 20;

/** A platform identity that can answer attestation challenges. */
class AttestedIdentity
{
  public:
    /**
     * Build a platform for @p subject, write @p identity_pal's SLB
     * into memory and late-launch it so PCR 17 carries the PAL's
     * launch identity. Check ok() before use: a failed launch leaves
     * the identity unable to attest.
     */
    AttestedIdentity(std::string subject, const sea::Pal &identity_pal,
                     std::uint64_t seed,
                     machine::PlatformId platform =
                         machine::PlatformId::hpDc5750);

    /** Did the identity launch succeed? */
    bool ok() const { return launchStatus_.ok(); }
    const Status &launchStatus() const { return launchStatus_; }

    const std::string &subject() const { return subject_; }
    const sea::Pal &pal() const { return pal_; }

    /** A fresh quote of this platform's dynamic PCRs over @p nonce. */
    Result<sea::Attestation> attest(const Bytes &nonce);

    /** Draw a fresh handshake nonce from this platform's seeded RNG. */
    Bytes freshNonce();

    /** The well-known gateway identity PAL (what remote clients
     *  whitelist to trust a mintcb-gate instance). */
    static sea::Pal gatewayPal();

    /** The stock client identity PAL under @p name (what the gateway
     *  whitelists to admit clients). */
    static sea::Pal clientPal(const std::string &name = "mintcb-client");

  private:
    std::string subject_;
    sea::Pal pal_;
    machine::Machine machine_;
    Status launchStatus_;
};

} // namespace mintcb::net

#endif // MINTCB_NET_HANDSHAKE_HH
