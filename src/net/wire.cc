/**
 * @file
 * Wire protocol codecs.
 */

#include "net/wire.hh"

#include "common/bytebuf.hh"

namespace mintcb::net
{

const char *
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::hello: return "hello";
      case FrameType::challenge: return "challenge";
      case FrameType::auth: return "auth";
      case FrameType::authOk: return "authOk";
      case FrameType::submit: return "submit";
      case FrameType::report: return "report";
      case FrameType::busy: return "busy";
      case FrameType::flush: return "flush";
      case FrameType::bye: return "bye";
      case FrameType::error: return "error";
      case FrameType::migrateBegin: return "migrateBegin";
      case FrameType::migrateChallenge: return "migrateChallenge";
      case FrameType::migrate: return "migrate";
      case FrameType::migrated: return "migrated";
    }
    return "unknown";
}

namespace
{

bool
knownType(std::uint16_t t)
{
    return t >= static_cast<std::uint16_t>(FrameType::hello) &&
           t <= static_cast<std::uint16_t>(FrameType::migrated);
}

} // namespace

void
encodeFrameInto(const Frame &frame, Bytes &out)
{
    out.reserve(out.size() + frameHeaderBytes + frame.payload.size());
    ByteAppender a(out);
    a.u32(frameMagic);
    a.u16(wireVersion);
    a.u16(static_cast<std::uint16_t>(frame.type));
    a.u32(static_cast<std::uint32_t>(frame.payload.size()));
    a.raw(frame.payload);
}

Bytes
encodeFrame(const Frame &frame)
{
    Bytes out;
    encodeFrameInto(frame, out);
    return out;
}

std::size_t
beginFrame(FrameType type, Bytes &out)
{
    const std::size_t frame_start = out.size();
    ByteAppender a(out);
    a.u32(frameMagic);
    a.u16(wireVersion);
    a.u16(static_cast<std::uint16_t>(type));
    a.u32(0); // payload length, patched by endFrame
    return frame_start;
}

void
endFrame(Bytes &out, std::size_t frame_start)
{
    const std::size_t payload =
        out.size() - frame_start - frameHeaderBytes;
    const std::size_t at = frame_start + frameHeaderBytes - 4;
    out[at] = static_cast<std::uint8_t>(payload >> 24);
    out[at + 1] = static_cast<std::uint8_t>(payload >> 16);
    out[at + 2] = static_cast<std::uint8_t>(payload >> 8);
    out[at + 3] = static_cast<std::uint8_t>(payload);
}

Result<bool>
takeFrameInto(const Bytes &buf, std::size_t &offset, Frame &out)
{
    const std::size_t avail = buf.size() - offset;
    if (avail < frameHeaderBytes)
        return false;

    const std::uint8_t *h = buf.data() + offset;
    std::uint32_t magic = 0, length = 0;
    for (int i = 0; i < 4; ++i) {
        magic = (magic << 8) | h[i];
        length = (length << 8) | h[8 + i];
    }
    const std::uint16_t version =
        static_cast<std::uint16_t>(h[4] << 8 | h[5]);
    const std::uint16_t type =
        static_cast<std::uint16_t>(h[6] << 8 | h[7]);
    if (magic != frameMagic)
        return Error(Errc::invalidArgument, "bad frame magic");
    if (version != wireVersion) {
        return Error(Errc::failedPrecondition,
                     "protocol version mismatch: peer speaks v" +
                         std::to_string(version) + ", this side v" +
                         std::to_string(wireVersion));
    }
    if (!knownType(type)) {
        return Error(Errc::invalidArgument,
                     "unknown frame type " + std::to_string(type));
    }
    if (length > maxFramePayload) {
        return Error(Errc::invalidArgument,
                     "oversized frame: " + std::to_string(length) +
                         " payload bytes > " +
                         std::to_string(maxFramePayload));
    }
    if (avail < frameHeaderBytes + length)
        return false; // wait for the rest

    out.type = static_cast<FrameType>(type);
    // assign() reuses out.payload's capacity: in steady state the
    // reactor's per-connection scratch frame stops allocating.
    out.payload.assign(h + frameHeaderBytes,
                       h + frameHeaderBytes + length);
    offset += frameHeaderBytes + length;
    return true;
}

Result<std::optional<Frame>>
takeFrame(Bytes &buf)
{
    std::size_t offset = 0;
    Frame frame;
    auto took = takeFrameInto(buf, offset, frame);
    if (!took)
        return took.error();
    if (!*took)
        return std::optional<Frame>{};
    buf.erase(buf.begin(),
              buf.begin() + static_cast<std::ptrdiff_t>(offset));
    return std::optional<Frame>{std::move(frame)};
}

namespace
{

/** Every decoder ends with this: trailing bytes mean a codec mismatch
 *  and must be refused, not silently ignored. */
Status
finish(const ByteReader &r, const char *what)
{
    if (!r.atEnd()) {
        return Error(Errc::invalidArgument,
                     std::string("trailing bytes after ") + what);
    }
    return okStatus();
}

} // namespace

void
encodeHelloInto(const HelloPayload &p, Bytes &out)
{
    ByteAppender a(out);
    a.u16(p.version);
    a.lengthPrefixed(p.nonce);
    a.str(p.clientName);
}

Bytes
encodeHello(const HelloPayload &p)
{
    Bytes out;
    encodeHelloInto(p, out);
    return out;
}

Result<HelloPayload>
decodeHello(const Bytes &payload)
{
    ByteReader r(payload);
    HelloPayload p;
    auto version = r.u16();
    if (!version)
        return version.error();
    p.version = *version;
    auto nonce = r.lengthPrefixed();
    if (!nonce)
        return nonce.error();
    p.nonce = nonce.take();
    auto name = r.str();
    if (!name)
        return name.error();
    p.clientName = name.take();
    if (auto s = finish(r, "hello"); !s.ok())
        return s.error();
    return p;
}

void
encodeChallengeInto(const ChallengePayload &p, Bytes &out)
{
    ByteAppender a(out);
    a.lengthPrefixed(p.attestation);
    a.lengthPrefixed(p.nonce);
}

Bytes
encodeChallenge(const ChallengePayload &p)
{
    Bytes out;
    encodeChallengeInto(p, out);
    return out;
}

Result<ChallengePayload>
decodeChallenge(const Bytes &payload)
{
    ByteReader r(payload);
    ChallengePayload p;
    auto att = r.lengthPrefixed();
    if (!att)
        return att.error();
    p.attestation = att.take();
    auto nonce = r.lengthPrefixed();
    if (!nonce)
        return nonce.error();
    p.nonce = nonce.take();
    if (auto s = finish(r, "challenge"); !s.ok())
        return s.error();
    return p;
}

void
encodeAuthInto(const AuthPayload &p, Bytes &out)
{
    ByteAppender a(out);
    a.lengthPrefixed(p.attestation);
}

Bytes
encodeAuth(const AuthPayload &p)
{
    Bytes out;
    encodeAuthInto(p, out);
    return out;
}

Result<AuthPayload>
decodeAuth(const Bytes &payload)
{
    ByteReader r(payload);
    AuthPayload p;
    auto att = r.lengthPrefixed();
    if (!att)
        return att.error();
    p.attestation = att.take();
    if (auto s = finish(r, "auth"); !s.ok())
        return s.error();
    return p;
}

void
encodeAuthOkInto(const AuthOkPayload &p, Bytes &out)
{
    ByteAppender a(out);
    a.u64(p.sessionId);
    a.str(p.subject);
}

Bytes
encodeAuthOk(const AuthOkPayload &p)
{
    Bytes out;
    encodeAuthOkInto(p, out);
    return out;
}

Result<AuthOkPayload>
decodeAuthOk(const Bytes &payload)
{
    ByteReader r(payload);
    AuthOkPayload p;
    auto id = r.u64();
    if (!id)
        return id.error();
    p.sessionId = *id;
    auto subject = r.str();
    if (!subject)
        return subject.error();
    p.subject = subject.take();
    if (auto s = finish(r, "authOk"); !s.ok())
        return s.error();
    return p;
}

void
encodeSubmitInto(const WireRequest &r, Bytes &out)
{
    ByteAppender a(out);
    a.u64(r.sequence);
    a.u64(r.affinity);
    a.u32(static_cast<std::uint32_t>(r.priority));
    a.u8(r.wantQuote ? 1 : 0);
    a.u32(r.dataPages);
    a.u64(static_cast<std::uint64_t>(r.slicedComputeTicks));
    a.u64(r.deadlineTicks);
    a.str(r.palName);
    a.str(r.backend);
    a.lengthPrefixed(r.input);
}

Bytes
encodeSubmit(const WireRequest &r)
{
    Bytes out;
    encodeSubmitInto(r, out);
    return out;
}

Result<WireRequest>
decodeSubmit(const Bytes &payload)
{
    ByteReader r(payload);
    WireRequest req;
    auto sequence = r.u64();
    if (!sequence)
        return sequence.error();
    req.sequence = *sequence;
    auto affinity = r.u64();
    if (!affinity)
        return affinity.error();
    req.affinity = *affinity;
    auto priority = r.u32();
    if (!priority)
        return priority.error();
    req.priority = static_cast<std::int32_t>(*priority);
    auto want_quote = r.u8();
    if (!want_quote)
        return want_quote.error();
    req.wantQuote = *want_quote != 0;
    auto data_pages = r.u32();
    if (!data_pages)
        return data_pages.error();
    req.dataPages = *data_pages;
    auto compute = r.u64();
    if (!compute)
        return compute.error();
    req.slicedComputeTicks = static_cast<std::int64_t>(*compute);
    auto deadline = r.u64();
    if (!deadline)
        return deadline.error();
    req.deadlineTicks = *deadline;
    auto name = r.str();
    if (!name)
        return name.error();
    req.palName = name.take();
    auto backend = r.str();
    if (!backend)
        return backend.error();
    req.backend = backend.take();
    auto input = r.lengthPrefixed();
    if (!input)
        return input.error();
    req.input = input.take();
    if (auto s = finish(r, "submit"); !s.ok())
        return s.error();
    return req;
}

void
encodeReportInto(std::uint64_t sequence, const Bytes &report,
                 Bytes &out)
{
    ByteAppender a(out);
    a.u64(sequence);
    a.lengthPrefixed(report);
}

void
encodeReportInto(const ReportPayload &p, Bytes &out)
{
    encodeReportInto(p.sequence, p.report, out);
}

Bytes
encodeReport(const ReportPayload &p)
{
    Bytes out;
    encodeReportInto(p, out);
    return out;
}

Result<ReportPayload>
decodeReport(const Bytes &payload)
{
    ByteReader r(payload);
    ReportPayload p;
    auto sequence = r.u64();
    if (!sequence)
        return sequence.error();
    p.sequence = *sequence;
    auto report = r.lengthPrefixed();
    if (!report)
        return report.error();
    p.report = report.take();
    if (auto s = finish(r, "report"); !s.ok())
        return s.error();
    return p;
}

void
encodeBusyInto(const BusyPayload &p, Bytes &out)
{
    ByteAppender a(out);
    a.u64(p.sequence);
    a.u16(static_cast<std::uint16_t>(p.reason));
    a.u32(p.retryAfterMillis);
}

Bytes
encodeBusy(const BusyPayload &p)
{
    Bytes out;
    encodeBusyInto(p, out);
    return out;
}

Result<BusyPayload>
decodeBusy(const Bytes &payload)
{
    ByteReader r(payload);
    BusyPayload p;
    auto sequence = r.u64();
    if (!sequence)
        return sequence.error();
    p.sequence = *sequence;
    auto reason = r.u16();
    if (!reason)
        return reason.error();
    if (*reason != static_cast<std::uint16_t>(BusyReason::queueFull) &&
        *reason !=
            static_cast<std::uint16_t>(BusyReason::rateLimited)) {
        return Error(Errc::invalidArgument, "unknown busy reason");
    }
    p.reason = static_cast<BusyReason>(*reason);
    auto retry = r.u32();
    if (!retry)
        return retry.error();
    p.retryAfterMillis = *retry;
    if (auto s = finish(r, "busy"); !s.ok())
        return s.error();
    return p;
}

void
encodeErrorInto(const ErrorPayload &p, Bytes &out)
{
    ByteAppender a(out);
    a.u16(p.code);
    a.str(p.message);
}

Bytes
encodeError(const ErrorPayload &p)
{
    Bytes out;
    encodeErrorInto(p, out);
    return out;
}

Result<ErrorPayload>
decodeError(const Bytes &payload)
{
    ByteReader r(payload);
    ErrorPayload p;
    auto code = r.u16();
    if (!code)
        return code.error();
    p.code = *code;
    auto message = r.str();
    if (!message)
        return message.error();
    p.message = message.take();
    if (auto s = finish(r, "error"); !s.ok())
        return s.error();
    return p;
}

void
encodeMigrateBeginInto(const MigrateBeginPayload &p, Bytes &out)
{
    ByteAppender a(out);
    a.str(p.storeName);
}

Bytes
encodeMigrateBegin(const MigrateBeginPayload &p)
{
    Bytes out;
    encodeMigrateBeginInto(p, out);
    return out;
}

Result<MigrateBeginPayload>
decodeMigrateBegin(const Bytes &payload)
{
    ByteReader r(payload);
    MigrateBeginPayload p;
    auto name = r.str();
    if (!name)
        return name.error();
    p.storeName = name.take();
    if (auto s = finish(r, "migrateBegin"); !s.ok())
        return s.error();
    return p;
}

void
encodeMigrateChallengeInto(const MigrateChallengePayload &p, Bytes &out)
{
    ByteAppender a(out);
    a.lengthPrefixed(p.nonce);
}

Bytes
encodeMigrateChallenge(const MigrateChallengePayload &p)
{
    Bytes out;
    encodeMigrateChallengeInto(p, out);
    return out;
}

Result<MigrateChallengePayload>
decodeMigrateChallenge(const Bytes &payload)
{
    ByteReader r(payload);
    MigrateChallengePayload p;
    auto nonce = r.lengthPrefixed();
    if (!nonce)
        return nonce.error();
    p.nonce = nonce.take();
    if (auto s = finish(r, "migrateChallenge"); !s.ok())
        return s.error();
    return p;
}

void
encodeMigrateInto(const MigratePayload &p, Bytes &out)
{
    ByteAppender a(out);
    a.str(p.storeName);
    a.lengthPrefixed(p.nonce);
    a.lengthPrefixed(p.targetSrk);
    a.lengthPrefixed(p.attestation);
}

Bytes
encodeMigrate(const MigratePayload &p)
{
    Bytes out;
    encodeMigrateInto(p, out);
    return out;
}

Result<MigratePayload>
decodeMigrate(const Bytes &payload)
{
    ByteReader r(payload);
    MigratePayload p;
    auto name = r.str();
    if (!name)
        return name.error();
    p.storeName = name.take();
    auto nonce = r.lengthPrefixed();
    if (!nonce)
        return nonce.error();
    p.nonce = nonce.take();
    auto srk = r.lengthPrefixed();
    if (!srk)
        return srk.error();
    p.targetSrk = srk.take();
    auto att = r.lengthPrefixed();
    if (!att)
        return att.error();
    p.attestation = att.take();
    if (auto s = finish(r, "migrate"); !s.ok())
        return s.error();
    return p;
}

void
encodeMigratedInto(const MigratedPayload &p, Bytes &out)
{
    ByteAppender a(out);
    a.lengthPrefixed(p.bundle);
}

Bytes
encodeMigrated(const MigratedPayload &p)
{
    Bytes out;
    encodeMigratedInto(p, out);
    return out;
}

Result<MigratedPayload>
decodeMigrated(const Bytes &payload)
{
    ByteReader r(payload);
    MigratedPayload p;
    auto bundle = r.lengthPrefixed();
    if (!bundle)
        return bundle.error();
    p.bundle = bundle.take();
    if (auto s = finish(r, "migrated"); !s.ok())
        return s.error();
    return p;
}

Result<ReportSummary>
summarizeReport(const Bytes &encoded_report)
{
    // Mirrors sea::ExecutionReport::encode field for field.
    ByteReader r(encoded_report);
    ReportSummary s;
    auto magic = r.str();
    if (!magic)
        return magic.error();
    if (*magic != "EXR2")
        return Error(Errc::invalidArgument, "not an execution report");
    auto id = r.u64();
    if (!id)
        return id.error();
    s.requestId = *id;
    auto name = r.str();
    if (!name)
        return name.error();
    s.palName = name.take();
    auto backend = r.str();
    if (!backend)
        return backend.error();
    s.backend = backend.take();
    auto okflag = r.u8();
    if (!okflag)
        return okflag.error();
    s.ok = *okflag != 0;
    if (!s.ok) {
        auto code = r.u8();
        if (!code)
            return code.error();
        s.errorCode = *code;
        auto message = r.str();
        if (!message)
            return message.error();
        s.errorMessage = message.take();
    }
    auto output = r.lengthPrefixed();
    if (!output)
        return output.error();
    s.output = output.take();
    auto measurement = r.lengthPrefixed();
    if (!measurement)
        return measurement.error();
    s.palMeasurement = measurement.take();
    auto quoted = r.u8();
    if (!quoted)
        return quoted.error();
    s.quoted = *quoted != 0;
    if (s.quoted) {
        auto payload = r.lengthPrefixed();
        if (!payload)
            return payload.error();
        auto signature = r.lengthPrefixed();
        if (!signature)
            return signature.error();
    }
    // Canonical phases: launch, compute, transition, attestation,
    // teardown.
    std::int64_t phases[5] = {};
    for (auto &d : phases) {
        auto v = r.u64();
        if (!v)
            return v.error();
        d = static_cast<std::int64_t>(*v);
    }
    s.launch = Duration::picos(phases[0]);
    s.palCompute = Duration::picos(phases[1]);
    s.transition = Duration::picos(phases[2]);
    s.attestation = Duration::picos(phases[3]);
    s.teardown = Duration::picos(phases[4]);
    // Capability-tagged sections: walked (totality), not surfaced in
    // the scalar summary beyond their count -- the raw bytes stay
    // authoritative for family-specific detail.
    auto section_count = r.u32();
    if (!section_count)
        return section_count.error();
    s.sectionCount = *section_count;
    for (std::uint32_t i = 0; i < s.sectionCount; ++i) {
        if (auto cap = r.u32(); !cap)
            return cap.error();
        auto n_costs = r.u32();
        if (!n_costs)
            return n_costs.error();
        for (std::uint32_t j = 0; j < *n_costs; ++j) {
            if (auto k = r.str(); !k)
                return k.error();
            if (auto v = r.u64(); !v)
                return v.error();
        }
        auto n_counts = r.u32();
        if (!n_counts)
            return n_counts.error();
        for (std::uint32_t j = 0; j < *n_counts; ++j) {
            if (auto k = r.str(); !k)
                return k.error();
            if (auto v = r.u64(); !v)
                return v.error();
        }
        auto n_evidence = r.u32();
        if (!n_evidence)
            return n_evidence.error();
        for (std::uint32_t j = 0; j < *n_evidence; ++j) {
            if (auto k = r.str(); !k)
                return k.error();
            if (auto v = r.lengthPrefixed(); !v)
                return v.error();
        }
    }
    // submittedAt, startedAt, finishedAt, queueWait, total.
    std::int64_t times[5] = {};
    for (auto &d : times) {
        auto v = r.u64();
        if (!v)
            return v.error();
        d = static_cast<std::int64_t>(*v);
    }
    s.queueWait = Duration::picos(times[3]);
    s.total = Duration::picos(times[4]);
    auto launches = r.u64();
    if (!launches)
        return launches.error();
    s.launches = *launches;
    auto yields = r.u64();
    if (!yields)
        return yields.error();
    s.yields = *yields;
    auto cpu = r.u32();
    if (!cpu)
        return cpu.error();
    auto shard = r.u32();
    if (!shard)
        return shard.error();
    s.shard = *shard;
    auto deadline_met = r.u8();
    if (!deadline_met)
        return deadline_met.error();
    s.deadlineMet = *deadline_met != 0;
    if (auto st = finish(r, "execution report"); !st.ok())
        return st.error();
    return s;
}

} // namespace mintcb::net
