/**
 * @file
 * Gateway-side PAL registry.
 *
 * PAL *behavior* is native code and cannot travel over the wire; a
 * remote client names a PAL the operator registered and supplies only
 * the input bytes. The registry turns a WireRequest into the
 * sea::PalRequest the execution service runs. Because the registry is
 * an ordinary value, a test can hand the *same* registry to a gateway
 * and to a direct in-process submission loop and prove the reports
 * byte-identical (the end-to-end determinism acceptance check).
 */

#ifndef MINTCB_NET_REGISTRY_HH
#define MINTCB_NET_REGISTRY_HH

#include <string>
#include <vector>

#include "net/wire.hh"
#include "sea/request.hh"

namespace mintcb::net
{

/** Maps registered PAL names to executable behavior. */
class PalRegistry
{
  public:
    /** Register @p name with the given SLB code size and behaviors.
     *  Re-registering a name replaces the entry. */
    void add(std::string name, std::size_t code_bytes, sea::PalBody body,
             sea::SecureBody secure_body = nullptr);

    /** Convenience: a pure-compute PAL whose secure body echoes the
     *  request input back as the output (remote smoke tests). */
    void addEcho(const std::string &name, std::size_t code_bytes = 4096);

    bool has(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }
    std::vector<std::string> names() const;

    /** Execution backend applied to wire requests that leave their
     *  backend field empty (the operator's `mintcb-gate --backend`).
     *  Empty (default) keeps the service's native scheduler path. */
    void setDefaultBackend(std::string backend)
    {
        defaultBackend_ = std::move(backend);
    }
    const std::string &defaultBackend() const { return defaultBackend_; }

    /** Build the service request described by @p wire_request;
     *  Errc::notFound for an unregistered PAL name. */
    Result<sea::PalRequest> build(const WireRequest &wire_request) const;

  private:
    struct Entry
    {
        std::string name;
        std::size_t codeBytes = 0;
        sea::PalBody body;
        sea::SecureBody secureBody;
    };

    const Entry *find(const std::string &name) const;

    std::vector<Entry> entries_;
    std::string defaultBackend_;
};

} // namespace mintcb::net

#endif // MINTCB_NET_REGISTRY_HH
