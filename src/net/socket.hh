/**
 * @file
 * Minimal RAII wrappers over POSIX TCP sockets.
 *
 * The gateway binds loopback only: mintcb models a platform's *trust*
 * story, not a hardened network stack, and every test/bench runs
 * client and server in one process. The wrappers keep errno handling
 * and partial-read/-write loops in one place; everything above them
 * speaks frames (net/wire.hh).
 */

#ifndef MINTCB_NET_SOCKET_HH
#define MINTCB_NET_SOCKET_HH

#include <cstdint>

#include "common/result.hh"
#include "common/types.hh"
#include "net/wire.hh"

struct iovec; // <sys/uio.h>; only the implementation needs the layout

namespace mintcb::net
{

/** Owns one file descriptor; closes on destruction. Movable. */
class OwnedFd
{
  public:
    OwnedFd() = default;
    explicit OwnedFd(int fd) : fd_(fd) {}
    ~OwnedFd() { reset(); }

    OwnedFd(OwnedFd &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    OwnedFd &
    operator=(OwnedFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    OwnedFd(const OwnedFd &) = delete;
    OwnedFd &operator=(const OwnedFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    /** Release ownership (caller closes). */
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }
    void reset();

  private:
    int fd_ = -1;
};

/** A connected TCP stream (blocking unless setNonBlocking). */
class TcpStream
{
  public:
    TcpStream() = default;
    explicit TcpStream(OwnedFd fd) : fd_(std::move(fd)) {}

    /** Connect to 127.0.0.1:@p port; @p timeout_ms bounds both the
     *  connect and subsequent blocking reads. */
    static Result<TcpStream> connectLoopback(std::uint16_t port,
                                             int timeout_ms);

    bool valid() const { return fd_.valid(); }
    int fd() const { return fd_.get(); }

    /** O_NONBLOCK on/off (gateway reactor connections). */
    Status setNonBlocking(bool on);

    /** SO_RCVTIMEO: bound for blocking reads; 0 disables. */
    Status setRecvTimeout(int timeout_ms);

    /** Write all of @p data (loops over partial writes; SIGPIPE is
     *  suppressed, a closed peer surfaces as an Error). */
    Status sendAll(const Bytes &data);

    /** Scatter-gather sibling of sendAll: write every byte of @p count
     *  buffers in as few syscalls as the kernel allows (sendmsg, so
     *  SIGPIPE stays suppressed). The iovec array is consumed (entries
     *  are adjusted across partial writes). */
    Status sendAllVec(iovec *iov, std::size_t count);

    /** One non-blocking write attempt of @p len bytes from @p data.
     *  Returns the byte count (0 when the socket buffer is full); a
     *  closed peer surfaces as an Error. Reactor-side sibling of
     *  recvSome. */
    Result<std::size_t> sendSome(const std::uint8_t *data,
                                 std::size_t len);

    /** One read of up to @p max bytes appended to @p out. Returns the
     *  byte count; 0 = orderly EOF. A timeout or EAGAIN surfaces as
     *  Errc::resourceExhausted (distinguishable from real transport
     *  failures, which are Errc::unavailable). */
    Result<std::size_t> recvSome(Bytes &out, std::size_t max = 64 * 1024);

    void close() { fd_.reset(); }

  private:
    OwnedFd fd_;
};

/** A listening loopback socket. */
class TcpListener
{
  public:
    /** Bind and listen on 127.0.0.1:@p port (0 = ephemeral; read the
     *  chosen port back with port()). */
    static Result<TcpListener> bindLoopback(std::uint16_t port);

    std::uint16_t port() const { return port_; }
    int fd() const { return fd_.get(); }
    bool valid() const { return fd_.valid(); }

    /** Accept one pending connection (the caller polled for
     *  readability). */
    Result<TcpStream> accept();

    void close() { fd_.reset(); }

  private:
    OwnedFd fd_;
    std::uint16_t port_ = 0;
};

/**
 * Blocking framed channel for client-side use: buffers the byte
 * stream and hands out whole frames. The gateway side does its own
 * buffering inside the reactor (it multiplexes many sockets).
 */
class FrameChannel
{
  public:
    explicit FrameChannel(TcpStream stream) : stream_(std::move(stream)) {}

    Status send(const Frame &frame)
    {
        return send(frame.type, frame.payload);
    }

    /** Scatter-gather send: a stack-allocated header and the payload
     *  go out in one writev -- the payload is never copied into a
     *  frame buffer. */
    Status send(FrameType type, const Bytes &payload);

    /** Send pre-framed bytes (e.g. a batch of frames built in place
     *  with beginFrame/endFrame) in one sendAll. */
    Status sendRaw(const Bytes &wire) { return stream_.sendAll(wire); }

    /** Block until one complete frame arrives (bounded by the stream's
     *  receive timeout). EOF and malformed framing are Errors. */
    Result<Frame> recv();

    TcpStream &stream() { return stream_; }
    void close() { stream_.close(); }

  private:
    TcpStream stream_;
    Bytes rx_;
};

} // namespace mintcb::net

#endif // MINTCB_NET_SOCKET_HH
