/**
 * @file
 * Gateway client implementation.
 */

#include "net/client.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "store/migrate.hh"

namespace mintcb::net
{

namespace
{

/** Turn a gateway error frame back into a local Error. */
Error
errorFromFrame(const Frame &frame)
{
    auto payload = decodeError(frame.payload);
    if (!payload)
        return Error(Errc::integrityFailure,
                     "gateway sent an undecodable error frame");
    return Error(static_cast<Errc>(payload->code),
                 "gateway: " + payload->message);
}

void
defaultBackoff(std::uint32_t retry_after_ms)
{
    const std::uint32_t ms = std::min<std::uint32_t>(retry_after_ms, 100);
    if (ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace

GatewayClient::GatewayClient(ClientConfig config)
    : config_(std::move(config)),
      identity_(config_.name, AttestedIdentity::clientPal(config_.name),
                config_.identitySeed)
{
    if (!config_.backoff)
        config_.backoff = defaultBackoff;
    gatewayVerifier_.trustPal(AttestedIdentity::gatewayPal());
}

Status
GatewayClient::connect(std::uint16_t port)
{
    if (!identity_.ok())
        return identity_.launchStatus();
    auto stream =
        TcpStream::connectLoopback(port, config_.timeoutMillis);
    if (!stream)
        return stream.error();
    channel_ = std::make_unique<FrameChannel>(stream.take());

    HelloPayload hello;
    hello.nonce = identity_.freshNonce();
    hello.clientName = config_.name;
    if (auto s = channel_->send({FrameType::hello, encodeHello(hello)});
        !s.ok()) {
        close();
        return s;
    }

    auto frame = channel_->recv();
    if (!frame) {
        close();
        return frame.error();
    }
    if (frame->type == FrameType::error) {
        close();
        return errorFromFrame(*frame);
    }
    if (frame->type != FrameType::challenge) {
        close();
        return Error(Errc::failedPrecondition,
                     std::string("expected challenge, got ") +
                         frameTypeName(frame->type));
    }
    auto challenge = decodeChallenge(frame->payload);
    if (!challenge) {
        close();
        return challenge.error();
    }

    if (config_.verifyGateway) {
        // The trust decision the paper gives the remote party: refuse
        // to hand over inputs unless the platform proves, against our
        // fresh nonce, that PCR 17 holds a whitelisted gateway PAL.
        auto attestation =
            sea::Attestation::decode(challenge->attestation);
        if (!attestation) {
            close();
            return attestation.error();
        }
        auto verdict =
            gatewayVerifier_.verify(*attestation, hello.nonce);
        if (!verdict) {
            close();
            return verdict.error();
        }
        gatewaySubject_ = attestation->aikCert.subject;
    }

    auto attestation = identity_.attest(challenge->nonce);
    if (!attestation) {
        close();
        return attestation.error();
    }
    AuthPayload auth;
    auth.attestation = attestation->encode();
    if (auto s = channel_->send({FrameType::auth, encodeAuth(auth)});
        !s.ok()) {
        close();
        return s;
    }

    auto reply = channel_->recv();
    if (!reply) {
        close();
        return reply.error();
    }
    if (reply->type == FrameType::error) {
        close();
        return errorFromFrame(*reply);
    }
    if (reply->type != FrameType::authOk) {
        close();
        return Error(Errc::failedPrecondition,
                     std::string("expected authOk, got ") +
                         frameTypeName(reply->type));
    }
    auto ok = decodeAuthOk(reply->payload);
    if (!ok) {
        close();
        return ok.error();
    }
    sessionId_ = ok->sessionId;
    return okStatus();
}

Status
GatewayClient::submit(const WireRequest &request)
{
    if (!connected())
        return Error(Errc::failedPrecondition, "not connected");
    txBuf_.clear();
    encodeSubmitInto(request, txBuf_);
    return channel_->send(FrameType::submit, txBuf_);
}

Status
GatewayClient::migrateInto(store::SealedStore &target,
                           const std::string &store_name)
{
    if (!connected())
        return Error(Errc::failedPrecondition, "not connected");

    // Round 1: ask for a challenge.
    MigrateBeginPayload begin;
    begin.storeName = store_name;
    txBuf_.clear();
    encodeMigrateBeginInto(begin, txBuf_);
    if (auto s = channel_->send(FrameType::migrateBegin, txBuf_);
        !s.ok()) {
        return s;
    }
    auto challengeFrame = channel_->recv();
    if (!challengeFrame)
        return challengeFrame.error();
    if (challengeFrame->type == FrameType::error) {
        auto err = decodeError(challengeFrame->payload);
        if (!err)
            return err.error();
        return Error(static_cast<Errc>(err->code), err->message);
    }
    if (challengeFrame->type != FrameType::migrateChallenge) {
        return Error(Errc::failedPrecondition,
                     std::string("expected migrateChallenge, got ") +
                         frameTypeName(challengeFrame->type));
    }
    auto challenge = decodeMigrateChallenge(challengeFrame->payload);
    if (!challenge)
        return challenge.error();

    // Round 2: the target quotes its launch identity over the bound
    // nonce, stapled to the SRK that will receive the state.
    auto attestation = target.attestForMigration(challenge->nonce);
    if (!attestation)
        return attestation.error();
    MigratePayload migrate;
    migrate.storeName = store_name;
    migrate.nonce = challenge->nonce;
    migrate.targetSrk = target.srkPublicEncoded();
    migrate.attestation = attestation->encode();
    txBuf_.clear();
    encodeMigrateInto(migrate, txBuf_);
    if (auto s = channel_->send(FrameType::migrate, txBuf_); !s.ok())
        return s;
    auto doneFrame = channel_->recv();
    if (!doneFrame)
        return doneFrame.error();
    if (doneFrame->type == FrameType::error) {
        auto err = decodeError(doneFrame->payload);
        if (!err)
            return err.error();
        return Error(static_cast<Errc>(err->code), err->message);
    }
    if (doneFrame->type != FrameType::migrated) {
        return Error(Errc::failedPrecondition,
                     std::string("expected migrated, got ") +
                         frameTypeName(doneFrame->type));
    }
    auto done = decodeMigrated(doneFrame->payload);
    if (!done)
        return done.error();
    return store::MigrationAuthority::adopt(target, done->bundle);
}

Status
GatewayClient::sendFrame(FrameType type, const Bytes &payload)
{
    if (!connected())
        return Error(Errc::failedPrecondition, "not connected");
    return channel_->send(type, payload);
}

Status
GatewayClient::flush()
{
    if (!connected())
        return Error(Errc::failedPrecondition, "not connected");
    return channel_->send({FrameType::flush, Bytes{}});
}

Result<Frame>
GatewayClient::recvFrame()
{
    if (!connected())
        return Error(Errc::failedPrecondition, "not connected");
    return channel_->recv();
}

Result<std::vector<ReportPayload>>
GatewayClient::runBatch(const std::vector<WireRequest> &requests)
{
    if (!connected())
        return Error(Errc::failedPrecondition, "not connected");
    std::map<std::uint64_t, const WireRequest *> outstanding;
    std::map<std::uint64_t, int> retries;
    for (const WireRequest &r : requests) {
        if (!outstanding.emplace(r.sequence, &r).second) {
            return Error(Errc::invalidArgument,
                         "duplicate sequence " +
                             std::to_string(r.sequence) +
                             " within one batch");
        }
    }
    // The whole batch -- every submit frame plus the trailing flush --
    // is framed in place in the reusable buffer and handed to the
    // kernel in one write, instead of a syscall (and a frame
    // allocation) per request.
    txBuf_.clear();
    for (const WireRequest &r : requests) {
        const std::size_t at = beginFrame(FrameType::submit, txBuf_);
        encodeSubmitInto(r, txBuf_);
        endFrame(txBuf_, at);
    }
    endFrame(txBuf_, beginFrame(FrameType::flush, txBuf_));
    if (auto s = channel_->sendRaw(txBuf_); !s.ok())
        return s.error();

    std::vector<ReportPayload> reports;
    while (!outstanding.empty()) {
        auto frame = channel_->recv();
        if (!frame)
            return frame.error();
        switch (frame->type) {
        case FrameType::report: {
            auto payload = decodeReport(frame->payload);
            if (!payload)
                return payload.error();
            outstanding.erase(payload->sequence);
            reports.push_back(payload.take());
            break;
        }
        case FrameType::busy: {
            auto busy = decodeBusy(frame->payload);
            if (!busy)
                return busy.error();
            ++busyResponses_;
            auto it = outstanding.find(busy->sequence);
            if (it == outstanding.end())
                break; // stale busy for a request we already dropped
            if (++retries[busy->sequence] > config_.maxBusyRetries) {
                return Error(Errc::resourceExhausted,
                             "request " +
                                 std::to_string(busy->sequence) +
                                 " still refused after " +
                                 std::to_string(config_.maxBusyRetries) +
                                 " busy retries");
            }
            config_.backoff(busy->retryAfterMillis);
            if (auto s = submit(*it->second); !s.ok())
                return s.error();
            if (auto s = flush(); !s.ok())
                return s.error();
            break;
        }
        case FrameType::error:
            return errorFromFrame(*frame);
        default:
            return Error(Errc::failedPrecondition,
                         std::string("unexpected frame: ") +
                             frameTypeName(frame->type));
        }
    }
    std::sort(reports.begin(), reports.end(),
              [](const ReportPayload &a, const ReportPayload &b) {
                  return a.sequence < b.sequence;
              });
    return reports;
}

Result<ReportPayload>
GatewayClient::call(const WireRequest &request)
{
    auto reports = runBatch({request});
    if (!reports)
        return reports.error();
    if (reports->size() != 1)
        return Error(Errc::integrityFailure,
                     "expected exactly one report");
    return std::move(reports->front());
}

void
GatewayClient::bye()
{
    if (connected())
        (void)channel_->send({FrameType::bye, Bytes{}});
    close();
}

void
GatewayClient::close()
{
    if (channel_) {
        channel_->close();
        channel_.reset();
    }
    sessionId_ = 0;
}

} // namespace mintcb::net
