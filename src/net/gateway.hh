/**
 * @file
 * mintcb-gate: the attested network gateway (tentpole of the net
 * layer).
 *
 * Everything below this file is in-process; the gateway is the first
 * component an *external* party can talk to. It owns a loopback TCP
 * listener and a single-threaded reactor (poll + non-blocking
 * sockets) that:
 *
 *  - runs the attested-session handshake (net/handshake.hh) and
 *    refuses, before any submit() reaches the service, every
 *    connection whose quote fails sea::Verifier::verifyFresh;
 *  - enforces admission control on host time: a bounded in-flight
 *    queue and a per-client token bucket answer overload with explicit
 *    `busy` backpressure frames (retry hints included) rather than
 *    disconnects, and idle connections are reaped on a read timeout;
 *  - routes admitted requests into the existing sea::ExecutionService.
 *    Within each drain cycle requests are ordered by their
 *    client-assigned sequence number before submission, so the
 *    service sees a batch that is a pure function of the cycle's
 *    *contents*, never of network arrival interleaving -- the PR 4
 *    byte-identical-reports guarantee carries through end to end
 *    (DESIGN.md section 11.4);
 *  - drains gracefully on stop: stops accepting, runs the pending
 *    cycle, delivers every report, then closes.
 *
 * The reactor thread is the only thread that touches the service and
 * its machine; handshake quotes run on a separate identity machine so
 * session churn never advances the service timeline.
 */

#ifndef MINTCB_NET_GATEWAY_HH
#define MINTCB_NET_GATEWAY_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/handshake.hh"
#include "net/ratelimit.hh"
#include "net/registry.hh"
#include "net/socket.hh"
#include "net/wire.hh"
#include "obs/span.hh"
#include "sea/service.hh"

namespace mintcb::store
{
class MigrationAuthority; // defined in store/migrate.hh
}

namespace mintcb::net
{

/** Host-time millisecond clock; injectable so tests drive rate-limit
 *  refill and idle reaping deterministically. */
using HostClock = std::function<std::uint64_t()>;

/** Monotonic milliseconds from std::chrono::steady_clock. */
std::uint64_t steadyMillis();

/** Gateway tuning. */
struct GatewayConfig
{
    /** Loopback port to listen on; 0 = ephemeral (read Gateway::port()
     *  back after start). */
    std::uint16_t port = 0;

    /** Gateway platform label sent in authOk. */
    std::string subject = "mintcb-gate";

    /** Seed for the gateway's attested-identity machine. */
    std::uint64_t identitySeed = 1;

    /** Bounded in-flight queue: pending requests beyond this answer
     *  with busy/queueFull. 0 = unlimited. */
    std::size_t maxInflight = 1024;

    /** Per-client token bucket (busy/rateLimited when empty);
     *  rateBurst = 0 disables rate limiting. */
    std::uint32_t rateBurst = 0;
    double ratePerSecond = 0.0;

    /** Close connections with no complete frame for this long
     *  (host ms); 0 disables idle reaping. */
    std::uint64_t idleTimeoutMillis = 30000;

    /** Drain the service once this many requests are pending. */
    std::size_t drainBatch = 1;

    /** Also drain whenever the reactor goes idle with work pending.
     *  Disable (with drainBatch = N) to force whole-batch cycles --
     *  what the byte-identity tests and bench do. */
    bool drainOnIdle = true;

    /** Reactor poll granularity (host ms); bounds stop latency. */
    int pollMillis = 20;

    /** Host clock used for rate limiting and idle reaping. */
    HostClock clock = steadyMillis;

    /** Optional sim-time tracer: drain cycles and handshake verdicts
     *  land on obs::track::gateway. */
    obs::SpanTracer *tracer = nullptr;

    /** @name Attested state migration (the MIGRATE verbs). @{ */
    /** Authority serving outbound migrations of the gateway-side
     *  sealed store. Null refuses every migrateBegin. Reactor-thread
     *  use only (the reactor is the gateway's single thread). */
    store::MigrationAuthority *migration = nullptr;
    /** Store name clients must pass in migrateBegin. */
    std::string migrationStore = "default";
    /** @} */
};

/** Cumulative gateway observability (bridged to net_* metrics by
 *  net/netobs.hh). All counters are reactor-thread-owned. */
struct GatewayStats
{
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsClosed = 0;
    std::uint64_t handshakesCompleted = 0;
    std::uint64_t handshakesRefused = 0; //!< quote failed verifyFresh
    std::uint64_t protocolErrors = 0;    //!< bad frames / bad state
    std::uint64_t idleDisconnects = 0;

    std::uint64_t framesRx = 0;
    std::uint64_t framesTx = 0;
    std::uint64_t bytesRx = 0;
    std::uint64_t bytesTx = 0;

    std::uint64_t requestsAdmitted = 0;
    std::uint64_t busyQueueFull = 0;
    std::uint64_t busyRateLimited = 0;
    std::uint64_t duplicateSequence = 0;
    std::uint64_t unknownPal = 0;
    std::uint64_t backendRejected = 0; //!< failed backend admission

    std::uint64_t drains = 0;
    std::uint64_t reportsDelivered = 0;
    std::uint64_t reportsDropped = 0; //!< owner disconnected mid-drain
    std::size_t maxPendingDepth = 0;

    std::uint64_t migrationsServed = 0;  //!< bundles handed out
    std::uint64_t migrationsRefused = 0; //!< bad nonce/quote/name

    /** Multi-line human-readable rendering. */
    std::string str() const;
};

/**
 * The gateway server. Bring your own machine + service (the test
 * builds an identically seeded pair to prove byte-identity) and a
 * registry of the PALs remote clients may invoke:
 *
 *     Gateway gw(machine, service, registry, config);
 *     gw.trustClientPal(AttestedIdentity::clientPal());
 *     gw.start();                 // spawns the reactor thread
 *     ... clients connect to gw.port() ...
 *     gw.stop();                  // graceful drain-then-shutdown
 *
 * A daemon (tools/mintcb-gate.cc) calls run() on its main thread
 * instead and wires SIGTERM to requestStop().
 */
class Gateway
{
  public:
    Gateway(machine::Machine &machine, sea::ExecutionService &service,
            const PalRegistry &registry, GatewayConfig config = {});
    ~Gateway();

    Gateway(const Gateway &) = delete;
    Gateway &operator=(const Gateway &) = delete;

    /** Whitelist a client identity PAL for the handshake verifier. */
    void trustClientPal(const sea::Pal &pal);

    /** Bind the listener (done separately so port() is available
     *  before the reactor runs). Idempotent. */
    Status bind();

    /** The bound port (after bind()/start()). */
    std::uint16_t port() const { return port_; }

    /** Run the reactor on the calling thread until requestStop(). */
    Status run();

    /** bind() + run() on a background thread. */
    Status start();

    /** Signal-safe: ask the reactor to drain and exit. */
    void requestStop() { stopRequested_.store(true); }

    /** requestStop() + join the background thread (no-op without
     *  start()). */
    void stop();

    const GatewayStats &stats() const { return stats_; }

    /** Pending (admitted, not yet drained) request count. */
    std::size_t pendingDepth() const;

  private:
    struct Conn;
    struct PendingRequest;

    void reactorLoop();
    void acceptPending(std::uint64_t now_ms);
    void serviceConn(Conn &conn, std::uint64_t now_ms);
    bool handleFrame(Conn &conn, const Frame &frame);
    bool handleHello(Conn &conn, const Frame &frame);
    bool handleAuth(Conn &conn, const Frame &frame);
    bool handleSubmit(Conn &conn, const Frame &frame);
    bool handleMigrateBegin(Conn &conn, const Frame &frame);
    bool handleMigrate(Conn &conn, const Frame &frame);
    void drainCycle();
    /** Open a frame of @p type directly inside conn.tx, run @p encode
     *  (a callable appending the payload bytes to the buffer), patch
     *  the length, and flush opportunistically. The reactor's only
     *  send primitive: no temporary frame or payload vector exists. */
    template <typename EncodePayload>
    void sendEncoded(Conn &conn, FrameType type,
                     EncodePayload &&encode);
    void refuse(Conn &conn, Errc code, const std::string &message);
    void flushTx(Conn &conn);
    void closeConn(Conn &conn);
    void reapIdle(std::uint64_t now_ms);
    bool anyTxPending() const;
    Conn *connBySession(std::uint64_t session);

    machine::Machine &machine_;
    sea::ExecutionService &service_;
    const PalRegistry &registry_;
    GatewayConfig config_;

    AttestedIdentity identity_;
    sea::Verifier clientVerifier_;

    TcpListener listener_;
    std::uint16_t port_ = 0;
    std::vector<std::unique_ptr<Conn>> conns_;
    std::vector<PendingRequest> pending_;
    bool flushRequested_ = false;
    std::uint64_t nextSession_ = 1;

    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> running_{false};
    std::unique_ptr<std::thread> thread_;

    GatewayStats stats_;
};

} // namespace mintcb::net

#endif // MINTCB_NET_GATEWAY_HH
