/**
 * @file
 * Attested-identity implementation.
 */

#include "net/handshake.hh"

#include "latelaunch/latelaunch.hh"

namespace mintcb::net
{

namespace
{

/** Where the identity SLB is staged for the launch. */
constexpr PhysAddr identitySlbAddr = 0x10000;

} // namespace

AttestedIdentity::AttestedIdentity(std::string subject,
                                   const sea::Pal &identity_pal,
                                   std::uint64_t seed,
                                   machine::PlatformId platform)
    : subject_(std::move(subject)), pal_(identity_pal),
      machine_(machine::PlatformSpec::forPlatform(platform), seed)
{
    latelaunch::LateLaunch launcher(machine_);
    if (auto s = machine_.writeAs(0, identitySlbAddr, pal_.slbImage());
        !s.ok()) {
        launchStatus_ = s.error();
        return;
    }
    auto report = launcher.invoke(0, identitySlbAddr);
    if (!report.ok()) {
        launchStatus_ = report.error();
        return;
    }
    launcher.resumeOtherCpus();
}

Result<sea::Attestation>
AttestedIdentity::attest(const Bytes &nonce)
{
    if (!ok())
        return launchStatus_.error();
    return sea::attestLaunch(machine_, 0, nonce, subject_);
}

Bytes
AttestedIdentity::freshNonce()
{
    return machine_.rng().bytes(handshakeNonceBytes);
}

sea::Pal
AttestedIdentity::gatewayPal()
{
    return sea::Pal::fromLogic("mintcb-gate", 8 * 1024,
                               [](sea::PalContext &) {
                                   return okStatus();
                               });
}

sea::Pal
AttestedIdentity::clientPal(const std::string &name)
{
    return sea::Pal::fromLogic(name, 4 * 1024, [](sea::PalContext &) {
        return okStatus();
    });
}

} // namespace mintcb::net
