/**
 * @file
 * Bridge from gateway counters into the obs metrics registry.
 *
 * Follows the PR 3 bridge idiom (obs/metrics.hh): the gateway keeps
 * its plain GatewayStats struct and pays nothing for observability;
 * callers that want a scrape register pull callbacks that read the
 * live struct at render time. Every series lands in the `net_*`
 * namespace next to the existing tpm_* / transport_* families.
 */

#ifndef MINTCB_NET_NETOBS_HH
#define MINTCB_NET_NETOBS_HH

#include "net/gateway.hh"
#include "obs/metrics.hh"

namespace mintcb::net
{

/**
 * Register pull-based net_* series reading @p stats live. The struct
 * must outlive @p registry (or the registry be rendered before the
 * gateway dies). @p labels tag every bridged series (e.g. the gateway
 * subject).
 */
void bridgeGatewayStats(obs::MetricsRegistry &registry,
                        const GatewayStats &stats,
                        obs::Labels labels = {});

} // namespace mintcb::net

#endif // MINTCB_NET_NETOBS_HH
