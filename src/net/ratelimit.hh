/**
 * @file
 * Per-client token-bucket rate limiting for the gateway.
 *
 * Admission control is the one place the gateway runs on *host* time:
 * it shapes real network traffic, not simulated hardware. The clock is
 * injected (a millisecond counter) so tests drive refill
 * deterministically and the bench can produce exact busy-frame counts.
 */

#ifndef MINTCB_NET_RATELIMIT_HH
#define MINTCB_NET_RATELIMIT_HH

#include <cstdint>

namespace mintcb::net
{

/** Classic token bucket: capacity-bounded, refilled continuously at a
 *  fixed rate. A disabled bucket (capacity 0) always admits. */
class TokenBucket
{
  public:
    TokenBucket() = default;

    /** @p capacity tokens of burst, refilled at @p per_second tokens
     *  per second starting from full at @p now_ms. */
    TokenBucket(std::uint32_t capacity, double per_second,
                std::uint64_t now_ms)
        : capacity_(capacity), perSecond_(per_second),
          tokens_(static_cast<double>(capacity)), lastMs_(now_ms)
    {
    }

    bool enabled() const { return capacity_ > 0; }

    /** Try to spend one token at host time @p now_ms. */
    bool
    tryAcquire(std::uint64_t now_ms)
    {
        if (!enabled())
            return true;
        refill(now_ms);
        if (tokens_ >= 1.0) {
            tokens_ -= 1.0;
            return true;
        }
        return false;
    }

    /** Milliseconds until one token will be available (retry hint for
     *  busy frames); 0 when a token is ready or refill is disabled. */
    std::uint32_t
    millisUntilToken(std::uint64_t now_ms)
    {
        if (!enabled())
            return 0;
        refill(now_ms);
        if (tokens_ >= 1.0)
            return 0;
        if (perSecond_ <= 0.0)
            return 0; // no refill: the hint cannot be computed
        const double missing = 1.0 - tokens_;
        return static_cast<std::uint32_t>(missing / perSecond_ * 1000.0) +
               1;
    }

    double tokens() const { return tokens_; }

  private:
    void
    refill(std::uint64_t now_ms)
    {
        if (now_ms <= lastMs_)
            return;
        const double elapsed =
            static_cast<double>(now_ms - lastMs_) / 1000.0;
        tokens_ += elapsed * perSecond_;
        const double cap = static_cast<double>(capacity_);
        if (tokens_ > cap)
            tokens_ = cap;
        lastMs_ = now_ms;
    }

    std::uint32_t capacity_ = 0; //!< 0 = unlimited
    double perSecond_ = 0.0;
    double tokens_ = 0.0;
    std::uint64_t lastMs_ = 0;
};

} // namespace mintcb::net

#endif // MINTCB_NET_RATELIMIT_HH
