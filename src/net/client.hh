/**
 * @file
 * Blocking gateway client: attested connect, pipelined submits,
 * busy-aware collection.
 *
 * The client is the remote party of the paper's model: before it
 * entrusts inputs to the platform it *verifies* the gateway's
 * attestation (PCR 17 quote over a nonce the client just drew,
 * AIK certificate chained to the Privacy CA), and it must present its
 * own attestation before the gateway will take work. After the
 * handshake the client pipelines submit frames, flushes, and collects
 * reports; `busy` backpressure frames are retried with the gateway's
 * own retry hint rather than treated as failures.
 */

#ifndef MINTCB_NET_CLIENT_HH
#define MINTCB_NET_CLIENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/handshake.hh"
#include "net/socket.hh"
#include "net/wire.hh"

namespace mintcb::store
{
class SealedStore; // defined in store/engine.hh
}

namespace mintcb::net
{

/** Client tuning. */
struct ClientConfig
{
    /** Display name sent in hello and used for the identity PAL. */
    std::string name = "mintcb-client";

    /** Seed for the client's attested-identity machine. */
    std::uint64_t identitySeed = 2;

    /** Socket connect/read timeout (ms). */
    int timeoutMillis = 30000;

    /** Verify the gateway's challenge attestation before proceeding
     *  (disable only in tests probing the handshake itself). */
    bool verifyGateway = true;

    /** Give up after this many busy retries for one request. */
    int maxBusyRetries = 1000;

    /** Called before each busy retry with the gateway's retry hint;
     *  defaults to sleeping that many milliseconds (capped at 100).
     *  Tests inject a no-op to keep wall time down. */
    std::function<void(std::uint32_t)> backoff;
};

/**
 * One attested session against a mintcb-gate instance.
 *
 *     GatewayClient client(config);
 *     client.connect(port);              // TCP + mutual attestation
 *     auto reports = client.runBatch(requests);
 *     client.bye();
 *
 * Not thread-safe; one instance per connection, one connection per
 * thread.
 */
class GatewayClient
{
  public:
    explicit GatewayClient(ClientConfig config = {});

    /** Did the local identity machine launch? (Checked by connect.) */
    bool identityOk() const { return identity_.ok(); }
    AttestedIdentity &identity() { return identity_; }

    /** Connect to 127.0.0.1:@p port and run the full handshake. */
    Status connect(std::uint16_t port);

    bool connected() const { return channel_ != nullptr; }
    std::uint64_t sessionId() const { return sessionId_; }

    /** Subject string the gateway's verified attestation carried. */
    const std::string &gatewaySubject() const { return gatewaySubject_; }

    /**
     * Pipeline every request, flush, and collect one report per
     * request (retrying busy responses per the gateway's hint).
     * Reports come back sorted by sequence. Sequences must be unique
     * within the batch.
     */
    Result<std::vector<ReportPayload>>
    runBatch(const std::vector<WireRequest> &requests);

    /** Single-request convenience over runBatch. */
    Result<ReportPayload> call(const WireRequest &request);

    /**
     * Drive the MIGRATE verbs on behalf of @p target, the receiving
     * (empty) store on this side: request a challenge for
     * @p store_name, quote the target's launch identity over
     * sha256(nonce || target SRK), and adopt the returned bundle. On
     * success the target holds the migrated state at a fresh epoch and
     * the gateway-side source is permanently invalidated.
     */
    Status migrateInto(store::SealedStore &target,
                       const std::string &store_name);

    /** @name Low-level access (tests, load generators). @{ */
    Status submit(const WireRequest &request);
    Status flush();
    /** Send one arbitrary frame (protocol-violation tests). */
    Status sendFrame(FrameType type, const Bytes &payload);
    /** Block for the next frame of any type. */
    Result<Frame> recvFrame();
    /** @} */

    /** Graceful goodbye + close. */
    void bye();
    void close();

    /** Busy frames absorbed over the connection's lifetime. */
    std::uint64_t busyResponses() const { return busyResponses_; }

  private:
    ClientConfig config_;
    AttestedIdentity identity_;
    sea::Verifier gatewayVerifier_;
    std::unique_ptr<FrameChannel> channel_;
    /** Reusable encode buffer: submits and batches are framed in
     *  place here (beginFrame/endFrame), so steady-state submission
     *  allocates nothing. */
    Bytes txBuf_;
    std::uint64_t sessionId_ = 0;
    std::string gatewaySubject_;
    std::uint64_t busyResponses_ = 0;
};

} // namespace mintcb::net

#endif // MINTCB_NET_CLIENT_HH
