/**
 * @file
 * Gateway reactor implementation.
 */

#include "net/gateway.hh"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <utility>

#include "store/migrate.hh"

namespace mintcb::net
{

std::uint64_t
steadyMillis()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Per-connection reactor state. */
struct Gateway::Conn
{
    enum class State
    {
        expectHello, //!< nothing received yet
        expectAuth,  //!< challenge sent, waiting on the client quote
        attested,    //!< session admitted; submits accepted
        closed,
    };

    TcpStream stream;
    /** Receive buffer. Frames are consumed by advancing rxOff (no
     *  per-frame memmove); the prefix is compacted once per reactor
     *  pass. */
    Bytes rx;
    std::size_t rxOff = 0;
    /** Send buffer. Frames are encoded in place at the tail; sent
     *  bytes are consumed by advancing txOff, and the buffer resets
     *  (keeping its capacity) once fully flushed. */
    Bytes tx;
    std::size_t txOff = 0;
    /** Reusable decode target: takeFrameInto re-fills the payload in
     *  place, so steady-state frame handling does not allocate. */
    Frame scratch;
    State state = State::expectHello;
    std::string clientName;
    Bytes gatewayNonce; //!< challenge nonce this client must quote
    Bytes migrationNonce; //!< outstanding MIGRATE challenge (if any)
    std::uint64_t session = 0;
    TokenBucket bucket;
    std::uint64_t lastActivityMs = 0;
    bool closeAfterFlush = false;

    bool txPending() const { return txOff < tx.size(); }
};

/** One admitted request waiting for the next drain cycle. */
struct Gateway::PendingRequest
{
    std::uint64_t sequence = 0;
    std::uint64_t session = 0;
    sea::PalRequest request;
};

std::string
GatewayStats::str() const
{
    std::ostringstream out;
    out << "gateway: conns accepted=" << connectionsAccepted
        << " closed=" << connectionsClosed
        << " handshakes ok=" << handshakesCompleted
        << " refused=" << handshakesRefused
        << " protocol-errors=" << protocolErrors
        << " idle-disconnects=" << idleDisconnects << "\n"
        << "gateway: frames rx=" << framesRx << " tx=" << framesTx
        << " bytes rx=" << bytesRx << " tx=" << bytesTx << "\n"
        << "gateway: admitted=" << requestsAdmitted
        << " busy queue-full=" << busyQueueFull
        << " rate-limited=" << busyRateLimited
        << " dup-sequence=" << duplicateSequence
        << " unknown-pal=" << unknownPal
        << " backend-rejected=" << backendRejected << "\n"
        << "gateway: drains=" << drains
        << " reports delivered=" << reportsDelivered
        << " dropped=" << reportsDropped
        << " max-pending=" << maxPendingDepth << "\n"
        << "gateway: migrations served=" << migrationsServed
        << " refused=" << migrationsRefused << "\n";
    return out.str();
}

Gateway::Gateway(machine::Machine &machine, sea::ExecutionService &service,
                 const PalRegistry &registry, GatewayConfig config)
    : machine_(machine), service_(service), registry_(registry),
      config_(std::move(config)),
      identity_(config_.subject, AttestedIdentity::gatewayPal(),
                config_.identitySeed)
{
}

Gateway::~Gateway() { stop(); }

std::size_t
Gateway::pendingDepth() const
{
    return pending_.size();
}

void
Gateway::trustClientPal(const sea::Pal &pal)
{
    clientVerifier_.trustPal(pal);
}

Status
Gateway::bind()
{
    if (listener_.valid())
        return okStatus();
    if (!identity_.ok())
        return identity_.launchStatus();
    auto listener = TcpListener::bindLoopback(config_.port);
    if (!listener)
        return listener.error();
    listener_ = listener.take();
    port_ = listener_.port();
    return okStatus();
}

Status
Gateway::run()
{
    if (auto s = bind(); !s.ok())
        return s;
    reactorLoop();
    return okStatus();
}

Status
Gateway::start()
{
    if (auto s = bind(); !s.ok())
        return s;
    thread_ = std::make_unique<std::thread>([this] { reactorLoop(); });
    return okStatus();
}

void
Gateway::stop()
{
    requestStop();
    if (thread_ && thread_->joinable())
        thread_->join();
    thread_.reset();
}

Gateway::Conn *
Gateway::connBySession(std::uint64_t session)
{
    for (auto &conn : conns_) {
        if (conn->session == session &&
            conn->state == Conn::State::attested) {
            return conn.get();
        }
    }
    return nullptr;
}

void
Gateway::reactorLoop()
{
    running_.store(true);
    bool accepting = true;
    while (true) {
        const bool stopping = stopRequested_.load();
        if (stopping)
            accepting = false; // graceful: finish work, take no more

        std::vector<pollfd> fds;
        fds.reserve(conns_.size() + 1);
        const bool pollListener = accepting && listener_.valid();
        if (pollListener)
            fds.push_back({listener_.fd(), POLLIN, 0});
        const std::size_t connBase = fds.size();
        for (const auto &conn : conns_) {
            short events = POLLIN;
            if (conn->txPending())
                events = static_cast<short>(events | POLLOUT);
            fds.push_back({conn->stream.fd(), events, 0});
        }
        // fds covers exactly the connections present right now;
        // acceptPending below may grow conns_, so remember how many
        // were actually polled and walk only that prefix (a fresh
        // connection gets its first poll next pass).
        const std::size_t polled = conns_.size();
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               config_.pollMillis);

        const std::uint64_t now = config_.clock();
        const std::uint64_t framesBefore = stats_.framesRx;

        if (pollListener && (fds[0].revents & POLLIN) != 0)
            acceptPending(now);

        for (std::size_t i = 0; i < polled; ++i) {
            Conn &conn = *conns_[i];
            const short revents = fds[connBase + i].revents;
            if (conn.state == Conn::State::closed)
                continue;
            if ((revents & POLLOUT) != 0)
                flushTx(conn);
            if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                serviceConn(conn, now);
            if (conn.state != Conn::State::closed &&
                conn.closeAfterFlush && !conn.txPending()) {
                closeConn(conn);
            }
        }

        reapIdle(now);
        conns_.erase(
            std::remove_if(conns_.begin(), conns_.end(),
                           [](const std::unique_ptr<Conn> &c) {
                               return c->state == Conn::State::closed;
                           }),
            conns_.end());

        const bool readAny = stats_.framesRx != framesBefore;
        if (!pending_.empty() &&
            (pending_.size() >= config_.drainBatch || flushRequested_ ||
             (config_.drainOnIdle && !readAny) || stopping)) {
            flushRequested_ = false;
            drainCycle();
        }

        if (stopping && pending_.empty() && !anyTxPending())
            break;
    }

    // Last-chance flush so clients blocked on their final report see it
    // before the FIN.
    for (auto &conn : conns_) {
        if (conn->state == Conn::State::closed)
            continue;
        flushTx(*conn);
        closeConn(*conn);
    }
    conns_.clear();
    listener_.close();
    running_.store(false);
}

void
Gateway::acceptPending(std::uint64_t now_ms)
{
    auto stream = listener_.accept();
    if (!stream)
        return; // transient; poll again
    if (auto s = stream->setNonBlocking(true); !s.ok())
        return;
    auto conn = std::make_unique<Conn>();
    conn->stream = stream.take();
    conn->bucket =
        TokenBucket(config_.rateBurst, config_.ratePerSecond, now_ms);
    conn->lastActivityMs = now_ms;
    conns_.push_back(std::move(conn));
    ++stats_.connectionsAccepted;
}

void
Gateway::serviceConn(Conn &conn, std::uint64_t now_ms)
{
    for (;;) {
        auto n = conn.stream.recvSome(conn.rx);
        if (!n) {
            if (n.error().code == Errc::resourceExhausted)
                break; // socket drained for now
            closeConn(conn);
            return;
        }
        if (*n == 0) { // orderly EOF
            closeConn(conn);
            return;
        }
        stats_.bytesRx += *n;
        conn.lastActivityMs = now_ms;
    }

    while (conn.state != Conn::State::closed && !conn.closeAfterFlush) {
        auto took = takeFrameInto(conn.rx, conn.rxOff, conn.scratch);
        if (!took) {
            // Malformed framing: impossible to resynchronize a byte
            // stream, so refuse and hang up.
            ++stats_.protocolErrors;
            refuse(conn, took.error().code, took.error().message);
            break;
        }
        if (!*took)
            break; // need more bytes
        ++stats_.framesRx;
        if (!handleFrame(conn, conn.scratch))
            break;
    }

    // Compact the consumed prefix once per pass (one memmove for the
    // whole batch of frames, zero when the buffer drained completely).
    if (conn.rxOff == conn.rx.size()) {
        conn.rx.clear();
        conn.rxOff = 0;
    } else if (conn.rxOff > 0) {
        conn.rx.erase(conn.rx.begin(),
                      conn.rx.begin() +
                          static_cast<std::ptrdiff_t>(conn.rxOff));
        conn.rxOff = 0;
    }

    if (conn.state != Conn::State::closed && conn.closeAfterFlush) {
        flushTx(conn);
        if (!conn.txPending())
            closeConn(conn);
    }
}

bool
Gateway::handleFrame(Conn &conn, const Frame &frame)
{
    switch (frame.type) {
    case FrameType::hello:
        return handleHello(conn, frame);
    case FrameType::auth:
        return handleAuth(conn, frame);
    case FrameType::submit:
        return handleSubmit(conn, frame);
    case FrameType::migrateBegin:
        return handleMigrateBegin(conn, frame);
    case FrameType::migrate:
        return handleMigrate(conn, frame);
    case FrameType::flush:
        flushRequested_ = true;
        return true;
    case FrameType::bye:
        conn.closeAfterFlush = true;
        return false;
    default:
        ++stats_.protocolErrors;
        refuse(conn, Errc::failedPrecondition,
               std::string("unexpected frame from client: ") +
                   frameTypeName(frame.type));
        return false;
    }
}

bool
Gateway::handleHello(Conn &conn, const Frame &frame)
{
    if (conn.state != Conn::State::expectHello) {
        ++stats_.protocolErrors;
        refuse(conn, Errc::failedPrecondition, "hello after handshake");
        return false;
    }
    auto hello = decodeHello(frame.payload);
    if (!hello) {
        ++stats_.protocolErrors;
        refuse(conn, hello.error().code, hello.error().message);
        return false;
    }
    if (hello->version != wireVersion) {
        ++stats_.protocolErrors;
        refuse(conn, Errc::failedPrecondition,
               "protocol version mismatch: gateway speaks " +
                   std::to_string(wireVersion) + ", client sent " +
                   std::to_string(hello->version));
        return false;
    }
    conn.clientName = hello->clientName;
    conn.gatewayNonce = identity_.freshNonce();
    auto attestation = identity_.attest(hello->nonce);
    if (!attestation) {
        refuse(conn, attestation.error().code,
               attestation.error().message);
        return false;
    }
    ChallengePayload challenge;
    challenge.attestation = attestation->encode();
    challenge.nonce = conn.gatewayNonce;
    sendEncoded(conn, FrameType::challenge, [&](Bytes &out) {
        encodeChallengeInto(challenge, out);
    });
    conn.state = Conn::State::expectAuth;
    return true;
}

bool
Gateway::handleAuth(Conn &conn, const Frame &frame)
{
    if (conn.state != Conn::State::expectAuth) {
        ++stats_.protocolErrors;
        refuse(conn, Errc::failedPrecondition, "auth out of sequence");
        return false;
    }
    auto auth = decodeAuth(frame.payload);
    if (!auth) {
        ++stats_.protocolErrors;
        refuse(conn, auth.error().code, auth.error().message);
        return false;
    }
    auto attestation = sea::Attestation::decode(auth->attestation);
    if (!attestation) {
        ++stats_.protocolErrors;
        refuse(conn, attestation.error().code,
               attestation.error().message);
        return false;
    }
    // The gate: certificate chain, quote signature, exact-nonce
    // freshness, replay memory, and the PAL whitelist all pass before a
    // session exists -- and without a session, no submit ever reaches
    // the execution service.
    auto verdict =
        clientVerifier_.verifyFresh(*attestation, conn.gatewayNonce);
    if (!verdict) {
        ++stats_.handshakesRefused;
        if (config_.tracer) {
            config_.tracer->instant(obs::track::gateway,
                                    "gw:handshake-refused", "net",
                                    machine_.now());
        }
        refuse(conn, verdict.error().code, verdict.error().message);
        return false;
    }
    conn.session = nextSession_++;
    conn.state = Conn::State::attested;
    ++stats_.handshakesCompleted;
    if (config_.tracer) {
        const std::uint64_t id = config_.tracer->instant(
            obs::track::gateway, "gw:session", "net", machine_.now(),
            conn.session);
        config_.tracer->annotate(id, "client", verdict->palName);
    }
    AuthOkPayload ok;
    ok.sessionId = conn.session;
    ok.subject = config_.subject;
    sendEncoded(conn, FrameType::authOk,
                [&](Bytes &out) { encodeAuthOkInto(ok, out); });
    return true;
}

bool
Gateway::handleSubmit(Conn &conn, const Frame &frame)
{
    if (conn.state != Conn::State::attested) {
        ++stats_.protocolErrors;
        refuse(conn, Errc::permissionDenied,
               "submit before an attested session was established");
        return false;
    }
    auto wire = decodeSubmit(frame.payload);
    if (!wire) {
        ++stats_.protocolErrors;
        refuse(conn, wire.error().code, wire.error().message);
        return false;
    }
    auto request = registry_.build(*wire);
    if (!request) {
        ++stats_.unknownPal;
        refuse(conn, request.error().code, request.error().message);
        return false;
    }
    // Backend admission fails closed at the gateway edge: an unknown
    // backend name or a capability the backend cannot honor is refused
    // here, before the request consumes queue or service resources.
    if (auto admit = service_.admissible(*request); !admit.ok()) {
        ++stats_.backendRejected;
        refuse(conn, admit.error().code, admit.error().message);
        return false;
    }
    for (const PendingRequest &p : pending_) {
        if (p.sequence == wire->sequence) {
            // A duplicate key would make the in-cycle order ambiguous,
            // which is exactly what the sequence exists to prevent.
            ++stats_.duplicateSequence;
            refuse(conn, Errc::invalidArgument,
                   "sequence " + std::to_string(wire->sequence) +
                       " already pending in this drain cycle");
            return false;
        }
    }
    // Backpressure answers keep the connection open: an overloaded
    // gateway says "later", it does not hang up. Admission uses a
    // fresh clock sample, not the reactor pass's: a client that
    // honored the retry hint must find its token accrued even when
    // its retry lands in the same pass as younger traffic.
    const std::uint64_t admit_ms = config_.clock();
    if (!conn.bucket.tryAcquire(admit_ms)) {
        ++stats_.busyRateLimited;
        BusyPayload busy;
        busy.sequence = wire->sequence;
        busy.reason = BusyReason::rateLimited;
        busy.retryAfterMillis = conn.bucket.millisUntilToken(admit_ms);
        sendEncoded(conn, FrameType::busy,
                    [&](Bytes &out) { encodeBusyInto(busy, out); });
        return true;
    }
    if (config_.maxInflight > 0 &&
        pending_.size() >= config_.maxInflight) {
        ++stats_.busyQueueFull;
        BusyPayload busy;
        busy.sequence = wire->sequence;
        busy.reason = BusyReason::queueFull;
        busy.retryAfterMillis =
            static_cast<std::uint32_t>(config_.pollMillis);
        sendEncoded(conn, FrameType::busy,
                    [&](Bytes &out) { encodeBusyInto(busy, out); });
        return true;
    }
    pending_.push_back(
        PendingRequest{wire->sequence, conn.session, request.take()});
    ++stats_.requestsAdmitted;
    stats_.maxPendingDepth =
        std::max(stats_.maxPendingDepth, pending_.size());
    return true;
}

bool
Gateway::handleMigrateBegin(Conn &conn, const Frame &frame)
{
    if (conn.state != Conn::State::attested) {
        ++stats_.protocolErrors;
        refuse(conn, Errc::permissionDenied,
               "migrateBegin before an attested session was "
               "established");
        return false;
    }
    auto begin = decodeMigrateBegin(frame.payload);
    if (!begin) {
        ++stats_.protocolErrors;
        refuse(conn, begin.error().code, begin.error().message);
        return false;
    }
    if (config_.migration == nullptr ||
        begin->storeName != config_.migrationStore) {
        ++stats_.migrationsRefused;
        refuse(conn, Errc::notFound,
               "no migratable store named \"" + begin->storeName +
                   "\"");
        return false;
    }
    conn.migrationNonce = config_.migration->beginChallenge();
    MigrateChallengePayload challenge;
    challenge.nonce = conn.migrationNonce;
    sendEncoded(conn, FrameType::migrateChallenge, [&](Bytes &out) {
        encodeMigrateChallengeInto(challenge, out);
    });
    return true;
}

bool
Gateway::handleMigrate(Conn &conn, const Frame &frame)
{
    if (conn.state != Conn::State::attested) {
        ++stats_.protocolErrors;
        refuse(conn, Errc::permissionDenied,
               "migrate before an attested session was established");
        return false;
    }
    auto migrate = decodeMigrate(frame.payload);
    if (!migrate) {
        ++stats_.protocolErrors;
        refuse(conn, migrate.error().code, migrate.error().message);
        return false;
    }
    // The nonce must be the one this connection was challenged with:
    // the authority enforces single-use across the gateway, and this
    // check additionally pins it to the conversation that asked.
    if (config_.migration == nullptr ||
        migrate->storeName != config_.migrationStore ||
        conn.migrationNonce.empty() ||
        migrate->nonce != conn.migrationNonce) {
        ++stats_.migrationsRefused;
        refuse(conn, Errc::permissionDenied,
               "migrate does not answer this connection's challenge");
        return false;
    }
    conn.migrationNonce.clear();
    auto bundle = config_.migration->complete(
        migrate->nonce, migrate->targetSrk, migrate->attestation);
    if (!bundle) {
        ++stats_.migrationsRefused;
        refuse(conn, bundle.error().code, bundle.error().message);
        return false;
    }
    ++stats_.migrationsServed;
    MigratedPayload done;
    done.bundle = bundle.take();
    sendEncoded(conn, FrameType::migrated,
                [&](Bytes &out) { encodeMigratedInto(done, out); });
    return true;
}

void
Gateway::drainCycle()
{
    if (pending_.empty())
        return;
    obs::SpanTracer *tracer = config_.tracer;
    std::uint64_t span = 0;
    if (tracer) {
        span = tracer->beginSpan(obs::track::gateway, "gw:drain", "net",
                                 machine_.now());
        tracer->annotate(span, "requests",
                         std::to_string(pending_.size()));
    }

    // The determinism hinge (DESIGN.md section 11.4): admission order
    // into the service is the ascending client-assigned sequence, so
    // the batch the service sees is a function of the cycle's contents,
    // never of TCP arrival interleaving.
    std::vector<PendingRequest> cycle;
    cycle.swap(pending_);
    std::sort(cycle.begin(), cycle.end(),
              [](const PendingRequest &a, const PendingRequest &b) {
                  return a.sequence < b.sequence;
              });

    struct Owner
    {
        std::uint64_t session;
        std::uint64_t sequence;
    };
    std::map<std::uint64_t, Owner> owners; // service requestId -> owner
    for (PendingRequest &p : cycle) {
        auto id = service_.submit(std::move(p.request));
        if (!id) {
            if (Conn *conn = connBySession(p.session)) {
                ErrorPayload err;
                err.code = static_cast<std::uint16_t>(id.error().code);
                err.message = id.error().message;
                sendEncoded(*conn, FrameType::error, [&](Bytes &out) {
                    encodeErrorInto(err, out);
                });
            }
            continue;
        }
        owners[*id] = Owner{p.session, p.sequence};
    }

    auto reports = service_.drain();
    ++stats_.drains;
    if (!reports) {
        for (const auto &[id, owner] : owners) {
            (void)id;
            if (Conn *conn = connBySession(owner.session)) {
                ErrorPayload err;
                err.code =
                    static_cast<std::uint16_t>(reports.error().code);
                err.message = reports.error().message;
                sendEncoded(*conn, FrameType::error, [&](Bytes &out) {
                    encodeErrorInto(err, out);
                });
            }
        }
        if (tracer)
            tracer->endSpan(span, machine_.now());
        return;
    }

    for (const sea::ExecutionReport &report : *reports) {
        auto it = owners.find(report.requestId);
        if (it == owners.end())
            continue; // not from this cycle
        Conn *conn = connBySession(it->second.session);
        if (conn == nullptr) {
            ++stats_.reportsDropped; // owner hung up mid-cycle
            continue;
        }
        // The report bytes go straight from the service's encode into
        // the connection's tx buffer: one copy, no intermediate
        // ReportPayload or frame vector.
        const Bytes encoded = report.encode();
        sendEncoded(*conn, FrameType::report, [&](Bytes &out) {
            encodeReportInto(it->second.sequence, encoded, out);
        });
        ++stats_.reportsDelivered;
    }
    if (tracer)
        tracer->endSpan(span, machine_.now());
}

template <typename EncodePayload>
void
Gateway::sendEncoded(Conn &conn, FrameType type, EncodePayload &&encode)
{
    if (conn.state == Conn::State::closed)
        return;
    const std::size_t frame_start = beginFrame(type, conn.tx);
    encode(conn.tx);
    endFrame(conn.tx, frame_start);
    ++stats_.framesTx;
    stats_.bytesTx += conn.tx.size() - frame_start;
    flushTx(conn); // opportunistic; the rest goes out on POLLOUT
}

void
Gateway::refuse(Conn &conn, Errc code, const std::string &message)
{
    ErrorPayload err;
    err.code = static_cast<std::uint16_t>(code);
    err.message = message;
    sendEncoded(conn, FrameType::error,
                [&](Bytes &out) { encodeErrorInto(err, out); });
    conn.closeAfterFlush = true;
}

void
Gateway::flushTx(Conn &conn)
{
    while (conn.txPending() && conn.state != Conn::State::closed) {
        auto n = conn.stream.sendSome(conn.tx.data() + conn.txOff,
                                      conn.tx.size() - conn.txOff);
        if (!n) {
            closeConn(conn);
            return;
        }
        if (*n == 0)
            break; // socket buffer full; POLLOUT will resume
        conn.txOff += *n;
    }
    // Fully drained: reset the buffer, keeping its capacity, so the
    // next frame encodes into already-owned storage. Partially
    // drained: leave the bytes in place (consuming via txOff avoids
    // the per-send front-erase memmove the old path paid).
    if (conn.txOff == conn.tx.size()) {
        conn.tx.clear();
        conn.txOff = 0;
    }
}

void
Gateway::closeConn(Conn &conn)
{
    if (conn.state == Conn::State::closed)
        return;
    conn.stream.close();
    conn.state = Conn::State::closed;
    ++stats_.connectionsClosed;
}

void
Gateway::reapIdle(std::uint64_t now_ms)
{
    if (config_.idleTimeoutMillis == 0)
        return;
    for (auto &conn : conns_) {
        if (conn->state == Conn::State::closed)
            continue;
        if (now_ms - conn->lastActivityMs >= config_.idleTimeoutMillis) {
            ++stats_.idleDisconnects;
            closeConn(*conn);
        }
    }
}

bool
Gateway::anyTxPending() const
{
    for (const auto &conn : conns_) {
        if (conn->state != Conn::State::closed && conn->txPending())
            return true;
    }
    return false;
}

} // namespace mintcb::net
