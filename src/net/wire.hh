/**
 * @file
 * mintcb-gate wire protocol: length-prefixed binary framing.
 *
 * The paper's SEA model (Section 2, Fig. 1) places the party invoking a
 * PAL and the party verifying its attestation *remote* from the
 * platform; this module is the byte-level contract between them and the
 * gateway. Every message is one frame:
 *
 *     u32 magic   "MGW1" (0x4d475731)
 *     u16 version (wireVersion; mismatches are refused, never guessed)
 *     u16 type    (FrameType)
 *     u32 length  (payload bytes that follow; <= maxFramePayload)
 *     ...payload...
 *
 * Payload codecs reuse the TPM big-endian vocabulary (ByteWriter /
 * ByteReader), so every decode path returns a Result and a truncated,
 * oversized, or garbage frame surfaces as a clean protocol error --
 * never a crash, never a hang (tests/net/wire_test.cc fuzzes this).
 */

#ifndef MINTCB_NET_WIRE_HH
#define MINTCB_NET_WIRE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.hh"
#include "common/simtime.hh"
#include "common/types.hh"

namespace mintcb::net
{

/** Frame magic: "MGW1". */
inline constexpr std::uint32_t frameMagic = 0x4d475731;

/** Protocol revision carried in every frame header. */
inline constexpr std::uint16_t wireVersion = 1;

/** Fixed frame-header size on the wire. */
inline constexpr std::size_t frameHeaderBytes = 12;

/** Upper bound on one frame's payload (DoS guard: a malicious length
 *  field must not make the peer allocate unbounded memory). */
inline constexpr std::size_t maxFramePayload = 1u << 20;

/** Message kinds. The handshake is hello -> challenge -> auth ->
 *  authOk; everything after authOk is request traffic. */
enum class FrameType : std::uint16_t
{
    hello = 1,     //!< client -> gw: version + client nonce + name
    challenge = 2, //!< gw -> client: gateway attestation + gw nonce
    auth = 3,      //!< client -> gw: client attestation over gw nonce
    authOk = 4,    //!< gw -> client: session admitted
    submit = 5,    //!< client -> gw: one PalRequest by registered name
    report = 6,    //!< gw -> client: encoded ExecutionReport
    busy = 7,      //!< gw -> client: backpressure, retry later
    flush = 8,     //!< client -> gw: drain pending work now
    bye = 9,       //!< client -> gw: graceful close
    error = 10,    //!< gw -> client: protocol/handshake refusal
    /** @name Attested state migration (DESIGN.md section 15.6).
     * Two rounds after authOk: the target asks for a challenge, quotes
     * its store identity over sha256(nonce || its SRK), and receives
     * the re-sealed bundle. @{ */
    migrateBegin = 11,     //!< client -> gw: name the store to migrate
    migrateChallenge = 12, //!< gw -> client: fresh challenge nonce
    migrate = 13,          //!< client -> gw: nonce + SRK + attestation
    migrated = 14,         //!< gw -> client: MigrationBundle bytes
    /** @} */
};

/** Printable frame-type name (logs, tests). */
const char *frameTypeName(FrameType t);

/** One parsed frame. */
struct Frame
{
    FrameType type = FrameType::error;
    Bytes payload;
};

/** Serialize a frame (header + payload). */
Bytes encodeFrame(const Frame &frame);

/** @name Zero-copy framing.
 * The reactor hot path never builds a frame in a temporary vector: it
 * opens a frame directly inside the connection's reusable tx buffer,
 * appends the payload in place, and patches the length afterwards.
 * The bytes produced are identical to encodeFrame's. @{ */

/** Append a whole frame (header + payload) to @p out. */
void encodeFrameInto(const Frame &frame, Bytes &out);

/**
 * Open a frame of @p type at the end of @p out: appends the header
 * with a zero length field and returns the frame's start offset.
 * Append the payload bytes, then call endFrame with the offset.
 */
std::size_t beginFrame(FrameType type, Bytes &out);

/** Patch the length field of the frame opened at @p frame_start to
 *  cover everything appended since beginFrame. */
void endFrame(Bytes &out, std::size_t frame_start);

/** @} */

/**
 * Try to take one complete frame off the front of @p buf (a socket
 * receive buffer). Returns the frame (consuming its bytes), nullopt
 * when more bytes are needed, or an Error for a malformed header (bad
 * magic, wrong version, oversized length) -- the connection should be
 * dropped, since resynchronization inside a byte stream is impossible.
 */
Result<std::optional<Frame>> takeFrame(Bytes &buf);

/**
 * Offset-based sibling of takeFrame for the reactor: parses the frame
 * at @p offset in @p buf into @p out (reusing out.payload's capacity)
 * and advances @p offset past it, without erasing consumed bytes --
 * the caller compacts the buffer once per reactor pass instead of
 * paying a memmove per frame. Returns true when a frame was taken,
 * false when more bytes are needed, or the same Errors as takeFrame.
 */
Result<bool> takeFrameInto(const Bytes &buf, std::size_t &offset,
                           Frame &out);

/** @name Handshake payloads. @{ */

struct HelloPayload
{
    std::uint16_t version = wireVersion; //!< client's protocol revision
    Bytes nonce;                         //!< freshness for the gw quote
    std::string clientName;              //!< display label
};

struct ChallengePayload
{
    Bytes attestation; //!< sea::Attestation::encode over client nonce
    Bytes nonce;       //!< gateway challenge the client must quote
};

struct AuthPayload
{
    Bytes attestation; //!< client attestation over the gateway nonce
};

struct AuthOkPayload
{
    std::uint64_t sessionId = 0;
    std::string subject; //!< gateway platform label
};

/** @} */

/** @name Request traffic payloads. @{ */

/** A PalRequest as it travels the wire. PAL *behavior* cannot travel
 *  (it is native code); the client names a PAL the gateway has
 *  registered (net::PalRegistry) and supplies the input bytes. */
struct WireRequest
{
    /** Client-assigned total-order key. Within one gateway drain cycle
     *  requests are admitted to the service in ascending sequence
     *  order, which is what carries the PR 4 determinism guarantee
     *  across the network (DESIGN.md section 11.4). Must be unique
     *  among the requests of one drain cycle. */
    std::uint64_t sequence = 0;
    std::uint64_t affinity = 0;        //!< PalRequest::affinity
    std::int32_t priority = 0;
    bool wantQuote = false;
    std::uint32_t dataPages = 1;
    std::int64_t slicedComputeTicks = 0; //!< Duration::ticks()
    std::uint64_t deadlineTicks = 0;     //!< since epoch; 0 = none
    std::string palName;
    /** Execution backend to run on (PalRequest::backend). Empty defers
     *  to the gateway registry's default; unknown names are refused at
     *  submit, before the request consumes service resources. */
    std::string backend;
    Bytes input;
};

struct ReportPayload
{
    std::uint64_t sequence = 0;
    Bytes report; //!< sea::ExecutionReport::encode()
};

/** Why the gateway refused to admit a request right now. */
enum class BusyReason : std::uint16_t
{
    queueFull = 1,   //!< bounded in-flight queue at capacity
    rateLimited = 2, //!< per-client token bucket empty
};

struct BusyPayload
{
    std::uint64_t sequence = 0;
    BusyReason reason = BusyReason::queueFull;
    std::uint32_t retryAfterMillis = 0;
};

struct ErrorPayload
{
    std::uint16_t code = 0; //!< Errc cast to the wire
    std::string message;
};

/** @name Migration payloads. @{ */

struct MigrateBeginPayload
{
    std::string storeName; //!< which gateway-side store to migrate
};

struct MigrateChallengePayload
{
    Bytes nonce; //!< single-use challenge the target must quote over
};

struct MigratePayload
{
    std::string storeName;
    Bytes nonce;       //!< echo of the challenge
    Bytes targetSrk;   //!< RsaPublicKey::encode of the receiving SRK
    Bytes attestation; //!< sea::Attestation over the bound nonce
};

struct MigratedPayload
{
    Bytes bundle; //!< store::MigrationBundle::encode
};

/** @} */

/** @} */

/** @name Payload codecs (all decoders are total: any byte string in,
 *  clean Result out). Each encoder has an -Into sibling that appends
 *  to a caller-owned buffer (typically between beginFrame/endFrame);
 *  the Bytes-returning form wraps it, so both emit identical bytes. @{ */
Bytes encodeHello(const HelloPayload &p);
void encodeHelloInto(const HelloPayload &p, Bytes &out);
Result<HelloPayload> decodeHello(const Bytes &payload);

Bytes encodeChallenge(const ChallengePayload &p);
void encodeChallengeInto(const ChallengePayload &p, Bytes &out);
Result<ChallengePayload> decodeChallenge(const Bytes &payload);

Bytes encodeAuth(const AuthPayload &p);
void encodeAuthInto(const AuthPayload &p, Bytes &out);
Result<AuthPayload> decodeAuth(const Bytes &payload);

Bytes encodeAuthOk(const AuthOkPayload &p);
void encodeAuthOkInto(const AuthOkPayload &p, Bytes &out);
Result<AuthOkPayload> decodeAuthOk(const Bytes &payload);

Bytes encodeSubmit(const WireRequest &r);
void encodeSubmitInto(const WireRequest &r, Bytes &out);
Result<WireRequest> decodeSubmit(const Bytes &payload);

Bytes encodeReport(const ReportPayload &p);
void encodeReportInto(const ReportPayload &p, Bytes &out);
/** Zero-copy variant: append the payload without materializing a
 *  ReportPayload (the report bytes go straight from the service's
 *  encode to the tx buffer). */
void encodeReportInto(std::uint64_t sequence, const Bytes &report,
                      Bytes &out);
Result<ReportPayload> decodeReport(const Bytes &payload);

Bytes encodeBusy(const BusyPayload &p);
void encodeBusyInto(const BusyPayload &p, Bytes &out);
Result<BusyPayload> decodeBusy(const Bytes &payload);

Bytes encodeError(const ErrorPayload &p);
void encodeErrorInto(const ErrorPayload &p, Bytes &out);
Result<ErrorPayload> decodeError(const Bytes &payload);

Bytes encodeMigrateBegin(const MigrateBeginPayload &p);
void encodeMigrateBeginInto(const MigrateBeginPayload &p, Bytes &out);
Result<MigrateBeginPayload> decodeMigrateBegin(const Bytes &payload);

Bytes encodeMigrateChallenge(const MigrateChallengePayload &p);
void encodeMigrateChallengeInto(const MigrateChallengePayload &p,
                                Bytes &out);
Result<MigrateChallengePayload>
decodeMigrateChallenge(const Bytes &payload);

Bytes encodeMigrate(const MigratePayload &p);
void encodeMigrateInto(const MigratePayload &p, Bytes &out);
Result<MigratePayload> decodeMigrate(const Bytes &payload);

Bytes encodeMigrated(const MigratedPayload &p);
void encodeMigratedInto(const MigratedPayload &p, Bytes &out);
Result<MigratedPayload> decodeMigrated(const Bytes &payload);
/** @} */

/**
 * Scalar view of an encoded sea::ExecutionReport, parsed back out of
 * the wire bytes so a remote client can inspect the result without
 * linking the service layer's types. The raw bytes stay authoritative
 * (byte-identity checks compare them directly).
 */
struct ReportSummary
{
    std::uint64_t requestId = 0;
    std::string palName;
    std::string backend; //!< execution backend that produced it
    bool ok = true;
    std::uint16_t errorCode = 0;
    std::string errorMessage;
    Bytes output;
    Bytes palMeasurement;
    bool quoted = false;
    /** @name Canonical cross-architecture phases. @{ */
    Duration launch;
    Duration palCompute; //!< the compute phase
    Duration transition;
    Duration attestation;
    Duration teardown;
    /** @} */
    std::uint32_t sectionCount = 0; //!< capability sections present
    Duration queueWait;
    Duration total;
    std::uint64_t launches = 0;
    std::uint64_t yields = 0;
    std::uint32_t shard = 0;
    bool deadlineMet = true;
};

/** Parse the fields out of ExecutionReport::encode() bytes. */
Result<ReportSummary> summarizeReport(const Bytes &encoded_report);

} // namespace mintcb::net

#endif // MINTCB_NET_WIRE_HH
