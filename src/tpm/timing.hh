/**
 * @file
 * Per-vendor TPM latency models.
 *
 * The paper's central measurement (Section 4.3.3, Figure 3) is that v1.2
 * TPM operation latency varies wildly by vendor and is enormous in absolute
 * terms -- hundreds of milliseconds for the RSA-bearing operations. This
 * module encodes those measurements as a parameterized timing profile.
 *
 * Calibration sources (all from the paper):
 *  - Broadcom Seal = 20.01 ms at the PAL Gen payload and 11.39 ms at the
 *    PAL Use payload (Section 4.3.3) => seal is affine in payload size.
 *  - Infineon Unseal = 390.98 ms (Section 4.3.3).
 *  - (Broadcom Quote + Unseal) - (Infineon Quote + Unseal) = 1132 ms.
 *  - Infineon Seal - Broadcom Seal = 213 ms at the PAL Gen payload.
 *  - Broadcom is the slowest vendor for Quote and Unseal; Infineon has the
 *    best average across the five benchmarked operations.
 *  - Figure 2: PAL Gen ~= 200 ms total, PAL Use > 1 s on the HP dc5750.
 *  - Table 1: the Broadcom TPM stretches a 64 KB SKINIT to 177.52 ms by
 *    inserting LPC long wait cycles during TPM_HASH_DATA; the affine fit
 *    t(KB) = 0.90 ms + 2.7597 ms/KB reproduces every Table 1 cell.
 */

#ifndef MINTCB_TPM_TIMING_HH
#define MINTCB_TPM_TIMING_HH

#include <cstddef>
#include <string>

#include "common/rng.hh"
#include "common/simtime.hh"

namespace mintcb::tpm
{

/** The four physical TPM chips benchmarked in the paper, plus extremes. */
enum class TpmVendor
{
    atmelT60,   //!< Atmel v1.2 in the Lenovo T60 laptop
    broadcom,   //!< Broadcom v1.2 in the HP dc5750 (primary test machine)
    infineon,   //!< Infineon v1.2 in an AMD workstation
    atmelTep,   //!< Atmel v1.2 in the Intel TXT TEP (different model)
    ideal,      //!< zero-latency TPM (unit tests / limit studies)
};

/** Printable vendor name as used in Figure 3. */
const char *vendorName(TpmVendor v);

/**
 * Latency model for one TPM chip. All values are means; sampled latencies
 * get deterministic multiplicative Gaussian jitter to reproduce the error
 * bars in Figure 3.
 */
struct TpmTimingProfile
{
    TpmVendor vendor = TpmVendor::ideal;

    Duration extend;          //!< TPM_Extend
    Duration quote;           //!< TPM_Quote (AIK private-key signature)
    Duration unseal;          //!< TPM_Unseal (SRK private-key decrypt)
    Duration sealBase;        //!< TPM_Seal fixed cost
    Duration sealPerByte;     //!< TPM_Seal marginal cost per payload byte
    Duration getRandom128;    //!< TPM_GetRandom for 128 bytes
    Duration pcrRead;         //!< TPM_PCRRead

    /**
     * Extra LPC long-wait time this TPM inserts per byte streamed via
     * TPM_HASH_DATA during a late launch (Section 4.3.1: "The TPM slows
     * down SKINIT runtime by causing long wait cycles on the LPC bus").
     */
    Duration hashWaitPerByte;

    /** TPM_HASH_START + TPM_HASH_END long-wait overhead per late launch. */
    Duration hashStartStop;

    /** Relative standard deviation applied to sampled op latencies. */
    double jitterRel = 0.0;

    /** Mean TPM_Seal latency for a payload of @p bytes. */
    Duration
    seal(std::size_t bytes) const
    {
        return sealBase + sealPerByte * static_cast<double>(bytes);
    }

    /** Mean TPM_GetRandom latency for @p bytes (linear in 128 B units). */
    Duration
    getRandom(std::size_t bytes) const
    {
        return getRandom128 * (static_cast<double>(bytes) / 128.0);
    }

    /** Sample a concrete latency around @p mean using @p rng. */
    Duration sample(Duration mean, Rng &rng) const;

    /** The calibrated profile for @p vendor. */
    static TpmTimingProfile forVendor(TpmVendor vendor);

    /**
     * A copy of this profile with every latency divided by @p factor.
     * Used by the Section 5.7 ablation ("consider increasing the speed of
     * the TPM and the bus").
     */
    TpmTimingProfile scaled(double factor) const;
};

} // namespace mintcb::tpm

#endif // MINTCB_TPM_TIMING_HH
