/**
 * @file
 * TPM front-end implementation.
 */

#include "tpm/tpm.hh"

#include <string>

#include "common/bytebuf.hh"
#include "crypto/keycache.hh"
#include "crypto/sha1.hh"

namespace mintcb::tpm
{

Bytes
TpmQuote::signedPayload() const
{
    ByteWriter w;
    w.str("QUOT");
    w.u32(static_cast<std::uint32_t>(selection.size()));
    for (std::size_t i = 0; i < selection.size(); ++i) {
        w.u32(static_cast<std::uint32_t>(selection[i]));
        w.lengthPrefixed(values[i]);
    }
    w.lengthPrefixed(nonce);
    return w.take();
}

Status
verifyQuote(const crypto::RsaPublicKey &aik, const TpmQuote &quote,
            const Bytes &expected_nonce)
{
    if (quote.nonce != expected_nonce) {
        return Error(Errc::integrityFailure,
                     "quote nonce does not match the challenge "
                     "(stale or replayed quote)");
    }
    if (quote.selection.size() != quote.values.size()) {
        return Error(Errc::invalidArgument,
                     "malformed quote: " +
                         std::to_string(quote.selection.size()) +
                         " PCR indices but " +
                         std::to_string(quote.values.size()) +
                         " values");
    }
    if (!crypto::rsaVerifySha1(aik, quote.signedPayload(),
                               quote.signature)) {
        return Error(Errc::integrityFailure,
                     "quote signature does not verify under the "
                     "presented AIK");
    }
    return okStatus();
}

Tpm::Tpm(TpmVendor vendor, std::uint64_t seed)
    : profile_(TpmTimingProfile::forVendor(vendor)),
      srk_(crypto::cachedKey("tpm-srk-" + std::to_string(seed),
                             crypto::tpmKeyBits)),
      aik_(crypto::cachedKey("tpm-aik-" + std::to_string(seed),
                             crypto::tpmKeyBits)),
      rng_(0x74706d00 ^ seed)
{
}

void
Tpm::reboot()
{
    busyUntil_ = TimePoint();
    pcrs_.reboot();
    hashSequenceOpen_ = false;
    hashSeq_.reset();
    lockHolder_.reset();
    transportTickets_.clear();
}

void
Tpm::registerTransportTicket(const Bytes &key_digest)
{
    if (!hasTransportTicket(key_digest))
        transportTickets_.push_back(TransportTicket{key_digest, 0});
}

bool
Tpm::hasTransportTicket(const Bytes &key_digest) const
{
    for (const TransportTicket &t : transportTickets_) {
        if (t.keyDigest == key_digest)
            return true;
    }
    return false;
}

Result<std::uint64_t>
Tpm::advanceTransportTicketEpoch(const Bytes &key_digest)
{
    for (TransportTicket &t : transportTickets_) {
        if (t.keyDigest == key_digest)
            return ++t.epoch;
    }
    return Error(Errc::notFound,
                 "no resumption ticket for this session key");
}

void
Tpm::charge(Duration mean, const char *op)
{
    // The TPM is a single slow chip behind one LPC port: a command from
    // any CPU cannot start until the previous command (possibly issued
    // by a different CPU) completes. Serializing in virtual time models
    // the hardware-lock arbitration of Section 5.4.5.
    Timeline *clock = clock_ ? clock_ : &ownClock_;
    const TimePoint issued = clock->now();
    clock->syncTo(busyUntil_);
    const TimePoint start = clock->now();
    clock->advance(profile_.sample(mean, rng_));
    busyUntil_ = clock->now();
    if (observer_)
        observer_->onCommand(op ? op : "tpm", issued, start, busyUntil_);
}

Status
Tpm::requireHardware(Locality locality, const char *op) const
{
    if (locality != Locality::hardware) {
        ++stats_.deniedCommands;
        return Error(Errc::permissionDenied,
                     std::string(op) +
                         " requires the hardware locality; software "
                         "cannot invoke it");
    }
    return okStatus();
}

Result<PcrValue>
Tpm::pcrRead(std::size_t index)
{
    ++stats_.reads;
    charge(profile_.pcrRead, "tpm:pcr_read");
    return pcrs_.read(index);
}

Status
Tpm::pcrExtend(std::size_t index, const Bytes &digest)
{
    ++stats_.extends;
    charge(profile_.extend, "tpm:extend");
    return pcrs_.extend(index, digest);
}

Result<Bytes>
Tpm::getRandom(std::size_t bytes)
{
    ++stats_.getRandoms;
    charge(profile_.getRandom(bytes), "tpm:get_random");
    return rng_.bytes(bytes);
}

Result<SealedBlob>
Tpm::seal(const Bytes &payload, const std::vector<std::size_t> &selection)
{
    SealPolicy policy;
    for (std::size_t index : selection) {
        auto value = pcrs_.read(index);
        if (!value)
            return value.error();
        policy.push_back({static_cast<std::uint32_t>(index), *value});
    }
    return sealToPolicy(payload, policy);
}

Result<SealedBlob>
Tpm::sealToPolicy(const Bytes &payload, const SealPolicy &policy)
{
    for (const PcrBinding &b : policy) {
        if (!PcrBank::valid(b.index))
            return Error(Errc::invalidArgument, "policy PCR out of range");
        if (b.digestAtRelease.size() != crypto::sha1DigestSize) {
            return Error(Errc::invalidArgument,
                         "policy digest must be 20 bytes");
        }
    }
    ++stats_.seals;
    charge(profile_.seal(payload.size()), "tpm:seal");
    return sealBlob(srk_.pub, rng_, payload, policy);
}

Result<Bytes>
Tpm::unseal(const SealedBlob &blob)
{
    ++stats_.unseals;
    charge(profile_.unseal, "tpm:unseal");
    if (blob.sePcrBound) {
        return Error(Errc::failedPrecondition,
                     "blob is sePCR-bound; a v1.2 TPM cannot unseal it");
    }
    // Policy check: every bound PCR must currently hold the sealed value.
    for (const PcrBinding &b : blob.policy) {
        auto value = pcrs_.read(b.index);
        if (!value)
            return value.error();
        if (*value != b.digestAtRelease) {
            return Error(Errc::permissionDenied,
                         "wrong PCR: PCR " + std::to_string(b.index) +
                             " does not match the sealed policy");
        }
    }
    return unsealBlob(srk_, blob);
}

Result<Bytes>
Tpm::unsealRaw(const SealedBlob &blob) const
{
    return unsealBlob(srk_, blob);
}

Bytes
Tpm::aikSign(const Bytes &payload) const
{
    return crypto::rsaSignSha1(aik_, payload);
}

Result<TpmQuote>
Tpm::quote(const Bytes &nonce, const std::vector<std::size_t> &selection)
{
    ++stats_.quotes;
    charge(profile_.quote, "tpm:quote");
    TpmQuote q;
    q.selection = selection;
    for (std::size_t index : selection) {
        auto value = pcrs_.read(index);
        if (!value)
            return value.error();
        q.values.push_back(*value);
    }
    q.nonce = nonce;
    q.signature = crypto::rsaSignSha1(aik_, q.signedPayload());
    return q;
}

Result<std::uint32_t>
Tpm::counterCreate()
{
    // Real chips cap the counter count; four matches common parts.
    if (counters_.size() >= 4) {
        return Error(Errc::resourceExhausted,
                     "TPM monotonic counter slots exhausted");
    }
    charge(profile_.extend, "tpm:nv_write"); // NV-write-class cost
    counters_.push_back(0);
    return static_cast<std::uint32_t>(counters_.size() - 1);
}

Result<std::uint64_t>
Tpm::counterIncrement(std::uint32_t handle)
{
    if (handle >= counters_.size())
        return Error(Errc::notFound, "no such monotonic counter");
    charge(profile_.extend, "tpm:extend");
    return ++counters_[handle];
}

Result<std::uint64_t>
Tpm::counterRead(std::uint32_t handle) const
{
    if (handle >= counters_.size())
        return Error(Errc::notFound, "no such monotonic counter");
    return counters_[handle];
}

namespace
{

/** Shared PCR-gate check for NV accesses. */
Status
checkNvGate(const PcrBank &pcrs, const SealPolicy &policy)
{
    for (const PcrBinding &b : policy) {
        auto value = pcrs.read(b.index);
        if (!value)
            return value.error();
        if (*value != b.digestAtRelease) {
            return Error(Errc::permissionDenied,
                         "NV space gated on PCR " +
                             std::to_string(b.index) +
                             ", which does not match");
        }
    }
    return okStatus();
}

} // namespace

Result<std::uint32_t>
Tpm::nvDefine(std::size_t bytes,
              const std::vector<std::size_t> &pcr_selection)
{
    if (bytes == 0 || bytes > 4096) {
        return Error(Errc::invalidArgument,
                     "NV spaces are 1-4096 bytes on this chip");
    }
    if (nvSpaces_.size() >= 8) {
        return Error(Errc::resourceExhausted,
                     "NV index slots exhausted");
    }
    NvSpace space;
    space.size = bytes;
    for (std::size_t index : pcr_selection) {
        auto value = pcrs_.read(index);
        if (!value)
            return value.error();
        space.policy.push_back(
            {static_cast<std::uint32_t>(index), *value});
    }
    charge(profile_.extend, "tpm:nv_write"); // NV-write-class cost
    nvSpaces_.push_back(std::move(space));
    return static_cast<std::uint32_t>(nvSpaces_.size() - 1);
}

Status
Tpm::nvWrite(std::uint32_t index, const Bytes &data)
{
    if (index >= nvSpaces_.size())
        return Error(Errc::notFound, "no such NV space");
    NvSpace &space = nvSpaces_[index];
    if (data.size() > space.size)
        return Error(Errc::invalidArgument, "write exceeds NV space");
    if (auto s = checkNvGate(pcrs_, space.policy); !s.ok())
        return s;
    charge(profile_.extend, "tpm:extend");
    space.data = data;
    return okStatus();
}

namespace
{

/** Chip-NV image magic: "TNV1". */
constexpr std::uint32_t nvStateMagic = 0x544e5631;

} // namespace

Bytes
Tpm::exportNvState() const
{
    ByteWriter w;
    w.u32(nvStateMagic);
    w.u16(1); // layout version
    w.u32(static_cast<std::uint32_t>(counters_.size()));
    for (std::uint64_t value : counters_)
        w.u64(value);
    w.u32(static_cast<std::uint32_t>(nvSpaces_.size()));
    for (const NvSpace &space : nvSpaces_) {
        w.u64(space.size);
        w.u32(static_cast<std::uint32_t>(space.policy.size()));
        for (const PcrBinding &b : space.policy) {
            w.u32(b.index);
            w.lengthPrefixed(b.digestAtRelease);
        }
        w.lengthPrefixed(space.data);
    }
    return w.take();
}

Status
Tpm::importNvState(const Bytes &wire)
{
    if (!counters_.empty() || !nvSpaces_.empty()) {
        return Error(Errc::failedPrecondition,
                     "chip already holds NV state; import is a "
                     "cold-boot operation");
    }
    ByteReader r(wire);
    auto magic = r.u32();
    if (!magic)
        return magic.error();
    if (*magic != nvStateMagic)
        return Error(Errc::integrityFailure, "not a TNV1 NV image");
    auto version = r.u16();
    if (!version)
        return version.error();
    if (*version != 1)
        return Error(Errc::invalidArgument, "unknown NV image version");

    std::vector<std::uint64_t> counters;
    auto counterCount = r.u32();
    if (!counterCount)
        return counterCount.error();
    if (*counterCount > 4)
        return Error(Errc::integrityFailure, "NV image counter overflow");
    for (std::uint32_t i = 0; i < *counterCount; ++i) {
        auto value = r.u64();
        if (!value)
            return value.error();
        counters.push_back(*value);
    }

    std::vector<NvSpace> spaces;
    auto spaceCount = r.u32();
    if (!spaceCount)
        return spaceCount.error();
    if (*spaceCount > 8)
        return Error(Errc::integrityFailure, "NV image space overflow");
    for (std::uint32_t i = 0; i < *spaceCount; ++i) {
        NvSpace space;
        auto size = r.u64();
        if (!size)
            return size.error();
        space.size = static_cast<std::size_t>(*size);
        auto policyCount = r.u32();
        if (!policyCount)
            return policyCount.error();
        for (std::uint32_t j = 0; j < *policyCount; ++j) {
            auto index = r.u32();
            if (!index)
                return index.error();
            auto digest = r.lengthPrefixed();
            if (!digest)
                return digest.error();
            space.policy.push_back({*index, digest.take()});
        }
        auto data = r.lengthPrefixed();
        if (!data)
            return data.error();
        space.data = data.take();
        if (space.data.size() > space.size) {
            return Error(Errc::integrityFailure,
                         "NV image space data exceeds its size");
        }
        spaces.push_back(std::move(space));
    }
    if (!r.atEnd())
        return Error(Errc::integrityFailure, "trailing NV image bytes");

    counters_ = std::move(counters);
    nvSpaces_ = std::move(spaces);
    return okStatus();
}

Result<Bytes>
Tpm::nvRead(std::uint32_t index)
{
    if (index >= nvSpaces_.size())
        return Error(Errc::notFound, "no such NV space");
    NvSpace &space = nvSpaces_[index];
    if (auto s = checkNvGate(pcrs_, space.policy); !s.ok())
        return s.error();
    charge(profile_.pcrRead, "tpm:pcr_read");
    return space.data;
}

Status
Tpm::hashStart(Locality locality)
{
    if (auto s = requireHardware(locality, "TPM_HASH_START"); !s.ok())
        return s;
    ++stats_.hashSequences;
    charge(profile_.hashStartStop / 2, "tpm:hash_seq");
    hashSequenceOpen_ = true;
    hashSeq_.reset();
    // The late launch resets the dynamic PCRs to zero (Section 2.2.1).
    for (std::size_t i = firstDynamicPcr; i < pcrCount; ++i)
        pcrs_.resetDynamic(i);
    return okStatus();
}

Status
Tpm::hashData(const Bytes &chunk, Locality locality)
{
    if (auto s = requireHardware(locality, "TPM_HASH_DATA"); !s.ok())
        return s;
    if (!hashSequenceOpen_) {
        return Error(Errc::failedPrecondition,
                     "TPM_HASH_DATA outside a hash sequence");
    }
    // Long wait cycles on the LPC bus: the dominant SKINIT cost on the
    // HP dc5750 (Section 4.3.1).
    charge(profile_.hashWaitPerByte * static_cast<double>(chunk.size()),
           "tpm:hash_data");
    hashSeq_.update(chunk);
    return okStatus();
}

Status
Tpm::hashEnd(Locality locality)
{
    if (auto s = requireHardware(locality, "TPM_HASH_END"); !s.ok())
        return s;
    if (!hashSequenceOpen_) {
        return Error(Errc::failedPrecondition,
                     "TPM_HASH_END outside a hash sequence");
    }
    charge(profile_.hashStartStop / 2, "tpm:hash_seq");
    const auto digest = hashSeq_.finish();
    const Bytes measurement(digest.begin(), digest.end());
    hashSequenceOpen_ = false;
    hashSeq_.reset();
    return pcrs_.extend(dynamicLaunchPcr, measurement);
}

bool
Tpm::tryLock(CpuId cpu)
{
    if (lockHolder_ && *lockHolder_ != cpu)
        return false;
    lockHolder_ = cpu;
    return true;
}

Status
Tpm::unlock(CpuId cpu)
{
    if (!lockHolder_ || *lockHolder_ != cpu) {
        return Error(Errc::failedPrecondition,
                     "TPM lock not held by this CPU");
    }
    lockHolder_.reset();
    return okStatus();
}

} // namespace mintcb::tpm
