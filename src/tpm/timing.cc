/**
 * @file
 * Calibrated TPM vendor profiles.
 *
 * See the header comment for the calibration constraints. The concrete
 * numbers below satisfy every exact figure the paper states and every
 * ordering claim it makes; values the paper only shows graphically
 * (Figure 3 bar heights) are read off the figure.
 */

#include "tpm/timing.hh"

#include <algorithm>

namespace mintcb::tpm
{

const char *
vendorName(TpmVendor v)
{
    switch (v) {
      case TpmVendor::atmelT60:
        return "T60 Atmel";
      case TpmVendor::broadcom:
        return "Broadcom";
      case TpmVendor::infineon:
        return "Infineon";
      case TpmVendor::atmelTep:
        return "TEP Atmel";
      case TpmVendor::ideal:
        return "Ideal";
    }
    return "unknown";
}

Duration
TpmTimingProfile::sample(Duration mean, Rng &rng) const
{
    if (jitterRel <= 0.0 || mean == Duration::zero())
        return mean;
    const double factor = 1.0 + jitterRel * rng.nextGaussian();
    // Latencies cannot be negative; clamp extreme draws.
    return mean * std::max(factor, 0.05);
}

TpmTimingProfile
TpmTimingProfile::forVendor(TpmVendor vendor)
{
    TpmTimingProfile p;
    p.vendor = vendor;
    p.jitterRel = 0.015;
    // Seal's marginal per-byte cost is bus/hash bound and vendor
    // independent; calibrated from Broadcom's 11.39 ms (128 B payload,
    // PAL Use) vs 20.01 ms (416 B payload, PAL Gen) pair.
    p.sealPerByte = Duration::millis(8.62 / 288.0);

    switch (vendor) {
      case TpmVendor::atmelT60:
        p.extend = Duration::millis(12.0);
        p.quote = Duration::millis(795.0);
        p.unseal = Duration::millis(766.0);
        p.sealBase = Duration::millis(135.16);   // 139 ms at 128 B
        p.getRandom128 = Duration::millis(61.0);
        p.pcrRead = Duration::millis(6.0);
        p.hashWaitPerByte = Duration::micros(2.4);
        p.hashStartStop = Duration::millis(0.85);
        break;
      case TpmVendor::broadcom:
        p.extend = Duration::millis(1.8);
        p.quote = Duration::millis(869.0);
        p.unseal = Duration::millis(900.0);
        p.sealBase = Duration::millis(7.559);    // 11.39 ms at 128 B
        p.getRandom128 = Duration::millis(1.9);
        p.pcrRead = Duration::millis(1.2);
        // Table 1 affine fit: 2.7597 ms/KB total minus the raw LPC
        // transfer cost of 0.1378 ms/KB leaves the TPM-induced wait.
        p.hashWaitPerByte = Duration::millis((2.7597 - 0.1378) / 1024.0);
        p.hashStartStop = Duration::millis(0.90);
        break;
      case TpmVendor::infineon:
        p.extend = Duration::millis(11.0);
        p.quote = Duration::millis(246.0);
        p.unseal = Duration::millis(390.98);
        p.sealBase = Duration::millis(220.56);   // 233.01 ms at 416 B
        p.getRandom128 = Duration::millis(35.0);
        p.pcrRead = Duration::millis(5.0);
        p.hashWaitPerByte = Duration::micros(2.1);
        p.hashStartStop = Duration::millis(0.80);
        break;
      case TpmVendor::atmelTep:
        p.extend = Duration::millis(2.5);
        p.quote = Duration::millis(732.0);
        p.unseal = Duration::millis(837.0);
        p.sealBase = Duration::millis(190.17);   // 194 ms at 128 B
        p.getRandom128 = Duration::millis(24.0);
        p.pcrRead = Duration::millis(8.0);
        // Calibrated so SENTER(0 KB) = 26.39 ms on the Intel TEP after
        // accounting for ACMod signature verification, the PCR 18 extend,
        // and hash-sequence bookkeeping (Table 1).
        p.hashWaitPerByte = Duration::micros(1.979);
        p.hashStartStop = Duration::millis(0.70);
        break;
      case TpmVendor::ideal:
        // Everything zero: pure functional TPM for unit tests.
        p.jitterRel = 0.0;
        p.sealPerByte = Duration::zero();
        break;
    }
    return p;
}

TpmTimingProfile
TpmTimingProfile::scaled(double factor) const
{
    TpmTimingProfile p = *this;
    const double inv = 1.0 / factor;
    p.extend = p.extend * inv;
    p.quote = p.quote * inv;
    p.unseal = p.unseal * inv;
    p.sealBase = p.sealBase * inv;
    p.sealPerByte = p.sealPerByte * inv;
    p.getRandom128 = p.getRandom128 * inv;
    p.pcrRead = p.pcrRead * inv;
    p.hashWaitPerByte = p.hashWaitPerByte * inv;
    p.hashStartStop = p.hashStartStop * inv;
    return p;
}

} // namespace mintcb::tpm
