/**
 * @file
 * PCR bank implementation.
 */

#include "tpm/pcr.hh"

#include "common/bytebuf.hh"
#include "crypto/sha1.hh"

namespace mintcb::tpm
{

void
PcrBank::reboot()
{
    for (std::size_t i = 0; i < pcrCount; ++i) {
        const std::uint8_t fill = dynamic(i) ? 0xff : 0x00;
        values_[i].assign(crypto::sha1DigestSize, fill);
    }
}

Result<PcrValue>
PcrBank::read(std::size_t index) const
{
    if (!valid(index))
        return Error(Errc::invalidArgument, "PCR index out of range");
    return values_[index];
}

Status
PcrBank::extend(std::size_t index, const Bytes &measurement)
{
    if (!valid(index))
        return Error(Errc::invalidArgument, "PCR index out of range");
    if (measurement.size() != crypto::sha1DigestSize) {
        return Error(Errc::invalidArgument,
                     "PCR extend requires a 20-byte SHA-1 digest");
    }
    // v_{t+1} = H(v_t || m)  (Section 2.1.1), streamed through the
    // incremental context so the extend never materializes v_t || m.
    crypto::Sha1 ctx;
    ctx.update(values_[index]);
    ctx.update(measurement);
    const auto digest = ctx.finish();
    values_[index].assign(digest.begin(), digest.end());
    return okStatus();
}

Status
PcrBank::resetDynamic(std::size_t index)
{
    if (!valid(index))
        return Error(Errc::invalidArgument, "PCR index out of range");
    if (!dynamic(index)) {
        return Error(Errc::permissionDenied,
                     "only PCRs 17-23 are dynamically resettable");
    }
    values_[index].assign(crypto::sha1DigestSize, 0x00);
    return okStatus();
}

Result<Bytes>
PcrBank::composite(const std::vector<std::size_t> &selection) const
{
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(selection.size()));
    for (std::size_t index : selection) {
        auto value = read(index);
        if (!value)
            return value.error();
        w.u32(static_cast<std::uint32_t>(index));
        w.raw(*value);
    }
    return crypto::Sha1::digestBytes(w.bytes());
}

} // namespace mintcb::tpm
