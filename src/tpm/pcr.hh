/**
 * @file
 * Platform Configuration Register bank (TCG TPM v1.2 semantics).
 *
 * The paper relies on three PCR facts (Section 2.1.3):
 *  - static PCRs (0-16) can only be reset by a platform reboot;
 *  - dynamic PCRs (17-23) reset to -1 (all 0xff) on reboot so a verifier
 *    can distinguish "rebooted" from "dynamically reset";
 *  - only a hardware command issued by the CPU during a late launch can
 *    reset PCR 17 to zero -- software never can.
 */

#ifndef MINTCB_TPM_PCR_HH
#define MINTCB_TPM_PCR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/result.hh"
#include "common/types.hh"

namespace mintcb::tpm
{

/** Number of PCRs in a v1.2 TPM. */
inline constexpr std::size_t pcrCount = 24;

/** First dynamically resettable PCR. */
inline constexpr std::size_t firstDynamicPcr = 17;

/** PCR that records the late-launched code's measurement. */
inline constexpr std::size_t dynamicLaunchPcr = 17;

/** PCR that records the MLE measurement on Intel TXT (extended by the
 *  ACMod rather than by hardware). */
inline constexpr std::size_t intelMlePcr = 18;

/** A PCR value: one SHA-1 digest. */
using PcrValue = Bytes; // always 20 bytes

/** The 24-register PCR bank with v1.2 reset semantics. */
class PcrBank
{
  public:
    PcrBank() { reboot(); }

    /** Is @p index a valid PCR number? */
    static bool
    valid(std::size_t index)
    {
        return index < pcrCount;
    }

    /** Is @p index one of the dynamic (resettable) PCRs 17-23? */
    static bool
    dynamic(std::size_t index)
    {
        return index >= firstDynamicPcr && index < pcrCount;
    }

    /** Platform reset: static PCRs to 0, dynamic PCRs to -1 (all 0xff). */
    void reboot();

    /** Current value of a PCR. */
    Result<PcrValue> read(std::size_t index) const;

    /** Extend: v <- SHA1(v || measurement). @p measurement must be a
     *  20-byte digest. */
    Status extend(std::size_t index, const Bytes &measurement);

    /**
     * Reset a dynamic PCR to zero. The *caller* (the Tpm front end) is
     * responsible for enforcing that only the hardware late-launch path
     * reaches here; the bank itself only checks that the PCR is dynamic.
     */
    Status resetDynamic(std::size_t index);

    /**
     * Composite digest over a selection of PCRs, as signed by TPM_Quote:
     * SHA1(count || index_0 || value_0 || ... ).
     */
    Result<Bytes> composite(const std::vector<std::size_t> &selection) const;

  private:
    std::array<PcrValue, pcrCount> values_;
};

} // namespace mintcb::tpm

#endif // MINTCB_TPM_PCR_HH
