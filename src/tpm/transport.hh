/**
 * @file
 * TPM secure transport sessions.
 *
 * Section 3.3: "the south bridge is not included in the TCB since the
 * TPM is capable of creating a secure channel to the PAL (by engaging in
 * secure transport sessions)." The LPC bus and everything routing it are
 * untrusted; the PAL establishes a session key under the TPM's SRK and
 * wraps commands with encryption + a rolling-nonce MAC, so an on-path
 * adversary can neither read nor undetectably modify nor replay TPM
 * traffic.
 */

#ifndef MINTCB_TPM_TRANSPORT_HH
#define MINTCB_TPM_TRANSPORT_HH

#include <cstdint>

#include "common/result.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "tpm/tpm.hh"

namespace mintcb::tpm
{

/** Commands tunneled through a transport session. */
enum class TransportOp : std::uint8_t
{
    pcrRead = 1,
    pcrExtend = 2,
    getRandom = 3,
};

/** A wrapped (encrypted + MACed) message on the untrusted bus. */
struct WrappedMessage
{
    Bytes ciphertext;
    Bytes mac;

    Bytes encode() const;
    static Result<WrappedMessage> decode(const Bytes &wire);
};

/**
 * The PAL-side endpoint. establish() invents a session key, encrypts it
 * to the TPM's SRK, and hands the opaque envelope to TpmTransportServer
 * (travelling over the untrusted bus).
 */
class TransportClient
{
  public:
    /** Begin a session; returns the key-exchange envelope to deliver. */
    static Result<TransportClient> establish(
        const crypto::RsaPublicKey &srk, Rng &rng, Bytes &envelope_out);

    /** Wrap a command for the wire. */
    WrappedMessage wrapCommand(TransportOp op, std::uint32_t pcr,
                               const Bytes &payload);

    /** Unwrap and authenticate the TPM's response. */
    Result<Bytes> unwrapResponse(const WrappedMessage &message);

  private:
    TransportClient(Bytes key) : key_(std::move(key)) {}

    Bytes key_;
    std::uint64_t sendCounter_ = 0;
    std::uint64_t recvCounter_ = 0;
};

/** The TPM-side endpoint, dispatching into a Tpm instance. */
class TpmTransportServer
{
  public:
    explicit TpmTransportServer(Tpm &tpm) : tpm_(tpm) {}

    /** Accept a key-exchange envelope (SRK-encrypted session key). */
    Status accept(const Bytes &envelope);

    /** Process one wrapped command; returns the wrapped response.
     *  Tampered or replayed messages yield integrityFailure and no TPM
     *  state change. */
    Result<WrappedMessage> execute(const WrappedMessage &message);

  private:
    Tpm &tpm_;
    Bytes key_;
    std::uint64_t recvCounter_ = 0;
    std::uint64_t sendCounter_ = 0;
};

} // namespace mintcb::tpm

#endif // MINTCB_TPM_TRANSPORT_HH
