/**
 * @file
 * TPM secure transport sessions.
 *
 * Section 3.3: "the south bridge is not included in the TCB since the
 * TPM is capable of creating a secure channel to the PAL (by engaging in
 * secure transport sessions)." The LPC bus and everything routing it are
 * untrusted; the PAL establishes a session key under the TPM's SRK and
 * wraps commands with encryption + a rolling-nonce MAC, so an on-path
 * adversary can neither read nor undetectably modify nor replay TPM
 * traffic.
 *
 * Two throughput features serve the multi-PAL execution service:
 *
 *  - **Command pipelining**: TransportOp::batch carries many commands in
 *    one wrapped exchange, so a slice's worth of TPM_Extend traffic pays
 *    the wrap/MAC and bus round-trip once instead of per command.
 *  - **Session resumption**: the full key exchange costs an in-TPM RSA
 *    private-key operation (hundreds of ms of simulated time). Once a
 *    session has been accepted, the TPM remembers a ticket (a digest of
 *    the session key), and a later acceptResumed() with the same key
 *    skips the RSA work -- the model for reusing sealed-state sessions
 *    across PAL launches. Every resumption advances the ticket's epoch
 *    and both endpoints rekey to HMAC(key, epoch), so traffic recorded
 *    in an earlier session life cannot be replayed after the message
 *    counters restart.
 */

#ifndef MINTCB_TPM_TRANSPORT_HH
#define MINTCB_TPM_TRANSPORT_HH

#include <cstdint>
#include <vector>

#include "common/counters.hh"
#include "common/result.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "tpm/tpm.hh"

namespace mintcb::tpm
{

/** Commands tunneled through a transport session. */
enum class TransportOp : std::uint8_t
{
    pcrRead = 1,
    pcrExtend = 2,
    getRandom = 3,
    batch = 4, //!< container: many commands in one wrapped exchange
};

/** One command to tunnel (the batchable unit). */
struct TransportCommand
{
    TransportOp op = TransportOp::pcrRead;
    std::uint32_t pcr = 0; //!< PCR index (for getRandom: byte count)
    Bytes payload;
};

/** Outcome of one command inside a batch exchange. */
struct TransportReply
{
    Errc status = Errc::ok;
    Bytes payload;

    bool ok() const { return status == Errc::ok; }
};

/** A wrapped (encrypted + MACed) message on the untrusted bus. */
struct WrappedMessage
{
    Bytes ciphertext;
    Bytes mac;

    Bytes encode() const;
    static Result<WrappedMessage> decode(const Bytes &wire);
};

/**
 * The PAL-side endpoint. open() invents a session key, encrypts it to
 * the TPM's SRK, and hands back the opaque envelope to deliver to
 * TpmTransportServer over the untrusted bus.
 */
class TransportClient
{
  public:
    /** Result of open()/openWithKey(): endpoint + key-exchange envelope
     *  (defined after the class body). */
    struct Opened;

    /** Begin a session under a fresh random key. */
    static Result<Opened> open(const crypto::RsaPublicKey &srk, Rng &rng);

    /** Begin a session under a caller-chosen 32-byte key (the service
     *  keeps the key it drew from the machine's seeded RNG so it can
     *  resume later). */
    static Result<Opened> openWithKey(const crypto::RsaPublicKey &srk,
                                      Rng &rng, const Bytes &key);

    /** Resume with a key the TPM already holds a ticket for, at the
     *  epoch acceptResumed() returned; pairs with
     *  TpmTransportServer::acceptResumed(). No RSA work on either side. */
    static Result<TransportClient> resume(const Bytes &key,
                                          std::uint64_t epoch);

    /** @deprecated Out-parameter variant kept for existing callers; new
     *  code should use open(). */
    static Result<TransportClient> establish(
        const crypto::RsaPublicKey &srk, Rng &rng, Bytes &envelope_out);

    /** Wrap a single command for the wire. */
    WrappedMessage wrapCommand(TransportOp op, std::uint32_t pcr,
                               const Bytes &payload);

    /** Wrap many commands into one exchange (command pipelining). */
    WrappedMessage wrapBatch(const std::vector<TransportCommand> &commands);

    /** Unwrap and authenticate the TPM's response. */
    Result<Bytes> unwrapResponse(const WrappedMessage &message);

    /** Unwrap a batch response into per-command replies (a failed
     *  sub-command reports its Errc without failing the exchange). */
    Result<std::vector<TransportReply>> unwrapBatchResponse(
        const WrappedMessage &message);

  private:
    explicit TransportClient(Bytes key) : key_(std::move(key)) {}

    Bytes key_;
    std::uint64_t sendCounter_ = 0;
    std::uint64_t recvCounter_ = 0;
};

/** A freshly opened session: the endpoint plus the envelope to deliver. */
struct TransportClient::Opened
{
    TransportClient client;
    Bytes envelope; //!< SRK-encrypted session key for the server
};

/** The TPM-side endpoint, dispatching into a Tpm instance. */
class TpmTransportServer
{
  public:
    explicit TpmTransportServer(Tpm &tpm) : tpm_(tpm) {}

    /** Accept a key-exchange envelope (SRK-encrypted session key).
     *  Charges the in-TPM RSA decrypt and registers a resumption ticket
     *  so the same key can later be accepted without RSA work. */
    Status accept(const Bytes &envelope);

    /** Resume a session from a 32-byte key the TPM holds a ticket for.
     *  Charges only a cheap command's latency. Advances the ticket's
     *  epoch, rekeys the session, and returns the new epoch (the public
     *  value the client needs for TransportClient::resume). */
    Result<std::uint64_t> acceptResumed(const Bytes &key);

    /** Process one wrapped exchange (single command or batch); returns
     *  the wrapped response. Tampered or replayed messages yield
     *  integrityFailure and no TPM state change. */
    Result<WrappedMessage> execute(const WrappedMessage &message);

    /** Traffic counters (pipelining / resumption observability). */
    const TransportStats &stats() const { return stats_; }

  private:
    Result<Bytes> executeOne(TransportOp op, std::uint32_t pcr,
                             const Bytes &payload);

    Tpm &tpm_;
    Bytes key_;
    std::uint64_t recvCounter_ = 0;
    std::uint64_t sendCounter_ = 0;
    TransportStats stats_;
};

} // namespace mintcb::tpm

#endif // MINTCB_TPM_TRANSPORT_HH
