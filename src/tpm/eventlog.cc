/**
 * @file
 * Event log implementation.
 */

#include "tpm/eventlog.hh"

#include "common/bytebuf.hh"
#include "crypto/sha1.hh"

namespace mintcb::tpm
{

Bytes
MeasuredEvent::encode() const
{
    ByteWriter w;
    w.u32(pcrIndex);
    w.str(description);
    w.lengthPrefixed(measurement);
    return w.take();
}

std::map<std::size_t, Bytes>
EventLog::replay() const
{
    std::map<std::size_t, Bytes> pcrs;
    for (const MeasuredEvent &e : events_) {
        Bytes &value = pcrs[e.pcrIndex];
        if (value.empty())
            value.assign(crypto::sha1DigestSize, 0x00); // boot value
        ByteWriter w;
        w.raw(value);
        w.raw(e.measurement);
        value = crypto::Sha1::digestBytes(w.bytes());
    }
    return pcrs;
}

Bytes
EventLog::encode() const
{
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(events_.size()));
    for (const MeasuredEvent &e : events_)
        w.lengthPrefixed(e.encode());
    return w.take();
}

Result<EventLog>
EventLog::decode(const Bytes &wire)
{
    ByteReader r(wire);
    auto count = r.u32();
    if (!count)
        return count.error();
    EventLog log;
    for (std::uint32_t i = 0; i < *count; ++i) {
        auto entry = r.lengthPrefixed();
        if (!entry)
            return entry.error();
        ByteReader er(*entry);
        MeasuredEvent e;
        auto index = er.u32();
        if (!index)
            return index.error();
        auto desc = er.str();
        if (!desc)
            return desc.error();
        auto m = er.lengthPrefixed();
        if (!m)
            return m.error();
        e.pcrIndex = *index;
        e.description = desc.take();
        e.measurement = m.take();
        log.append(std::move(e));
    }
    if (!r.atEnd())
        return Error(Errc::integrityFailure, "trailing event-log bytes");
    return log;
}

} // namespace mintcb::tpm
