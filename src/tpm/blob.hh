/**
 * @file
 * Sealed-storage blob format.
 *
 * TPM_Seal binds data to PCR values: "The TPM will only unseal (decrypt)
 * the data when the PCRs contain the same values specified by the seal
 * command" (Section 2.1.2). mintcb implements sealing for real:
 *
 *   - a fresh 32-byte inner key is RSA-encrypted under the Storage Root
 *     Key (public operation => seal is cheap, matching the paper);
 *   - the payload is stream-encrypted with an HMAC-SHA256 keystream;
 *   - the PCR policy travels in the clear but is bound by an HMAC trailer;
 *   - unseal performs the SRK *private* operation (the paper's dominant
 *     unseal cost) and releases the payload only if the policy PCRs match.
 */

#ifndef MINTCB_TPM_BLOB_HH
#define MINTCB_TPM_BLOB_HH

#include <cstdint>
#include <vector>

#include "common/result.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "crypto/rsa.hh"

namespace mintcb::tpm
{

/** One entry of a seal-time PCR policy. */
struct PcrBinding
{
    std::uint32_t index;  //!< PCR number (or sePCR handle, Section 5.4.4)
    Bytes digestAtRelease; //!< required 20-byte PCR value at unseal time

    bool
    operator==(const PcrBinding &o) const
    {
        return index == o.index && digestAtRelease == o.digestAtRelease;
    }
};

/** PCR policy: every listed PCR must hold the listed value to unseal. */
using SealPolicy = std::vector<PcrBinding>;

/** An encrypted, integrity-protected, PCR-bound data blob. */
struct SealedBlob
{
    /** Set when the policy indices name sePCR handles instead of ordinary
     *  PCRs (recommended-architecture sealing, Section 5.4.4). */
    bool sePcrBound = false;

    Bytes encryptedInnerKey; //!< RSA ciphertext under the SRK
    SealPolicy policy;       //!< in the clear, MAC-protected
    Bytes ciphertext;        //!< stream-encrypted payload
    Bytes mac;               //!< HMAC-SHA256 over all of the above

    /** Total wire size, which drives the size-dependent seal latency. */
    std::size_t wireSize() const { return encode().size(); }

    Bytes encode() const;
    static Result<SealedBlob> decode(const Bytes &wire);
};

/**
 * Construct a sealed blob. @p rng supplies the inner key. This is the
 * crypto core of TPM_Seal; the Tpm front end adds timing and policy
 * capture.
 */
SealedBlob sealBlob(const crypto::RsaPublicKey &srk, Rng &rng,
                    const Bytes &payload, const SealPolicy &policy,
                    bool se_pcr_bound = false);

/**
 * Recover the payload of @p blob using the SRK private key. Fails with
 * integrityFailure if the blob was tampered with. PCR policy checking is
 * the Tpm front end's job (it owns the PCR bank); this function returns
 * the payload and lets the caller enforce policy.
 */
Result<Bytes> unsealBlob(const crypto::RsaPrivateKey &srk,
                         const SealedBlob &blob);

/**
 * Why an unseal (Tpm::unseal / unsealBlob / SealedBlob::decode) failed.
 * Mirrors the verifyQuote bool->Status split: every refusal carries a
 * structured diagnosis a caller can branch on, so "the OS moved my
 * PCRs" (recoverable by relaunching the PAL), "the disk fed me garbage"
 * (restore from a replica), and "someone tampered with the ciphertext"
 * (raise the alarm) stop collapsing into one opaque error.
 */
enum class UnsealFault
{
    none,          //!< the error is not an unseal diagnosis
    wrongPcr,      //!< a policy PCR does not hold the sealed value
    corruptBlob,   //!< structural damage: bad magic, truncation,
                   //!< or an inner key that no longer decrypts
    badMac,        //!< well-formed blob, but the HMAC trailer mismatches
    sePcrBound,    //!< blob requires the sePCR extension to unseal
};

/** Printable diagnosis name (logs, tests). */
const char *unsealFaultName(UnsealFault fault);

/**
 * Classify an unseal error into its fault category. Errors produced by
 * anything other than the unseal path map to UnsealFault::none.
 */
UnsealFault classifyUnsealError(const Error &error);

} // namespace mintcb::tpm

#endif // MINTCB_TPM_BLOB_HH
