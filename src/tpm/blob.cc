/**
 * @file
 * Sealed-blob crypto implementation.
 */

#include "tpm/blob.hh"

#include "common/bytebuf.hh"
#include "crypto/hmac.hh"

namespace mintcb::tpm
{

namespace
{

constexpr std::uint32_t blobMagic = 0x5345414c; // "SEAL"

/** Keystream block i = HMAC-SHA256(inner_key, "stream" || i). */
Bytes
xorStream(const Bytes &inner_key, const Bytes &input)
{
    Bytes out(input.size());
    Bytes block;
    for (std::size_t i = 0; i < input.size(); ++i) {
        if (i % 32 == 0) {
            ByteWriter w;
            w.str("stream");
            w.u64(i / 32);
            block = crypto::hmacSha256(inner_key, w.bytes());
        }
        out[i] = input[i] ^ block[i % 32];
    }
    return out;
}

/** The MAC covers every field except the MAC itself. */
Bytes
macInput(const SealedBlob &blob)
{
    ByteWriter w;
    w.u8(blob.sePcrBound ? 1 : 0);
    w.lengthPrefixed(blob.encryptedInnerKey);
    w.u32(static_cast<std::uint32_t>(blob.policy.size()));
    for (const PcrBinding &b : blob.policy) {
        w.u32(b.index);
        w.lengthPrefixed(b.digestAtRelease);
    }
    w.lengthPrefixed(blob.ciphertext);
    return w.take();
}

} // namespace

Bytes
SealedBlob::encode() const
{
    ByteWriter w;
    w.u32(blobMagic);
    w.raw(macInput(*this));
    w.lengthPrefixed(mac);
    return w.take();
}

Result<SealedBlob>
SealedBlob::decode(const Bytes &wire)
{
    ByteReader r(wire);
    auto magic = r.u32();
    if (!magic)
        return magic.error();
    if (*magic != blobMagic)
        return Error(Errc::integrityFailure, "corrupt blob: not a sealed blob");

    SealedBlob blob;
    auto bound = r.u8();
    if (!bound)
        return bound.error();
    blob.sePcrBound = *bound != 0;

    auto key = r.lengthPrefixed();
    if (!key)
        return key.error();
    blob.encryptedInnerKey = key.take();

    auto count = r.u32();
    if (!count)
        return count.error();
    for (std::uint32_t i = 0; i < *count; ++i) {
        auto index = r.u32();
        if (!index)
            return index.error();
        auto digest = r.lengthPrefixed();
        if (!digest)
            return digest.error();
        blob.policy.push_back({*index, digest.take()});
    }

    auto ct = r.lengthPrefixed();
    if (!ct)
        return ct.error();
    blob.ciphertext = ct.take();

    auto mac = r.lengthPrefixed();
    if (!mac)
        return mac.error();
    blob.mac = mac.take();

    if (!r.atEnd()) {
        return Error(Errc::integrityFailure,
                     "corrupt blob: trailing bytes in blob");
    }
    return blob;
}

SealedBlob
sealBlob(const crypto::RsaPublicKey &srk, Rng &rng, const Bytes &payload,
         const SealPolicy &policy, bool se_pcr_bound)
{
    SealedBlob blob;
    blob.sePcrBound = se_pcr_bound;
    blob.policy = policy;

    const Bytes inner_key = rng.bytes(32);
    auto encrypted = crypto::rsaEncrypt(srk, rng, inner_key);
    // The inner key always fits a >= 512-bit SRK modulus.
    blob.encryptedInnerKey = encrypted.take();
    blob.ciphertext = xorStream(inner_key, payload);
    blob.mac = crypto::hmacSha256(inner_key, macInput(blob));
    return blob;
}

Result<Bytes>
unsealBlob(const crypto::RsaPrivateKey &srk, const SealedBlob &blob)
{
    auto inner_key = crypto::rsaDecrypt(srk, blob.encryptedInnerKey);
    if (!inner_key) {
        return Error(Errc::integrityFailure,
                     "corrupt blob: sealed inner key does not decrypt");
    }
    const Bytes expected_mac = crypto::hmacSha256(*inner_key,
                                                  macInput(blob));
    if (!crypto::constantTimeEqual(expected_mac, blob.mac)) {
        return Error(Errc::integrityFailure,
                     "bad MAC: sealed blob MAC mismatch");
    }
    return xorStream(*inner_key, blob.ciphertext);
}

const char *
unsealFaultName(UnsealFault fault)
{
    switch (fault) {
      case UnsealFault::none:
        return "none";
      case UnsealFault::wrongPcr:
        return "wrongPcr";
      case UnsealFault::corruptBlob:
        return "corruptBlob";
      case UnsealFault::badMac:
        return "badMac";
      case UnsealFault::sePcrBound:
        return "sePcrBound";
    }
    return "none";
}

UnsealFault
classifyUnsealError(const Error &error)
{
    auto startsWith = [&](const char *prefix) {
        return error.message.rfind(prefix, 0) == 0;
    };
    switch (error.code) {
      case Errc::permissionDenied:
        return startsWith("wrong PCR") ? UnsealFault::wrongPcr
                                       : UnsealFault::none;
      case Errc::failedPrecondition:
        return startsWith("blob is sePCR-bound")
                   ? UnsealFault::sePcrBound
                   : UnsealFault::none;
      case Errc::integrityFailure:
        if (startsWith("bad MAC"))
            return UnsealFault::badMac;
        // Structural damage: our own "corrupt blob:" diagnoses plus
        // the ByteReader truncation errors decode() propagates.
        if (startsWith("corrupt blob") || startsWith("truncated blob"))
            return UnsealFault::corruptBlob;
        return UnsealFault::none;
      default:
        return UnsealFault::none;
    }
}

} // namespace mintcb::tpm
