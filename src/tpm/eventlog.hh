/**
 * @file
 * Measured boot: the stored measurement log and its replay.
 *
 * Section 2.1.1: "The platform state is detailed in a log of software
 * events ... Each event is reduced to a measurement ... The verifier ...
 * checks that the PCR values correspond to the events in the log by
 * hashing the log entries and comparing the results to the PCR values in
 * the attestation. ... As originally envisioned, the verifier must
 * assess a list of all software loaded since boot time (including the
 * OS)". mintcb implements that pre-SEA world so the TCB-size contrast
 * the paper draws is demonstrable.
 */

#ifndef MINTCB_TPM_EVENTLOG_HH
#define MINTCB_TPM_EVENTLOG_HH

#include <map>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/types.hh"

namespace mintcb::tpm
{

/** One measured software event (component load, config file, ...). */
struct MeasuredEvent
{
    std::uint32_t pcrIndex;   //!< static PCR the event was extended into
    std::string description;  //!< e.g. "BIOS", "grub", "vmlinuz-2.6.20"
    Bytes measurement;        //!< SHA-1 of the component

    Bytes encode() const;
};

/** The stored measurement log accompanying a static-PCR attestation. */
class EventLog
{
  public:
    void
    append(MeasuredEvent event)
    {
        events_.push_back(std::move(event));
    }

    const std::vector<MeasuredEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }

    /**
     * Replay the log from the boot-time PCR values (static PCRs start at
     * zero): returns the PCR values an honest platform would hold. A
     * verifier compares these against the quoted values.
     */
    std::map<std::size_t, Bytes> replay() const;

    Bytes encode() const;
    static Result<EventLog> decode(const Bytes &wire);

  private:
    std::vector<MeasuredEvent> events_;
};

} // namespace mintcb::tpm

#endif // MINTCB_TPM_EVENTLOG_HH
