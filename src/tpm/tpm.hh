/**
 * @file
 * The simulated TPM v1.2.
 *
 * Functionally real (real SHA-1 PCR chains, real RSA seal/quote crypto),
 * with vendor-calibrated latency charged to an attached virtual clock.
 * Implements exactly the command surface the paper exercises:
 * PCRRead/Extend, Seal/Unseal, Quote, GetRandom, and the locality-4
 * TPM_HASH_START / TPM_HASH_DATA / TPM_HASH_END sequence that SKINIT and
 * SENTER use during a late launch (Section 4.3.1).
 */

#ifndef MINTCB_TPM_TPM_HH
#define MINTCB_TPM_TPM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/rng.hh"
#include "common/simtime.hh"
#include "common/types.hh"
#include "crypto/rsa.hh"
#include "crypto/sha1.hh"
#include "tpm/blob.hh"
#include "tpm/pcr.hh"
#include "common/counters.hh"
#include "tpm/timing.hh"

namespace mintcb::tpm
{

/**
 * Who is issuing a TPM command. The hardware locality is only reachable
 * from the CPU's late-launch microcode path; ring-0 software cannot forge
 * it (Section 2.1.3: "Only a hardware command from the CPU can reset
 * PCR 17").
 */
enum class Locality
{
    software, //!< anything the OS / a PAL issues through the driver
    hardware, //!< the CPU's SKINIT/SENTER/SLAUNCH microcode path
};

/** A TPM_Quote result: signed evidence of the selected PCR contents. */
struct TpmQuote
{
    std::vector<std::size_t> selection; //!< PCR indices quoted
    std::vector<Bytes> values;          //!< their values at quote time
    Bytes nonce;                        //!< verifier freshness nonce
    Bytes signature;                    //!< AIK signature over the payload

    /** The exact byte string the AIK signs. */
    Bytes signedPayload() const;
};

/**
 * Verify @p quote against @p aik and @p expected_nonce: recomputes the
 * composite from the reported values and checks the signature. The caller
 * still has to decide whether the *values* are trustworthy.
 *
 * Each way a quote can be bad fails with its own message (stale/wrong
 * nonce, malformed selection, signature mismatch) so a verifier can
 * report *why* an attestation was refused, not just that it was.
 */
Status verifyQuote(const crypto::RsaPublicKey &aik, const TpmQuote &quote,
                   const Bytes &expected_nonce);

/**
 * Observer of every charged TPM command. The obs layer's telemetry
 * session implements this to build TPM command spans; the chip never
 * behaves differently with an observer attached.
 */
class TpmCommandObserver
{
  public:
    virtual ~TpmCommandObserver() = default;
    /**
     * One command charged. @p issued is the invoking clock before the
     * chip-busy serialization, @p start after it (the command's actual
     * start; the gap is queueing behind another CPU's command), @p end
     * when the chip finished.
     */
    virtual void onCommand(const char *op, TimePoint issued,
                           TimePoint start, TimePoint end) = 0;
};

/** The TPM chip model. */
class Tpm
{
  public:
    /**
     * Build a TPM of the given @p vendor. @p seed diversifies the SRK/AIK
     * (machines built from different seeds have different TPM identities).
     */
    explicit Tpm(TpmVendor vendor, std::uint64_t seed = 0);

    /** Charge future op latencies to @p clock (the platform timeline). */
    void attachClock(Timeline *clock) { clock_ = clock; }

    /** Replace the timing profile (used by the TPM-speed ablation). */
    void setProfile(const TpmTimingProfile &p) { profile_ = p; }
    const TpmTimingProfile &profile() const { return profile_; }
    TpmVendor vendor() const { return profile_.vendor; }

    /** Platform power cycle: PCR bank reset, lock cleared, buffer wiped. */
    void reboot();

    /** @name Key material. @{ */
    const crypto::RsaPublicKey &srkPublic() const { return srk_.pub; }
    const crypto::RsaPublicKey &aikPublic() const { return aik_.pub; }
    /** @} */

    /** @name Ordinary (software-invocable) commands. @{ */
    Result<PcrValue> pcrRead(std::size_t index);
    Status pcrExtend(std::size_t index, const Bytes &digest);
    Result<Bytes> getRandom(std::size_t bytes);
    /** Seal @p payload to the *current* values of @p pcr_selection. */
    Result<SealedBlob> seal(const Bytes &payload,
                            const std::vector<std::size_t> &pcr_selection);
    /** Seal to an explicit digest-at-release policy. */
    Result<SealedBlob> sealToPolicy(const Bytes &payload,
                                    const SealPolicy &policy);
    /** Unseal; fails unless every policy PCR currently matches. */
    Result<Bytes> unseal(const SealedBlob &blob);
    Result<TpmQuote> quote(const Bytes &nonce,
                           const std::vector<std::size_t> &pcr_selection);
    /** @} */

    /** @name Monotonic counters (TCG v1.2 optional resource).
     * Sealed storage alone cannot stop the untrusted OS from replaying
     * an *old* sealed blob to a PAL (state rollback). A PAL that stores
     * the counter value inside its sealed state and increments on every
     * update detects rollback: an unsealed value below the hardware
     * counter means the OS fed it stale state.
     * @{ */
    /** Create a counter starting at 0; returns its handle. */
    Result<std::uint32_t> counterCreate();
    /** Increment and return the new value (monotonic, never resets
     *  except by TPM ownership clear -- not modeled). */
    Result<std::uint64_t> counterIncrement(std::uint32_t handle);
    /** Current value. */
    Result<std::uint64_t> counterRead(std::uint32_t handle) const;
    /** @} */

    /** @name PCR-gated non-volatile storage (TPM_NV_*, TCG v1.2).
     * A small NV area whose reads/writes can be gated on PCR contents:
     * define a space bound to the current value of some PCRs, and only
     * software that can reproduce those values (i.e. the late-launched
     * PAL) may access it. Persists across reboot().
     * @{ */
    /** Define a space of @p bytes gated on the current values of
     *  @p pcr_selection (empty = ungated). Returns the space index. */
    Result<std::uint32_t> nvDefine(std::size_t bytes,
                                   const std::vector<std::size_t> &
                                       pcr_selection);
    /** Write @p data (must fit the defined size). */
    Status nvWrite(std::uint32_t index, const Bytes &data);
    /** Read the space contents. */
    Result<Bytes> nvRead(std::uint32_t index);
    /** @} */

    /** @name Chip NVRAM persistence.
     * Monotonic counters and NV spaces live in the chip's non-volatile
     * memory: they survive power cycles of the *chip*, not just
     * reboot() of the simulation. A host process that models a machine
     * restart (the durable store engine, tools) serializes the NV
     * state on the way down and restores it into a freshly constructed
     * Tpm of the same seed on the way up -- the simulation analogue of
     * the NVRAM soldered to the board. Everything else (PCRs, sessions,
     * the lock) is volatile and deliberately not captured.
     * @{ */
    /** Serialize counters + NV spaces ("TNV1" layout). */
    Bytes exportNvState() const;
    /** Restore a previously exported NV image. Refuses (leaving the
     *  chip untouched) when the image is malformed or the chip already
     *  holds NV state -- restore is a cold-boot operation. */
    Status importNvState(const Bytes &wire);
    /** @} */

    /** @name Late-launch hash interface (locality 4 / hardware only).
     * TPM_HASH_START resets the dynamic PCRs; TPM_HASH_DATA streams the
     * SLB/ACMod bytes (the long-wait-cycle cost lives here); TPM_HASH_END
     * hashes the buffered bytes and extends PCR 17.
     * @{ */
    Status hashStart(Locality locality);
    Status hashData(const Bytes &chunk, Locality locality);
    Status hashEnd(Locality locality);
    /** @} */

    /** @name Hardware TPM lock (Section 5.4.5).
     * Multi-CPU arbitration for the recommended architecture: a CPU takes
     * the lock before streaming measurements, and all other CPUs' TPM
     * commands fail with resourceExhausted until release.
     * @{ */
    bool tryLock(CpuId cpu);
    Status unlock(CpuId cpu);
    std::optional<CpuId> lockHolder() const { return lockHolder_; }
    /** @} */

    /** @name Transport-session resumption tickets (Section 3.3).
     * Accepting a transport session costs an in-TPM RSA decrypt; the TPM
     * keeps a digest of each accepted session key so the same principal
     * can resume without repeating the key exchange. Each ticket carries
     * an epoch counter that advances on every resumption, so traffic
     * keys (and therefore MACs) from an earlier epoch cannot be replayed
     * into a resumed session. Volatile: cleared by reboot() like the
     * rest of the session state.
     * @{ */
    void registerTransportTicket(const Bytes &key_digest);
    bool hasTransportTicket(const Bytes &key_digest) const;
    /** Advance the ticket's epoch and return the new value (>= 1). */
    Result<std::uint64_t> advanceTransportTicketEpoch(
        const Bytes &key_digest);
    /** @} */

    /** Direct PCR bank access for tests and the sePCR extension. */
    PcrBank &pcrs() { return pcrs_; }
    const PcrBank &pcrs() const { return pcrs_; }

    /** Unseal the blob crypto without policy (sePCR extension backend). */
    Result<Bytes> unsealRaw(const SealedBlob &blob) const;
    /** The SRK public key handle for blob construction by extensions. */
    const crypto::RsaPrivateKey &srkPrivate() const { return srk_; }
    /** Sign @p payload with the AIK (sePCR quote path). */
    Bytes aikSign(const Bytes &payload) const;
    /** Charge @p mean (with jitter) to the attached clock. @p op names
     *  the command for an attached observer (nullptr = generic). */
    void charge(Duration mean, const char *op = nullptr);
    /** RNG shared with extensions so streams stay deterministic. */
    Rng &rng() { return rng_; }

    /** Command counters (gem5-style observability). */
    const TpmStats &stats() const { return stats_; }

    /** Attach (or with nullptr detach) the command observer. */
    void setCommandObserver(TpmCommandObserver *obs) { observer_ = obs; }
    TpmCommandObserver *commandObserver() const { return observer_; }

  private:
    Status requireHardware(Locality locality, const char *op) const;

    TpmTimingProfile profile_;
    TimePoint busyUntil_; //!< the chip serializes commands (one LPC port)
    PcrBank pcrs_;
    crypto::RsaPrivateKey srk_;
    crypto::RsaPrivateKey aik_;
    Rng rng_;
    Timeline ownClock_;
    Timeline *clock_ = nullptr;

    bool hashSequenceOpen_ = false;
    //! Streaming TPM_HASH_DATA digest: chunks are absorbed as they
    //! arrive instead of buffering the whole SLB until TPM_HASH_END.
    crypto::Sha1 hashSeq_;
    std::optional<CpuId> lockHolder_;
    struct TransportTicket
    {
        Bytes keyDigest;
        std::uint64_t epoch = 0; //!< bumps on every resumption
    };
    std::vector<TransportTicket> transportTickets_; //!< volatile
    std::vector<std::uint64_t> counters_; //!< persists across reboot()

    struct NvSpace
    {
        SealPolicy policy; //!< PCR gate captured at define time
        std::size_t size = 0;
        Bytes data;
    };
    std::vector<NvSpace> nvSpaces_; //!< persists across reboot()
    mutable TpmStats stats_;
    TpmCommandObserver *observer_ = nullptr;
};

} // namespace mintcb::tpm

#endif // MINTCB_TPM_TPM_HH
