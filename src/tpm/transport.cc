/**
 * @file
 * Transport session implementation.
 *
 * Framing: plaintext = u8 op | u32 pcr | length-prefixed payload. A batch
 * nests that framing: op=batch, payload = u32 count | count inner
 * commands, each u8 op | u32 pcr | length-prefixed payload. The batch
 * response carries one u8 status + length-prefixed payload per inner
 * command. Both endpoints use a per-epoch traffic key k =
 * HMAC-SHA256(master, "ts-epoch" || epoch); the initial accept is epoch
 * 0 and every resumption advances the ticket's epoch. Encryption: XOR
 * keystream HMAC-SHA256(k, "ts-enc" || direction || counter || block).
 * MAC: HMAC-SHA256(k, "ts-mac" || direction || counter || ciphertext);
 * the counter gives replay protection within an epoch and the epoch key
 * keeps recordings from an earlier session life from verifying after a
 * resumption resets the counters.
 */

#include "tpm/transport.hh"

#include "common/bytebuf.hh"
#include "crypto/hmac.hh"
#include "crypto/sha256.hh"

namespace mintcb::tpm
{

namespace
{

Bytes
trafficKey(const Bytes &master, std::uint64_t epoch)
{
    ByteWriter w;
    w.str("ts-epoch");
    w.u64(epoch);
    return crypto::hmacSha256(master, w.bytes());
}

Bytes
keystream(const Bytes &key, std::uint8_t direction, std::uint64_t counter,
          std::size_t length)
{
    Bytes out(length);
    Bytes block;
    for (std::size_t i = 0; i < length; ++i) {
        if (i % 32 == 0) {
            ByteWriter w;
            w.str("ts-enc");
            w.u8(direction);
            w.u64(counter);
            w.u64(i / 32);
            block = crypto::hmacSha256(key, w.bytes());
        }
        out[i] = block[i % 32];
    }
    return out;
}

Bytes
computeMac(const Bytes &key, std::uint8_t direction,
           std::uint64_t counter, const Bytes &ciphertext)
{
    // Only the fixed-size header goes through a ByteWriter; the
    // ciphertext streams straight into the MAC, so long messages are
    // never copied into a transcript buffer first.
    ByteWriter w;
    w.str("ts-mac");
    w.u8(direction);
    w.u64(counter);
    w.u32(static_cast<std::uint32_t>(ciphertext.size()));
    crypto::HmacSha256 mac(key);
    mac.update(w.bytes());
    mac.update(ciphertext);
    return mac.finish();
}

WrappedMessage
wrap(const Bytes &key, std::uint8_t direction, std::uint64_t counter,
     const Bytes &plaintext)
{
    WrappedMessage m;
    const Bytes stream = keystream(key, direction, counter,
                                   plaintext.size());
    m.ciphertext.resize(plaintext.size());
    for (std::size_t i = 0; i < plaintext.size(); ++i)
        m.ciphertext[i] = plaintext[i] ^ stream[i];
    m.mac = computeMac(key, direction, counter, m.ciphertext);
    return m;
}

Result<Bytes>
unwrap(const Bytes &key, std::uint8_t direction, std::uint64_t counter,
       const WrappedMessage &m)
{
    const Bytes expected = computeMac(key, direction, counter,
                                      m.ciphertext);
    if (!crypto::constantTimeEqual(expected, m.mac)) {
        return Error(Errc::integrityFailure,
                     "transport MAC mismatch (tamper or replay)");
    }
    const Bytes stream = keystream(key, direction, counter,
                                   m.ciphertext.size());
    Bytes plaintext(m.ciphertext.size());
    for (std::size_t i = 0; i < plaintext.size(); ++i)
        plaintext[i] = m.ciphertext[i] ^ stream[i];
    return plaintext;
}

void
writeCommand(ByteWriter &w, TransportOp op, std::uint32_t pcr,
             const Bytes &payload)
{
    w.u8(static_cast<std::uint8_t>(op));
    w.u32(pcr);
    w.lengthPrefixed(payload);
}

constexpr std::uint8_t toTpm = 0x01;
constexpr std::uint8_t fromTpm = 0x02;

} // namespace

Bytes
WrappedMessage::encode() const
{
    ByteWriter w;
    w.lengthPrefixed(ciphertext);
    w.lengthPrefixed(mac);
    return w.take();
}

Result<WrappedMessage>
WrappedMessage::decode(const Bytes &wire)
{
    ByteReader r(wire);
    auto ct = r.lengthPrefixed();
    if (!ct)
        return ct.error();
    auto mac = r.lengthPrefixed();
    if (!mac)
        return mac.error();
    if (!r.atEnd())
        return Error(Errc::integrityFailure, "trailing transport bytes");
    WrappedMessage m;
    m.ciphertext = ct.take();
    m.mac = mac.take();
    return m;
}

Result<TransportClient::Opened>
TransportClient::open(const crypto::RsaPublicKey &srk, Rng &rng)
{
    return openWithKey(srk, rng, rng.bytes(32));
}

Result<TransportClient::Opened>
TransportClient::openWithKey(const crypto::RsaPublicKey &srk, Rng &rng,
                             const Bytes &key)
{
    if (key.size() != 32) {
        return Error(Errc::invalidArgument,
                     "transport session key must be 32 bytes");
    }
    auto envelope = crypto::rsaEncrypt(srk, rng, key);
    if (!envelope)
        return envelope.error();
    return Opened{TransportClient(trafficKey(key, 0)), envelope.take()};
}

Result<TransportClient>
TransportClient::resume(const Bytes &key, std::uint64_t epoch)
{
    if (key.size() != 32) {
        return Error(Errc::invalidArgument,
                     "transport session key must be 32 bytes");
    }
    return TransportClient(trafficKey(key, epoch));
}

Result<TransportClient>
TransportClient::establish(const crypto::RsaPublicKey &srk, Rng &rng,
                           Bytes &envelope_out)
{
    auto opened = open(srk, rng);
    if (!opened)
        return opened.error();
    envelope_out = std::move(opened->envelope);
    return std::move(opened->client);
}

WrappedMessage
TransportClient::wrapCommand(TransportOp op, std::uint32_t pcr,
                             const Bytes &payload)
{
    ByteWriter w;
    writeCommand(w, op, pcr, payload);
    return wrap(key_, toTpm, sendCounter_++, w.bytes());
}

WrappedMessage
TransportClient::wrapBatch(const std::vector<TransportCommand> &commands)
{
    ByteWriter inner;
    inner.u32(static_cast<std::uint32_t>(commands.size()));
    for (const TransportCommand &c : commands)
        writeCommand(inner, c.op, c.pcr, c.payload);

    ByteWriter w;
    writeCommand(w, TransportOp::batch, 0, inner.bytes());
    return wrap(key_, toTpm, sendCounter_++, w.bytes());
}

Result<Bytes>
TransportClient::unwrapResponse(const WrappedMessage &message)
{
    auto plain = unwrap(key_, fromTpm, recvCounter_, message);
    if (!plain)
        return plain.error();
    ++recvCounter_;
    return plain;
}

Result<std::vector<TransportReply>>
TransportClient::unwrapBatchResponse(const WrappedMessage &message)
{
    auto plain = unwrapResponse(message);
    if (!plain)
        return plain.error();
    ByteReader r(*plain);
    auto status = r.u8();
    if (!status)
        return status.error();
    if (*status != 0) {
        return Error(Errc::integrityFailure,
                     "batch exchange rejected by the TPM");
    }
    auto count = r.u32();
    if (!count)
        return count.error();
    std::vector<TransportReply> replies;
    replies.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
        auto errc = r.u8();
        if (!errc)
            return errc.error();
        auto payload = r.lengthPrefixed();
        if (!payload)
            return payload.error();
        TransportReply reply;
        reply.status = static_cast<Errc>(*errc);
        reply.payload = payload.take();
        replies.push_back(std::move(reply));
    }
    if (!r.atEnd())
        return Error(Errc::integrityFailure, "trailing batch bytes");
    return replies;
}

Status
TpmTransportServer::accept(const Bytes &envelope)
{
    auto key = crypto::rsaDecrypt(tpm_.srkPrivate(), envelope);
    if (!key) {
        ++stats_.rejected;
        return key.error();
    }
    if (key->size() != 32) {
        ++stats_.rejected;
        return Error(Errc::invalidArgument,
                     "transport session key must be 32 bytes");
    }
    // The session-key decrypt is an in-TPM RSA private-key operation of
    // the same class as an unseal (Section 4.3.3).
    tpm_.charge(tpm_.profile().unseal, "tpm:session_accept");
    const Bytes master = key.take();
    key_ = trafficKey(master, 0);
    recvCounter_ = 0;
    sendCounter_ = 0;
    tpm_.registerTransportTicket(crypto::Sha256::digestBytes(master));
    ++stats_.sessionsAccepted;
    return okStatus();
}

Result<std::uint64_t>
TpmTransportServer::acceptResumed(const Bytes &key)
{
    if (key.size() != 32) {
        ++stats_.rejected;
        return Error(Errc::invalidArgument,
                     "transport session key must be 32 bytes");
    }
    // Advancing the ticket epoch rekeys the session: counters restart at
    // zero, but under a fresh traffic key, so recordings from any
    // earlier epoch fail the MAC instead of replaying.
    auto epoch = tpm_.advanceTransportTicketEpoch(
        crypto::Sha256::digestBytes(key));
    if (!epoch) {
        ++stats_.rejected;
        return epoch.error();
    }
    // Symmetric-only resumption costs one cheap command's latency.
    tpm_.charge(tpm_.profile().pcrRead, "tpm:transport_exec");
    key_ = trafficKey(key, *epoch);
    recvCounter_ = 0;
    sendCounter_ = 0;
    ++stats_.sessionsResumed;
    return epoch;
}

Result<Bytes>
TpmTransportServer::executeOne(TransportOp op, std::uint32_t pcr,
                               const Bytes &payload)
{
    ByteWriter response;
    switch (op) {
      case TransportOp::pcrRead: {
          auto value = tpm_.pcrRead(pcr);
          if (!value)
              return value.error();
          return *value;
      }
      case TransportOp::pcrExtend: {
          if (auto s = tpm_.pcrExtend(pcr, payload); !s.ok())
              return s.error();
          return Bytes{};
      }
      case TransportOp::getRandom: {
          auto bytes = tpm_.getRandom(pcr); // pcr field doubles as count
          if (!bytes)
              return bytes.error();
          return bytes.take();
      }
      case TransportOp::batch:
        return Error(Errc::invalidArgument,
                     "batches do not nest");
      default:
        return Error(Errc::invalidArgument, "unknown transport opcode");
    }
}

Result<WrappedMessage>
TpmTransportServer::execute(const WrappedMessage &message)
{
    if (key_.empty()) {
        return Error(Errc::failedPrecondition,
                     "no transport session established");
    }
    auto plain = unwrap(key_, toTpm, recvCounter_, message);
    if (!plain) {
        ++stats_.rejected;
        return plain.error();
    }
    ++recvCounter_;
    ++stats_.exchanges;

    ByteReader r(*plain);
    auto op = r.u8();
    if (!op)
        return op.error();
    auto pcr = r.u32();
    if (!pcr)
        return pcr.error();
    auto payload = r.lengthPrefixed();
    if (!payload)
        return payload.error();

    ByteWriter response;
    if (static_cast<TransportOp>(*op) == TransportOp::batch) {
        ByteReader inner(*payload);
        auto count = inner.u32();
        if (!count)
            return count.error();
        response.u8(0);
        response.u32(*count);
        for (std::uint32_t i = 0; i < *count; ++i) {
            auto cop = inner.u8();
            if (!cop)
                return cop.error();
            auto cpcr = inner.u32();
            if (!cpcr)
                return cpcr.error();
            auto cpayload = inner.lengthPrefixed();
            if (!cpayload)
                return cpayload.error();
            // A refused sub-command (bad PCR index, locked TPM) reports
            // its category in-band; the exchange itself still succeeds.
            auto result = executeOne(static_cast<TransportOp>(*cop),
                                     *cpcr, *cpayload);
            if (result) {
                response.u8(static_cast<std::uint8_t>(Errc::ok));
                response.lengthPrefixed(*result);
            } else {
                response.u8(static_cast<std::uint8_t>(
                    result.error().code));
                response.lengthPrefixed(Bytes{});
            }
            ++stats_.commands;
            ++stats_.batchedCommands;
        }
        if (!inner.atEnd())
            return Error(Errc::integrityFailure, "trailing batch bytes");
    } else {
        ++stats_.commands;
        const TransportOp top = static_cast<TransportOp>(*op);
        auto result = executeOne(top, *pcr, *payload);
        if (!result)
            return result.error();
        response.u8(0);
        // Preserve the original single-command framing: extend responses
        // carry no payload field at all.
        if (top != TransportOp::pcrExtend)
            response.lengthPrefixed(*result);
    }
    return wrap(key_, fromTpm, sendCounter_++, response.bytes());
}

} // namespace mintcb::tpm
