/**
 * @file
 * Transport session implementation.
 *
 * Framing: plaintext = u8 op | u32 pcr | length-prefixed payload.
 * Encryption: XOR keystream HMAC-SHA256(key, "ts-enc" || direction ||
 * counter || block). MAC: HMAC-SHA256(key, "ts-mac" || direction ||
 * counter || ciphertext); the counter gives replay protection.
 */

#include "tpm/transport.hh"

#include "common/bytebuf.hh"
#include "crypto/hmac.hh"

namespace mintcb::tpm
{

namespace
{

Bytes
keystream(const Bytes &key, std::uint8_t direction, std::uint64_t counter,
          std::size_t length)
{
    Bytes out(length);
    Bytes block;
    for (std::size_t i = 0; i < length; ++i) {
        if (i % 32 == 0) {
            ByteWriter w;
            w.str("ts-enc");
            w.u8(direction);
            w.u64(counter);
            w.u64(i / 32);
            block = crypto::hmacSha256(key, w.bytes());
        }
        out[i] = block[i % 32];
    }
    return out;
}

Bytes
computeMac(const Bytes &key, std::uint8_t direction,
           std::uint64_t counter, const Bytes &ciphertext)
{
    ByteWriter w;
    w.str("ts-mac");
    w.u8(direction);
    w.u64(counter);
    w.lengthPrefixed(ciphertext);
    return crypto::hmacSha256(key, w.bytes());
}

WrappedMessage
wrap(const Bytes &key, std::uint8_t direction, std::uint64_t counter,
     const Bytes &plaintext)
{
    WrappedMessage m;
    const Bytes stream = keystream(key, direction, counter,
                                   plaintext.size());
    m.ciphertext.resize(plaintext.size());
    for (std::size_t i = 0; i < plaintext.size(); ++i)
        m.ciphertext[i] = plaintext[i] ^ stream[i];
    m.mac = computeMac(key, direction, counter, m.ciphertext);
    return m;
}

Result<Bytes>
unwrap(const Bytes &key, std::uint8_t direction, std::uint64_t counter,
       const WrappedMessage &m)
{
    const Bytes expected = computeMac(key, direction, counter,
                                      m.ciphertext);
    if (!crypto::constantTimeEqual(expected, m.mac)) {
        return Error(Errc::integrityFailure,
                     "transport MAC mismatch (tamper or replay)");
    }
    const Bytes stream = keystream(key, direction, counter,
                                   m.ciphertext.size());
    Bytes plaintext(m.ciphertext.size());
    for (std::size_t i = 0; i < plaintext.size(); ++i)
        plaintext[i] = m.ciphertext[i] ^ stream[i];
    return plaintext;
}

constexpr std::uint8_t toTpm = 0x01;
constexpr std::uint8_t fromTpm = 0x02;

} // namespace

Bytes
WrappedMessage::encode() const
{
    ByteWriter w;
    w.lengthPrefixed(ciphertext);
    w.lengthPrefixed(mac);
    return w.take();
}

Result<WrappedMessage>
WrappedMessage::decode(const Bytes &wire)
{
    ByteReader r(wire);
    auto ct = r.lengthPrefixed();
    if (!ct)
        return ct.error();
    auto mac = r.lengthPrefixed();
    if (!mac)
        return mac.error();
    if (!r.atEnd())
        return Error(Errc::integrityFailure, "trailing transport bytes");
    WrappedMessage m;
    m.ciphertext = ct.take();
    m.mac = mac.take();
    return m;
}

Result<TransportClient>
TransportClient::establish(const crypto::RsaPublicKey &srk, Rng &rng,
                           Bytes &envelope_out)
{
    const Bytes session_key = rng.bytes(32);
    auto envelope = crypto::rsaEncrypt(srk, rng, session_key);
    if (!envelope)
        return envelope.error();
    envelope_out = envelope.take();
    return TransportClient(session_key);
}

WrappedMessage
TransportClient::wrapCommand(TransportOp op, std::uint32_t pcr,
                             const Bytes &payload)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(op));
    w.u32(pcr);
    w.lengthPrefixed(payload);
    return wrap(key_, toTpm, sendCounter_++, w.bytes());
}

Result<Bytes>
TransportClient::unwrapResponse(const WrappedMessage &message)
{
    auto plain = unwrap(key_, fromTpm, recvCounter_, message);
    if (!plain)
        return plain.error();
    ++recvCounter_;
    return plain;
}

Status
TpmTransportServer::accept(const Bytes &envelope)
{
    auto key = crypto::rsaDecrypt(tpm_.srkPrivate(), envelope);
    if (!key)
        return key.error();
    if (key->size() != 32) {
        return Error(Errc::invalidArgument,
                     "transport session key must be 32 bytes");
    }
    key_ = key.take();
    recvCounter_ = 0;
    sendCounter_ = 0;
    return okStatus();
}

Result<WrappedMessage>
TpmTransportServer::execute(const WrappedMessage &message)
{
    if (key_.empty()) {
        return Error(Errc::failedPrecondition,
                     "no transport session established");
    }
    auto plain = unwrap(key_, toTpm, recvCounter_, message);
    if (!plain)
        return plain.error();
    ++recvCounter_;

    ByteReader r(*plain);
    auto op = r.u8();
    if (!op)
        return op.error();
    auto pcr = r.u32();
    if (!pcr)
        return pcr.error();
    auto payload = r.lengthPrefixed();
    if (!payload)
        return payload.error();

    ByteWriter response;
    switch (static_cast<TransportOp>(*op)) {
      case TransportOp::pcrRead: {
          auto value = tpm_.pcrRead(*pcr);
          if (!value)
              return value.error();
          response.u8(0);
          response.lengthPrefixed(*value);
          break;
      }
      case TransportOp::pcrExtend: {
          if (auto s = tpm_.pcrExtend(*pcr, *payload); !s.ok())
              return s.error();
          response.u8(0);
          break;
      }
      case TransportOp::getRandom: {
          auto bytes = tpm_.getRandom(*pcr); // pcr field doubles as count
          if (!bytes)
              return bytes.error();
          response.u8(0);
          response.lengthPrefixed(*bytes);
          break;
      }
      default:
        return Error(Errc::invalidArgument, "unknown transport opcode");
    }
    return wrap(key_, fromTpm, sendCounter_++, response.bytes());
}

} // namespace mintcb::tpm
