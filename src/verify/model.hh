/**
 * @file
 * The explorable world: real transition functions, small configuration.
 *
 * A World couples the *production* MemoryController access-control
 * table, the *production* SePcrTpm bank, and the *production* lifecycle
 * transition table into the combined SLAUNCH / SYIELD / SFREE / SKILL
 * semantics at component granularity -- the same sequencing as
 * rec::SecureExecutive, minus the timing model. The StateExplorer
 * enumerates every action interleaving over it; a Mutation deliberately
 * breaks one step of one transition so the regression suite can prove
 * the explorer actually finds violations.
 */

#ifndef MINTCB_VERIFY_MODEL_HH
#define MINTCB_VERIFY_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "machine/memctrl.hh"
#include "machine/memory.hh"
#include "rec/sepcr.hh"
#include "verify/invariants.hh"

namespace mintcb::verify
{

/** Size of the configuration to enumerate (keep small: the state space
 *  is exponential in pals x cpus). */
struct ModelConfig
{
    std::uint32_t cpus = 2;
    std::uint32_t pals = 2;
    std::uint32_t pagesPerPal = 2;
    std::size_t sePcrs = 2;
};

/** A deliberately seeded bug in one transition (explorer regression). */
enum class Mutation
{
    none,
    /** SYIELD suspends the PAL but skips the CPUi -> NONE page
     *  transition, leaving a suspended PAL's pages readable. */
    suspendSkipsNone,
    /** SFREE marks the PAL Done but never returns its pages to ALL. */
    sfreeSkipsRelease,
    /** SKILL tears the pages down but leaves the sePCR Exclusive. */
    skillLeavesSepcrBound,
};

/** Printable mutation name. */
const char *mutationName(Mutation m);

/** One transition of the combined state machine. */
struct Action
{
    enum class Kind
    {
        slaunch, //!< launch/resume @c pal on @c cpu
        syield,  //!< suspend @c pal (timer expiry / voluntary yield)
        sfree,   //!< clean exit of @c pal
        skill,   //!< OS kills suspended @c pal
        release, //!< untrusted code frees @c pal's quoted sePCR
    };

    Kind kind = Kind::slaunch;
    std::uint32_t pal = 0;
    CpuId cpu = 0; //!< meaningful for slaunch only

    std::string str() const;
};

/** The explorable instance. */
class World
{
  public:
    explicit World(const ModelConfig &config,
                   Mutation mutation = Mutation::none);

    const ModelConfig &config() const { return cfg_; }

    /**
     * Apply one action. ok() => the transition was accepted and the
     * state advanced; an error => the hardware refused it and nothing
     * changed (a rejected action is not an invariant violation -- it is
     * the enforcement working).
     */
    Status apply(const Action &action);

    /** Every syntactically sensible action from the current state (the
     *  explorer tries each; rejections prune themselves). */
    std::vector<Action> candidateActions() const;

    /** Canonical view for invariant checking and dedup. */
    WorldSnapshot snapshot() const;

    /**
     * Cross-check the snapshot against the *real* controller's access
     * decisions: every page's CPU/DMA readability must match what the
     * ownership view implies. Catches model/implementation drift.
     */
    Status crossCheckAccess() const;

  private:
    struct Pal
    {
        rec::PalState state = rec::PalState::start;
        std::optional<CpuId> runningOn;
        std::optional<rec::SePcrHandle> sePcr;
        std::vector<PageNum> pages;
        bool measuredFlag = false;
        Bytes image;
    };

    Status slaunch(Pal &pal, CpuId cpu);
    Status syield(Pal &pal);
    Status sfree(Pal &pal);
    Status skill(Pal &pal);
    Status release(Pal &pal);

    ModelConfig cfg_;
    Mutation mutation_;
    machine::PhysicalMemory mem_;
    machine::MemoryController ctrl_;
    rec::SePcrTpm bank_;
    std::vector<Pal> pals_;
};

} // namespace mintcb::verify

#endif // MINTCB_VERIFY_MODEL_HH
