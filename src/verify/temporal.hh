/**
 * @file
 * Temporal-property checks over recorded execution traces.
 *
 * The properties are liveness/ordering claims the paper's Figure 6 state
 * machine and the transport-session protocol make but that no single
 * point-in-time invariant can see:
 *
 *  - every SLAUNCH is eventually paired with an SFREE or SKILL (no PAL
 *    still holds pages or an sePCR when the run ends),
 *  - the per-PAL event sequence respects the Start/Execute/Suspend/Done
 *    lifecycle (rec::checkTransition is the oracle),
 *  - the TPM transport is never used after the session closed, and
 *    never resumed before it was opened.
 *
 * Traces are keyed by PAL name, so workloads feeding the checker must
 * name PALs uniquely (every in-repo workload does).
 */

#ifndef MINTCB_VERIFY_TEMPORAL_HH
#define MINTCB_VERIFY_TEMPORAL_HH

#include <string>
#include <vector>

#include "sea/service.hh"
#include "verify/trace.hh"

namespace mintcb::verify
{

/** One violated temporal property. */
struct TemporalFinding
{
    std::string property; //!< short property tag
    std::uint64_t seq = 0;//!< trace position (size() for end-of-trace)
    std::string detail;

    std::string str() const;
};

/** All findings for one trace (empty = every property holds). */
struct TemporalReport
{
    std::vector<TemporalFinding> findings;

    bool ok() const { return findings.empty(); }
    std::string str() const;
};

/** Check every temporal property against @p trace. */
TemporalReport checkTemporal(const ExecutionTrace &trace);

/**
 * Arithmetic sanity over a service's cumulative counters (the metrics
 * half of a recorded run): completions never exceed submissions,
 * failures and missed deadlines never exceed completions, and
 * pipelining can only *reduce* exchanges below the command count.
 */
TemporalReport lintMetrics(const sea::ServiceMetrics &metrics);

} // namespace mintcb::verify

#endif // MINTCB_VERIFY_TEMPORAL_HH
