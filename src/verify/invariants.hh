/**
 * @file
 * The invariant catalog (paper Section 6's security argument, made
 * machine-checkable).
 *
 * The paper's isolation story is a conjunction of state-machine
 * invariants: memory pages move ALL -> CPUi -> NONE and are never
 * readable by two CPUs that do not co-run the same PAL; sePCRs move
 * Free -> Exclusive -> Quote and are never bound to two PALs at once;
 * the PAL life cycle (Figure 6) never re-enters SLAUNCH on an
 * already-bound SECB; and SKILL revokes *everything* a PAL held.
 * Nothing in the simulator may merely assume these -- this header makes
 * each one a named, declarative predicate over a canonical snapshot of
 * the combined memctrl / sePCR / lifecycle state, so the StateExplorer
 * (exhaustive model checking), the test suites (oracle), and the lint
 * driver all check the *same* catalog.
 */

#ifndef MINTCB_VERIFY_INVARIANTS_HH
#define MINTCB_VERIFY_INVARIANTS_HH

#include <optional>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/types.hh"
#include "machine/memctrl.hh"
#include "rec/lifecycle.hh"
#include "rec/secb.hh"
#include "rec/sepcr.hh"

namespace mintcb::verify
{

/** One page of the access-control table, as the invariants see it. */
struct PageView
{
    machine::PageState state = machine::PageState::all;
    std::uint64_t ownerMask = 0;
};

/** One sePCR, as the invariants see it. */
struct SePcrView
{
    rec::SePcrState state = rec::SePcrState::free;
};

/** One PAL, as the invariants see it. */
struct PalView
{
    rec::PalState state = rec::PalState::start;
    std::optional<CpuId> runningOn;
    std::optional<rec::SePcrHandle> sePcr;
    std::vector<PageNum> pages;
    bool measuredFlag = false;
};

/**
 * A canonical view of the whole protection state. encode() yields a
 * fingerprint suitable for state-space dedup; str() a human-readable
 * dump for counterexample traces.
 */
struct WorldSnapshot
{
    std::vector<PageView> pages;
    std::vector<SePcrView> sePcrs;
    std::vector<PalView> pals;

    Bytes encode() const;
    std::string str() const;
};

/** A named, declarative predicate over a WorldSnapshot. */
struct Invariant
{
    const char *name;
    const char *property; //!< one-line statement of what must hold
    Status (*check)(const WorldSnapshot &);
};

/**
 * Every invariant the paper's security argument rests on:
 *
 *  - page-ownership-exclusion: non-ALL pages belong to exactly one PAL
 *    and their owner mask covers only CPUs running that PAL.
 *  - executing-pal-owns-pages: a PAL in Execute holds all its pages in
 *    CPUi, owned by exactly the CPU it runs on.
 *  - suspended-pal-pages-none: a suspended PAL's pages are all NONE
 *    (readable by no CPU and no DMA device).
 *  - inactive-pal-fully-revoked: a PAL in Start or Done owns nothing
 *    (SFREE/SKILL returned every page to ALL).
 *  - sepcr-exclusive-binding: an Exclusive sePCR is bound to exactly
 *    one live PAL; no two PALs share a handle; a dead PAL's handle is
 *    at most in Quote (awaiting collection), never Exclusive.
 *  - cpu-runs-one-pal: no CPU executes two PALs (the no-SLAUNCH-on-a-
 *    bound-SECB rule, seen from the CPU side).
 */
const std::vector<Invariant> &invariantCatalog();

/** Check the full catalog; first failure wins (names the invariant). */
Status checkAllInvariants(const WorldSnapshot &snapshot);

} // namespace mintcb::verify

#endif // MINTCB_VERIFY_INVARIANTS_HH
