/**
 * @file
 * Access-pattern side channels: the recording substrate the leakage
 * audit's adversary models share.
 *
 * A malicious hypervisor cannot read an encrypted guest's memory, but
 * it controls the nested page tables and can single-step the guest,
 * observing *which guest page* every access touches and in what order
 * (SEV-Step, and the controlled-channel attacks before it). With
 * shared-cache residue (Prime+Probe and friends) the same adversary
 * refines pages down to 64-byte cache lines. Either way the trace is
 * enough to leak secrets whenever the victim's access pattern depends
 * on secret data.
 *
 * PageAccessTrace plays the recording half of that adversary against
 * the simulated platform: it rides the machine::MemAccessObserver hook
 * -- the same mediation point the host's access-control check uses --
 * and records the ordered touch sequence inside a configurable window
 * (e.g. the vm-tee backend's guest data pages) at page or cache-line
 * granularity. accessPatternLeak() then compares the traces of two
 * runs that differed only in secret input: any divergence is exactly
 * the signal the hypervisor would see, and the verify layer flags it
 * as a leak. The richer adversary *models* (footprint sweeps,
 * fault-sequence induction, interrupt single-stepping) live in
 * verify/adversary.hh; the quantitative scoring in verify/leakage.hh.
 */

#ifndef MINTCB_VERIFY_SIDECHANNEL_HH
#define MINTCB_VERIFY_SIDECHANNEL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "machine/memctrl.hh"

namespace mintcb::verify
{

/** Spatial resolution of an access-pattern observer. */
enum class Granularity
{
    page,      //!< 4 KB pages (nested-page-table / EPC-fault channels)
    cacheLine, //!< 64 B lines (shared-cache Prime+Probe channels)
};

/** Bytes per cache line on the simulated platform. */
inline constexpr std::size_t cacheLineSize = 64;

const char *granularityName(Granularity g);

/** One observed access at the adversary's granularity: the page, the
 *  line within it (0 at page granularity), and the direction -- never
 *  the data. */
struct PageAccess
{
    PageNum page = 0;
    std::uint32_t line = 0; //!< cache-line index within the page
    bool isWrite = false;

    bool
    operator==(const PageAccess &other) const
    {
        return page == other.page && line == other.line &&
               isWrite == other.isWrite;
    }
    bool operator!=(const PageAccess &other) const
    {
        return !(*this == other);
    }
};

/**
 * The recording adversary. Attach to a machine, run the victim, read
 * the trace. Only accesses inside [firstPage, lastPage] are recorded
 * (the window the hypervisor would watch, e.g. the TEE guest's data
 * region); everything else is the victim's noise floor. At cache-line
 * granularity an access spanning several lines records one entry per
 * line touched.
 */
class PageAccessTrace final : public machine::MemAccessObserver
{
  public:
    /** Watch pages in the inclusive window [first_page, last_page]. */
    PageAccessTrace(PageNum first_page, PageNum last_page,
                    Granularity granularity = Granularity::page)
        : first_(first_page), last_(last_page),
          granularity_(granularity)
    {
    }
    ~PageAccessTrace() override { detach(); }

    PageAccessTrace(const PageAccessTrace &) = delete;
    PageAccessTrace &operator=(const PageAccessTrace &) = delete;

    /** Join @p machine's access-observer fan-out (other observers keep
     *  seeing the stream; re-attaching moves to the new machine). */
    void
    attach(machine::Machine &machine)
    {
        detach();
        machine_ = &machine;
        machine.memctrl().addAccessObserver(this);
    }

    /** Leave the observer fan-out (idempotent). */
    void
    detach()
    {
        if (machine_)
            machine_->memctrl().removeAccessObserver(this);
        machine_ = nullptr;
    }

    Granularity granularity() const { return granularity_; }

    /** The ordered touch sequence observed so far. */
    const std::vector<PageAccess> &accesses() const { return trace_; }

    /** Forget everything recorded (window and granularity stay). */
    void clear() { trace_.clear(); }

    void
    onAccess(const machine::Agent &agent, PageNum page,
             std::uint32_t offset, std::uint32_t len, bool isWrite,
             bool granted) override
    {
        (void)agent;
        (void)granted; // even a denied probe reveals the address
        if (page < first_ || page > last_)
            return;
        if (granularity_ == Granularity::page) {
            trace_.push_back({page, 0, isWrite});
            return;
        }
        // One entry per 64 B line the chunk [offset, offset+len)
        // touches; a zero-length probe still reveals its line.
        const std::uint32_t firstLine =
            offset / static_cast<std::uint32_t>(cacheLineSize);
        const std::uint32_t lastLine =
            len ? (offset + len - 1) /
                      static_cast<std::uint32_t>(cacheLineSize)
                : firstLine;
        for (std::uint32_t l = firstLine; l <= lastLine; ++l)
            trace_.push_back({page, l, isWrite});
    }

  private:
    PageNum first_;
    PageNum last_;
    Granularity granularity_;
    machine::Machine *machine_ = nullptr;
    std::vector<PageAccess> trace_;
};

/**
 * Verdict of comparing two recorded traces.
 *
 * Contract (see accessPatternLeak):
 *
 *  - Two empty traces are identical: leaks == false, lengths 0,
 *    firstDivergence == 0.
 *  - Element-identical traces of any length (including a single
 *    access) never leak; firstDivergence stays 0.
 *  - Traces that differ at some index leak, with firstDivergence the
 *    smallest index whose elements differ.
 *  - A strict prefix leaks through its *length*: no element differs,
 *    so firstDivergence == min(lengthA, lengthB) (the index at which
 *    one adversary saw an access and the other saw the victim stop).
 *    An empty trace against a non-empty one is the degenerate prefix:
 *    leaks == true, firstDivergence == 0.
 *
 * leaks == false implies lengthA == lengthB and firstDivergence == 0.
 */
struct LeakReport
{
    /** True when the touch sequences differ anywhere -- the access
     *  pattern depends on the input, so a pattern-observing adversary
     *  distinguishes the two runs. */
    bool leaks = false;
    /** Index of the first differing access (or the shorter length,
     *  when one trace is a strict prefix of the other). */
    std::size_t firstDivergence = 0;
    std::size_t lengthA = 0;
    std::size_t lengthB = 0;

    /** One-line human-readable verdict. */
    std::string str() const;
};

/** Compare two runs' traces: identical sequences mean this adversary
 *  learned nothing; any divergence is a flagged leak. Pure function of
 *  the two sequences -- see the LeakReport contract for every edge
 *  case (empty, identical, prefix, unequal lengths). */
LeakReport accessPatternLeak(const std::vector<PageAccess> &a,
                             const std::vector<PageAccess> &b);

} // namespace mintcb::verify

#endif // MINTCB_VERIFY_SIDECHANNEL_HH
