/**
 * @file
 * Page-granular access-pattern side channels (the SEV-Step adversary).
 *
 * A malicious hypervisor cannot read an encrypted guest's memory, but
 * it controls the nested page tables and can single-step the guest,
 * observing *which guest page* every access touches and in what order
 * (SEV-Step, and the controlled-channel attacks before it). That
 * page-granular trace is enough to leak secrets whenever the victim's
 * access pattern depends on secret data.
 *
 * PageAccessTrace plays that adversary against the simulated platform:
 * it rides the machine::MemAccessObserver hook -- the same mediation
 * point the host's access-control check uses -- and records the
 * ordered page-touch sequence inside a configurable window (e.g. the
 * vm-tee backend's guest data pages). accessPatternLeak() then
 * compares the traces of two runs that differed only in secret input:
 * any divergence is exactly the signal the hypervisor would see, and
 * the verify layer flags it as a leak.
 */

#ifndef MINTCB_VERIFY_SIDECHANNEL_HH
#define MINTCB_VERIFY_SIDECHANNEL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "machine/memctrl.hh"

namespace mintcb::verify
{

/** One observed access at the adversary's granularity: the page and
 *  the direction, never the data. */
struct PageAccess
{
    PageNum page = 0;
    bool isWrite = false;

    bool
    operator==(const PageAccess &other) const
    {
        return page == other.page && isWrite == other.isWrite;
    }
    bool operator!=(const PageAccess &other) const
    {
        return !(*this == other);
    }
};

/**
 * The recording adversary. Attach to a machine, run the victim, read
 * the trace. Only accesses inside [firstPage, lastPage] are recorded
 * (the window the hypervisor would watch, e.g. the TEE guest's data
 * region); everything else is the victim's noise floor.
 */
class PageAccessTrace final : public machine::MemAccessObserver
{
  public:
    /** Watch pages in the inclusive window [first_page, last_page]. */
    PageAccessTrace(PageNum first_page, PageNum last_page)
        : first_(first_page), last_(last_page)
    {
    }
    ~PageAccessTrace() override { detach(); }

    PageAccessTrace(const PageAccessTrace &) = delete;
    PageAccessTrace &operator=(const PageAccessTrace &) = delete;

    /** Occupy @p machine's access-observer slot. */
    void
    attach(machine::Machine &machine)
    {
        machine_ = &machine;
        machine.memctrl().setAccessObserver(this);
    }

    /** Release the observer slot (idempotent). */
    void
    detach()
    {
        if (machine_ &&
            machine_->memctrl().accessObserver() == this) {
            machine_->memctrl().setAccessObserver(nullptr);
        }
        machine_ = nullptr;
    }

    /** The ordered page-touch sequence observed so far. */
    const std::vector<PageAccess> &accesses() const { return trace_; }

    /** Forget everything recorded (window stays). */
    void clear() { trace_.clear(); }

    void
    onAccess(const machine::Agent &agent, PageNum page, bool isWrite,
             bool granted) override
    {
        (void)agent;
        (void)granted; // even a denied probe reveals the address
        if (page >= first_ && page <= last_)
            trace_.push_back({page, isWrite});
    }

  private:
    PageNum first_;
    PageNum last_;
    machine::Machine *machine_ = nullptr;
    std::vector<PageAccess> trace_;
};

/** Verdict of comparing two recorded traces. */
struct LeakReport
{
    /** True when the page-touch sequences differ anywhere -- the
     *  access pattern depends on the input, so a page-observing
     *  adversary distinguishes the two runs. */
    bool leaks = false;
    /** Index of the first differing access (or the shorter length,
     *  when one trace is a prefix of the other). */
    std::size_t firstDivergence = 0;
    std::size_t lengthA = 0;
    std::size_t lengthB = 0;

    /** One-line human-readable verdict. */
    std::string str() const;
};

/** Compare two runs' traces: identical sequences mean this adversary
 *  learned nothing; any divergence is a flagged leak. */
LeakReport accessPatternLeak(const std::vector<PageAccess> &a,
                             const std::vector<PageAccess> &b);

} // namespace mintcb::verify

#endif // MINTCB_VERIFY_SIDECHANNEL_HH
