/**
 * @file
 * Quantitative leakage scoring across the TEE backend zoo.
 *
 * The audit runs the same victim workload under K distinct secret
 * inputs on every registered backend, with the three adversary models
 * (verify/adversary.hh) recording concurrently, and estimates how many
 * bits of the secret each adversary's view reveals.
 *
 * Scoring is trace-equivalence-class entropy: with a uniform prior
 * over the K secrets, the mutual information between secret and view
 * is
 *
 *     I(secret; view) = log2(K) - sum_c (|c| / K) * log2(|c|)
 *
 * where c ranges over the equivalence classes of byte-equal views. K
 * singleton classes (every secret distinguishable) leak the full
 * log2(K) bits; one class of K (all secrets indistinguishable) leaks
 * zero. The per-backend x per-adversary matrix of these scores is what
 * tools/mintcb-audit emits and CI regression-gates against a committed
 * baseline, so a refactor that widens a channel fails loudly.
 */

#ifndef MINTCB_VERIFY_LEAKAGE_HH
#define MINTCB_VERIFY_LEAKAGE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "backend/registry.hh"
#include "common/result.hh"
#include "common/types.hh"
#include "verify/adversary.hh"

namespace mintcb::verify
{

/** Uniform-prior mutual-information estimate over one cell's views. */
struct LeakScore
{
    std::size_t secrets = 0; //!< K: victim runs scored
    std::size_t classes = 0; //!< distinct adversary views among them
    double bits = 0.0;       //!< log2(K) - sum (|c|/K) log2|c|
    double maxBits = 0.0;    //!< log2(K): ceiling for this K

    /** One-line "b of m bits (c classes / K runs)" rendering. */
    std::string str() const;
};

/** Score one view per secret: equal byte strings are one equivalence
 *  class. Pure function; K = 0 and K = 1 score zero bits. */
LeakScore scoreViews(const std::vector<Bytes> &views);

/** One backend x adversary cell of the matrix. */
struct LeakCell
{
    std::string backend;
    AdversaryKind adversary = AdversaryKind::pageTrace;
    LeakScore score;
    std::uint64_t viewBytes = 0; //!< total view volume (observability)
};

/** The per-backend x per-adversary leakage matrix. */
struct LeakMatrix
{
    Granularity granularity = Granularity::page;
    std::size_t secrets = 0;
    std::uint64_t seed = 0;
    /** Backend-major (registry order), adversary-minor (kind order). */
    std::vector<LeakCell> cells;

    /** The cell for (@p backend, @p kind), or nullptr. */
    const LeakCell *cell(const std::string &backend,
                         AdversaryKind kind) const;
    /** Leaked bits for (@p backend, @p kind); 0 when absent. */
    double bits(const std::string &backend, AdversaryKind kind) const;

    /** Human-readable table (one row per backend). */
    std::string str() const;
};

/** What to audit and how hard. Every field is deterministic input:
 *  two audits with equal configs produce byte-equal matrices. */
struct AuditConfig
{
    /** K: secrets per backend. Leak scores saturate at log2(K). */
    std::size_t secrets = 16;
    /** All secrets share this length so only *content* varies (a
     *  length channel would leak through every model trivially). */
    std::size_t secretBytes = 16;
    Granularity granularity = Granularity::page;
    /** Seeds the secret inputs and the victim machines. */
    std::uint64_t seed = 0x617564697431ull; // "audit1"
    /** Backends to audit; empty means every registered backend. */
    std::vector<std::string> backends;
};

/** The deterministic secret input for run @p k (a pure function of
 *  (config.seed, k), shared by every backend and adversary). */
Bytes auditSecret(const AuditConfig &config, std::size_t k);

/**
 * Run the audit: for every selected backend, run the echo victim under
 * K secrets on fresh same-seed machines with all three adversaries
 * attached (through the memory controller's observer fan-out), and
 * score each adversary's K views. Fails if a backend name is unknown
 * or a victim run errors.
 */
Result<LeakMatrix> auditLeakage(const backend::BackendRegistry &registry,
                                const AuditConfig &config);

} // namespace mintcb::verify

#endif // MINTCB_VERIFY_LEAKAGE_HH
