/**
 * @file
 * Happens-before race detector implementation.
 */

#include "verify/race.hh"

#include <algorithm>

namespace mintcb::verify
{

std::string
Race::str() const
{
    auto access = [](CpuId cpu, bool w) {
        return std::string(w ? "write" : "read") + " by CPU " +
               std::to_string(cpu);
    };
    return "race on page " + std::to_string(page) + ": " +
           access(firstCpu, firstIsWrite) + " unordered with " +
           access(secondCpu, secondIsWrite);
}

HbRaceDetector::HbRaceDetector(std::size_t cpus)
    : cpus_(cpus), clocks_(cpus, VectorClock(cpus))
{
}

HbRaceDetector::~HbRaceDetector()
{
    if (ctrl_)
        ctrl_->removeAccessObserver(this);
    if (exec_ && exec_->syncObserver() == this)
        exec_->setSyncObserver(nullptr);
}

void
HbRaceDetector::attach(machine::MemoryController &ctrl)
{
    ctrl_ = &ctrl;
    ctrl.addAccessObserver(this);
}

void
HbRaceDetector::attach(rec::SecureExecutive &exec)
{
    exec_ = &exec;
    exec.setSyncObserver(this);
}

void
HbRaceDetector::report(PageNum page, CpuId firstCpu, bool firstIsWrite,
                       CpuId secondCpu, bool secondIsWrite)
{
    if (!seen_.insert({page, firstCpu, secondCpu, firstIsWrite,
                       secondIsWrite})
             .second) {
        return;
    }
    if (races_.size() >= maxStoredRaces) {
        ++dropped_;
        return;
    }
    races_.push_back({page, firstCpu, firstIsWrite, secondCpu,
                      secondIsWrite});
}

void
HbRaceDetector::onAccess(const machine::Agent &agent, PageNum page,
                         std::uint32_t offset, std::uint32_t len,
                         bool isWrite, bool granted)
{
    // The happens-before discipline is page-granular (ownership moves
    // whole pages through the ACL table), so the sub-page range only
    // matters to the leakage audit, not to race detection.
    (void)offset;
    (void)len;
    // Only granted CPU accesses participate: a denied access never
    // touches memory, and DMA ordering is the DEV's problem, not the
    // inter-CPU discipline this detector checks.
    if (!granted || agent.kind != machine::Agent::Kind::cpu)
        return;
    const CpuId cpu = agent.cpu;
    if (cpu >= cpus_)
        return;
    ++accessesChecked_;

    VectorClock &vc = clocks_[cpu];
    vc.tick(cpu);
    const std::uint64_t epoch = vc.at(cpu);

    PageHistory &h = pages_[page];
    if (h.readEpochs.empty())
        h.readEpochs.assign(cpus_, 0);

    // Conflict with the last write (read/write and write/write).
    if (h.hasWrite && h.writeCpu != cpu &&
        !vc.ordersAfter(h.writeCpu, h.writeEpoch)) {
        report(page, h.writeCpu, true, cpu, isWrite);
    }
    // A write additionally conflicts with every unordered read.
    if (isWrite) {
        for (CpuId r = 0; r < cpus_; ++r) {
            if (r == cpu || h.readEpochs[r] == 0)
                continue;
            if (!vc.ordersAfter(r, h.readEpochs[r]))
                report(page, r, false, cpu, true);
        }
    }

    if (isWrite) {
        h.hasWrite = true;
        h.writeCpu = cpu;
        h.writeEpoch = epoch;
        // Prior reads are now ordered (or already reported); a future
        // access conflicting with them conflicts with this write too.
        std::fill(h.readEpochs.begin(), h.readEpochs.end(), 0);
    } else {
        h.readEpochs[cpu] = epoch;
    }
}

void
HbRaceDetector::onPalEvent(rec::ExecEvent event, CpuId cpu,
                           const rec::Secb &secb)
{
    if (cpu >= cpus_)
        return;
    ++syncEvents_;
    VectorClock &vc = clocks_[cpu];
    switch (event) {
      case rec::ExecEvent::slaunchMeasure:
      case rec::ExecEvent::slaunchResume: {
        auto it = released_.find(&secb);
        if (it != released_.end())
            vc.join(it->second);
        break;
      }
      case rec::ExecEvent::syield:
      case rec::ExecEvent::sfree:
      case rec::ExecEvent::skill: {
        VectorClock &rel = released_[&secb];
        rel.join(vc);
        break;
      }
    }
    vc.tick(cpu);
}

void
HbRaceDetector::onBarrier()
{
    ++syncEvents_;
    VectorClock merged(cpus_);
    for (const VectorClock &vc : clocks_)
        merged.join(vc);
    for (std::size_t c = 0; c < cpus_; ++c) {
        clocks_[c] = merged;
        clocks_[c].tick(c);
    }
}

void
HbRaceDetector::onShardFork(std::uint32_t shard)
{
    (void)shard; // one detector per shard; the id is bookkeeping only
    ++shardForks_;
    onBarrier();
}

void
HbRaceDetector::onShardJoin(std::uint32_t shard)
{
    (void)shard;
    ++shardJoins_;
    onBarrier();
}

std::string
HbRaceDetector::str() const
{
    std::string out = std::to_string(accessesChecked_) +
                      " accesses checked, " +
                      std::to_string(syncEvents_) + " sync events, " +
                      std::to_string(races_.size()) + " race(s)";
    if (dropped_ > 0) {
        out += " (+" + std::to_string(dropped_) +
               " beyond the " + std::to_string(maxStoredRaces) +
               "-race cap)";
    }
    for (const Race &r : races_)
        out += "\n  " + r.str();
    return out;
}

} // namespace mintcb::verify
