/**
 * @file
 * Invariant catalog implementation.
 */

#include "verify/invariants.hh"

#include <algorithm>

#include "common/bytebuf.hh"

namespace mintcb::verify
{

namespace
{

const char *
pageStateName(machine::PageState s)
{
    switch (s) {
      case machine::PageState::all:
        return "ALL";
      case machine::PageState::owned:
        return "CPUi";
      case machine::PageState::none:
        return "NONE";
    }
    return "?";
}

bool
palIsLive(const PalView &pal)
{
    return pal.state == rec::PalState::execute ||
           pal.state == rec::PalState::suspend;
}

Status
violation(const char *name, const std::string &detail)
{
    return Error(Errc::failedPrecondition,
                 std::string("invariant ") + name + " violated: " +
                     detail);
}

Status
checkPageOwnershipExclusion(const WorldSnapshot &w)
{
    for (PageNum p = 0; p < w.pages.size(); ++p) {
        const PageView &page = w.pages[p];
        if (page.state == machine::PageState::all) {
            if (page.ownerMask != 0) {
                return violation("page-ownership-exclusion",
                                 "ALL page " + std::to_string(p) +
                                     " carries an owner mask");
            }
            continue;
        }
        if (page.ownerMask == 0 &&
            page.state == machine::PageState::owned) {
            return violation("page-ownership-exclusion",
                             "owned page " + std::to_string(p) +
                                 " has no owner");
        }
        // The page must belong to exactly one PAL's allocation, and its
        // owner mask must cover only CPUs running that PAL.
        std::size_t holders = 0;
        std::optional<std::size_t> holder;
        for (std::size_t i = 0; i < w.pals.size(); ++i) {
            const PalView &pal = w.pals[i];
            if (std::find(pal.pages.begin(), pal.pages.end(), p) !=
                pal.pages.end()) {
                ++holders;
                holder = i;
            }
        }
        if (holders != 1) {
            return violation(
                "page-ownership-exclusion",
                "non-ALL page " + std::to_string(p) + " appears in " +
                    std::to_string(holders) + " PAL allocations");
        }
        std::uint64_t running_mask = 0;
        if (w.pals[*holder].runningOn)
            running_mask = 1ull << *w.pals[*holder].runningOn;
        if (page.state == machine::PageState::owned &&
            (page.ownerMask & ~running_mask) != 0) {
            return violation(
                "page-ownership-exclusion",
                "page " + std::to_string(p) +
                    " is readable by a CPU not running its PAL (mask " +
                    std::to_string(page.ownerMask) + ")");
        }
    }
    return okStatus();
}

Status
checkExecutingPalOwnsPages(const WorldSnapshot &w)
{
    for (std::size_t i = 0; i < w.pals.size(); ++i) {
        const PalView &pal = w.pals[i];
        if (pal.state != rec::PalState::execute)
            continue;
        if (!pal.runningOn) {
            return violation("executing-pal-owns-pages",
                             "PAL " + std::to_string(i) +
                                 " executes on no CPU");
        }
        for (PageNum p : pal.pages) {
            const PageView &page = w.pages.at(p);
            if (page.state != machine::PageState::owned ||
                page.ownerMask != (1ull << *pal.runningOn)) {
                return violation(
                    "executing-pal-owns-pages",
                    "PAL " + std::to_string(i) + " executes on CPU " +
                        std::to_string(*pal.runningOn) + " but page " +
                        std::to_string(p) + " is " +
                        pageStateName(page.state) + "/mask " +
                        std::to_string(page.ownerMask));
            }
        }
    }
    return okStatus();
}

Status
checkSuspendedPalPagesNone(const WorldSnapshot &w)
{
    for (std::size_t i = 0; i < w.pals.size(); ++i) {
        const PalView &pal = w.pals[i];
        if (pal.state != rec::PalState::suspend)
            continue;
        for (PageNum p : pal.pages) {
            if (w.pages.at(p).state != machine::PageState::none) {
                return violation(
                    "suspended-pal-pages-none",
                    "suspended PAL " + std::to_string(i) + "'s page " +
                        std::to_string(p) + " is " +
                        pageStateName(w.pages.at(p).state) +
                        " (must be NONE)");
            }
        }
    }
    return okStatus();
}

Status
checkInactivePalFullyRevoked(const WorldSnapshot &w)
{
    for (std::size_t i = 0; i < w.pals.size(); ++i) {
        const PalView &pal = w.pals[i];
        if (palIsLive(pal))
            continue;
        for (PageNum p : pal.pages) {
            if (w.pages.at(p).state != machine::PageState::all) {
                return violation(
                    "inactive-pal-fully-revoked",
                    "PAL " + std::to_string(i) + " is " +
                        rec::palStateName(pal.state) + " but page " +
                        std::to_string(p) + " is still " +
                        pageStateName(w.pages.at(p).state));
            }
        }
        if (pal.state == rec::PalState::done && pal.sePcr &&
            w.sePcrs.at(*pal.sePcr).state == rec::SePcrState::exclusive) {
            return violation("inactive-pal-fully-revoked",
                             "done PAL " + std::to_string(i) +
                                 " still binds sePCR " +
                                 std::to_string(*pal.sePcr) +
                                 " in Exclusive");
        }
    }
    return okStatus();
}

Status
checkSePcrExclusiveBinding(const WorldSnapshot &w)
{
    // No two PALs may reference the same handle.
    for (std::size_t i = 0; i < w.pals.size(); ++i) {
        for (std::size_t j = i + 1; j < w.pals.size(); ++j) {
            if (w.pals[i].sePcr && w.pals[j].sePcr &&
                *w.pals[i].sePcr == *w.pals[j].sePcr) {
                return violation(
                    "sepcr-exclusive-binding",
                    "PALs " + std::to_string(i) + " and " +
                        std::to_string(j) + " both bind sePCR " +
                        std::to_string(*w.pals[i].sePcr));
            }
        }
    }
    for (std::size_t i = 0; i < w.pals.size(); ++i) {
        const PalView &pal = w.pals[i];
        if (!pal.sePcr)
            continue;
        const rec::SePcrState s = w.sePcrs.at(*pal.sePcr).state;
        if (palIsLive(pal) && s != rec::SePcrState::exclusive) {
            return violation(
                "sepcr-exclusive-binding",
                "live PAL " + std::to_string(i) + " binds sePCR " +
                    std::to_string(*pal.sePcr) + " in state " +
                    rec::sePcrStateName(s));
        }
        if (pal.state == rec::PalState::done &&
            s == rec::SePcrState::free) {
            return violation(
                "sepcr-exclusive-binding",
                "done PAL " + std::to_string(i) +
                    " references already-freed sePCR " +
                    std::to_string(*pal.sePcr) +
                    " (stale handle not cleared)");
        }
    }
    // Every Exclusive sePCR must be accounted for by a live PAL.
    for (std::size_t h = 0; h < w.sePcrs.size(); ++h) {
        if (w.sePcrs[h].state != rec::SePcrState::exclusive)
            continue;
        bool bound = false;
        for (const PalView &pal : w.pals) {
            bound |= palIsLive(pal) && pal.sePcr &&
                     *pal.sePcr == static_cast<rec::SePcrHandle>(h);
        }
        if (!bound) {
            return violation("sepcr-exclusive-binding",
                             "Exclusive sePCR " + std::to_string(h) +
                                 " is bound to no live PAL");
        }
    }
    return okStatus();
}

Status
checkCpuRunsOnePal(const WorldSnapshot &w)
{
    for (std::size_t i = 0; i < w.pals.size(); ++i) {
        const PalView &a = w.pals[i];
        if (a.state == rec::PalState::execute && !a.runningOn) {
            return violation("cpu-runs-one-pal",
                             "executing PAL " + std::to_string(i) +
                                 " has no CPU");
        }
        if (a.state != rec::PalState::execute && a.runningOn) {
            return violation("cpu-runs-one-pal",
                             "non-executing PAL " + std::to_string(i) +
                                 " claims CPU " +
                                 std::to_string(*a.runningOn));
        }
        for (std::size_t j = i + 1; j < w.pals.size(); ++j) {
            const PalView &b = w.pals[j];
            if (a.runningOn && b.runningOn &&
                *a.runningOn == *b.runningOn) {
                return violation(
                    "cpu-runs-one-pal",
                    "PALs " + std::to_string(i) + " and " +
                        std::to_string(j) + " both execute on CPU " +
                        std::to_string(*a.runningOn));
            }
        }
    }
    return okStatus();
}

} // namespace

Bytes
WorldSnapshot::encode() const
{
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(pages.size()));
    for (const PageView &p : pages) {
        w.u8(static_cast<std::uint8_t>(p.state));
        w.u64(p.ownerMask);
    }
    w.u32(static_cast<std::uint32_t>(sePcrs.size()));
    for (const SePcrView &s : sePcrs)
        w.u8(static_cast<std::uint8_t>(s.state));
    w.u32(static_cast<std::uint32_t>(pals.size()));
    for (const PalView &p : pals) {
        w.u8(static_cast<std::uint8_t>(p.state));
        w.u8(p.runningOn ? 1 : 0);
        w.u32(p.runningOn ? *p.runningOn : 0);
        w.u8(p.sePcr ? 1 : 0);
        w.u32(p.sePcr ? *p.sePcr : 0);
        w.u8(p.measuredFlag ? 1 : 0);
        w.u32(static_cast<std::uint32_t>(p.pages.size()));
        for (PageNum pg : p.pages)
            w.u64(pg);
    }
    return w.take();
}

std::string
WorldSnapshot::str() const
{
    std::string out = "pages:";
    for (PageNum p = 0; p < pages.size(); ++p) {
        out += ' ';
        out += std::to_string(p);
        out += '=';
        out += pageStateName(pages[p].state);
        if (pages[p].ownerMask) {
            out += "/m";
            out += std::to_string(pages[p].ownerMask);
        }
    }
    out += "\nsePCRs:";
    for (std::size_t h = 0; h < sePcrs.size(); ++h) {
        out += ' ';
        out += std::to_string(h);
        out += '=';
        out += rec::sePcrStateName(sePcrs[h].state);
    }
    out += "\nPALs:";
    for (std::size_t i = 0; i < pals.size(); ++i) {
        const PalView &pal = pals[i];
        out += ' ';
        out += std::to_string(i);
        out += '=';
        out += rec::palStateName(pal.state);
        if (pal.runningOn) {
            out += "@cpu";
            out += std::to_string(*pal.runningOn);
        }
        if (pal.sePcr) {
            out += "/sePCR";
            out += std::to_string(*pal.sePcr);
        }
    }
    return out;
}

const std::vector<Invariant> &
invariantCatalog()
{
    static const std::vector<Invariant> catalog = {
        {"page-ownership-exclusion",
         "a non-ALL page belongs to exactly one PAL and is readable "
         "only by CPUs running that PAL",
         &checkPageOwnershipExclusion},
        {"executing-pal-owns-pages",
         "a PAL in Execute holds every page in CPUi, owned by exactly "
         "its CPU",
         &checkExecutingPalOwnsPages},
        {"suspended-pal-pages-none",
         "a suspended PAL's pages are all NONE",
         &checkSuspendedPalPagesNone},
        {"inactive-pal-fully-revoked",
         "a PAL in Start or Done holds no page and no Exclusive sePCR",
         &checkInactivePalFullyRevoked},
        {"sepcr-exclusive-binding",
         "an Exclusive sePCR is bound to exactly one live PAL",
         &checkSePcrExclusiveBinding},
        {"cpu-runs-one-pal",
         "no CPU executes two PALs at once",
         &checkCpuRunsOnePal},
    };
    return catalog;
}

Status
checkAllInvariants(const WorldSnapshot &snapshot)
{
    for (const Invariant &inv : invariantCatalog()) {
        if (auto s = inv.check(snapshot); !s.ok())
            return s;
    }
    return okStatus();
}

} // namespace mintcb::verify
