/**
 * @file
 * Breadth-first state-space walk.
 */

#include "verify/explorer.hh"

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>
#include <string>
#include <unordered_set>

namespace mintcb::verify
{

namespace
{

/** FNV-1a over the canonical snapshot encoding. */
struct BytesHash
{
    std::size_t
    operator()(const Bytes &b) const
    {
        std::size_t h = 1469598103934665603ull;
        for (std::uint8_t v : b) {
            h ^= v;
            h *= 1099511628211ull;
        }
        return h;
    }
};

/** A discovered state: the action path that first reached it. */
struct Node
{
    std::vector<Action> path;
};

} // namespace

std::string
Counterexample::str() const
{
    std::string out = "counterexample (" +
                      std::to_string(trace.size()) + " steps):\n";
    for (std::size_t i = 0; i < trace.size(); ++i) {
        out += "  ";
        out += std::to_string(i + 1);
        out += ". ";
        out += trace[i];
        out += '\n';
    }
    out += "violation: " + violation + "\n";
    out += "state:\n" + stateDump + "\n";
    return out;
}

std::string
ExploreResult::str() const
{
    std::string out = std::to_string(statesExplored) + " states, " +
                      std::to_string(transitionsTaken) +
                      " transitions, depth " +
                      std::to_string(maxDepthReached);
    if (truncated)
        out += " [TRUNCATED: limits hit, coverage incomplete]";
    if (counterexample)
        out += "\n" + counterexample->str();
    else
        out += "; all invariants hold";
    return out;
}

StateExplorer::StateExplorer(const ModelConfig &config, Mutation mutation,
                             ExploreLimits limits)
    : config_(config), mutation_(mutation), limits_(limits)
{
}

ExploreResult
StateExplorer::run()
{
    ExploreResult result;
    std::unordered_set<Bytes, BytesHash> seen;
    std::deque<Node> frontier;

    auto check_state = [&](const World &world,
                           const std::vector<Action> &path)
        -> std::optional<Counterexample> {
        const WorldSnapshot snap = world.snapshot();
        Status verdict = checkAllInvariants(snap);
        if (verdict.ok())
            verdict = world.crossCheckAccess();
        if (verdict.ok())
            return std::nullopt;
        Counterexample cx;
        for (const Action &a : path)
            cx.trace.push_back(a.str());
        cx.violation = verdict.error().str();
        cx.stateDump = snap.str();
        return cx;
    };

    {
        World initial(config_, mutation_);
        seen.insert(initial.snapshot().encode());
        result.statesExplored = 1;
        if (auto cx = check_state(initial, {})) {
            result.counterexample = std::move(cx);
            return result;
        }
        frontier.push_back(Node{});
    }

    while (!frontier.empty()) {
        const Node node = std::move(frontier.front());
        frontier.pop_front();
        if (node.path.size() >= limits_.maxDepth) {
            result.truncated = true;
            continue;
        }

        // Rebuild the node's world once; after an accepted candidate
        // mutates it, rebuild again for the next candidate. Rejected
        // candidates leave the world untouched (World::apply contract).
        auto rebuild = [&](const std::vector<Action> &path) {
            auto w = std::make_unique<World>(config_, mutation_);
            for (const Action &a : path) {
                const Status replayed = w->apply(a);
                assert(replayed.ok() && "recorded path must replay");
                static_cast<void>(replayed);
            }
            return w;
        };
        std::unique_ptr<World> world = rebuild(node.path);
        bool dirty = false;

        for (const Action &candidate : world->candidateActions()) {
            if (dirty) {
                world = rebuild(node.path);
                dirty = false;
            }
            if (!world->apply(candidate).ok())
                continue; // refused: enforcement, not a violation
            dirty = true;
            ++result.transitionsTaken;

            const Bytes fingerprint = world->snapshot().encode();
            if (!seen.insert(fingerprint).second)
                continue; // already explored via a shorter-or-equal path

            std::vector<Action> path = node.path;
            path.push_back(candidate);
            result.maxDepthReached =
                std::max(result.maxDepthReached, path.size());

            if (auto cx = check_state(*world, path)) {
                result.counterexample = std::move(cx);
                ++result.statesExplored;
                return result;
            }

            ++result.statesExplored;
            if (result.statesExplored >= limits_.maxStates) {
                result.truncated = true;
                return result;
            }
            frontier.push_back(Node{std::move(path)});
        }
    }
    return result;
}

} // namespace mintcb::verify
