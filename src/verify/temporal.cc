/**
 * @file
 * Temporal-property checker implementation.
 */

#include "verify/temporal.hh"

#include <map>

#include "rec/lifecycle.hh"

namespace mintcb::verify
{

std::string
TemporalFinding::str() const
{
    return "[" + property + "] at event " + std::to_string(seq) + ": " +
           detail;
}

std::string
TemporalReport::str() const
{
    if (findings.empty())
        return "all temporal properties hold";
    std::string out =
        std::to_string(findings.size()) + " temporal finding(s):\n";
    for (const TemporalFinding &f : findings) {
        out += "  ";
        out += f.str();
        out += '\n';
    }
    return out;
}

TemporalReport
checkTemporal(const ExecutionTrace &trace)
{
    using rec::PalState;

    TemporalReport report;
    auto finding = [&](const char *property, std::uint64_t seq,
                       std::string detail) {
        report.findings.push_back(
            {property, seq, std::move(detail)});
    };

    // Per-PAL lifecycle replay; rec::checkTransition decides legality.
    std::map<std::string, PalState> pals;
    auto step = [&](const TraceEvent &e, PalState to) {
        auto it = pals.find(e.subject);
        const PalState from =
            it == pals.end() ? PalState::start : it->second;
        if (auto s = rec::checkTransition(from, to); !s.ok()) {
            finding("lifecycle", e.seq,
                    e.subject + ": " + std::string(traceEventKindName(
                                           e.kind)) +
                        " -- " + s.error().str());
        }
        pals[e.subject] = to;
    };

    // Session protocol: opened / resumed / closed / used.
    bool sessionOpened = false; //!< ever opened
    bool sessionLive = false;   //!< open and not yet closed

    for (const TraceEvent &e : trace.events()) {
        switch (e.kind) {
          case TraceEventKind::slaunch:
            step(e, PalState::execute);
            break;
          case TraceEventKind::syield:
            step(e, PalState::suspend);
            break;
          case TraceEventKind::sfree:
          case TraceEventKind::skill:
            step(e, PalState::done);
            break;
          case TraceEventKind::barrier:
          case TraceEventKind::drainBegin:
          case TraceEventKind::drainEnd:
            break;
          case TraceEventKind::sessionOpen:
            sessionOpened = true;
            sessionLive = true;
            break;
          case TraceEventKind::sessionResume:
            if (!sessionOpened) {
                finding("session-resume-before-open", e.seq,
                        "transport session resumed but never opened");
            } else if (!sessionLive) {
                finding("session-use-after-close", e.seq,
                        "transport session resumed after close");
            }
            break;
          case TraceEventKind::sessionClose:
            if (!sessionLive) {
                finding("session-close", e.seq,
                        "close without a live transport session");
            }
            sessionLive = false;
            break;
          case TraceEventKind::transportExchange:
            if (!sessionLive) {
                finding("session-use-after-close", e.seq,
                        sessionOpened
                            ? "transport exchange after session close"
                            : "transport exchange before session open");
            }
            break;
        }
    }

    // Liveness at end of trace: every launched PAL reached Done, so its
    // pages and sePCR were surrendered (SFREE or SKILL happened).
    for (const auto &[name, state] : pals) {
        if (state != PalState::done) {
            finding("slaunch-unpaired", trace.size(),
                    name + " ends the trace in state " +
                        std::string(rec::palStateName(state)) +
                        " (no SFREE/SKILL)");
        }
    }
    return report;
}

TemporalReport
lintMetrics(const sea::ServiceMetrics &metrics)
{
    TemporalReport report;
    auto require = [&](bool ok, const char *property,
                       std::string detail) {
        if (!ok)
            report.findings.push_back({property, 0, std::move(detail)});
    };

    require(metrics.completed <= metrics.submitted, "metrics-accounting",
            "completed (" + std::to_string(metrics.completed) +
                ") exceeds submitted (" +
                std::to_string(metrics.submitted) + ")");
    require(metrics.failed <= metrics.completed, "metrics-accounting",
            "failed (" + std::to_string(metrics.failed) +
                ") exceeds completed (" +
                std::to_string(metrics.completed) + ")");
    require(metrics.deadlinesMissed <= metrics.completed,
            "metrics-accounting",
            "deadlinesMissed (" + std::to_string(metrics.deadlinesMissed) +
                ") exceeds completed (" +
                std::to_string(metrics.completed) + ")");
    require(metrics.auditExchanges <= metrics.auditCommands,
            "metrics-accounting",
            "auditExchanges (" + std::to_string(metrics.auditExchanges) +
                ") exceeds auditCommands (" +
                std::to_string(metrics.auditCommands) +
                "): batching can only coalesce");
    if (metrics.failed <= metrics.completed) {
        require(metrics.launches >= metrics.completed - metrics.failed,
                "metrics-accounting",
                "fewer launches (" + std::to_string(metrics.launches) +
                    ") than successful completions");
    }
    return report;
}

} // namespace mintcb::verify
