/**
 * @file
 * Store-lifecycle model checker implementation.
 *
 * Unlike the protection-state explorer (replay-based), lifecycle
 * states are tiny plain structs, so the walk copies worlds directly
 * and keeps a parent pointer per discovered state for counterexample
 * reconstruction.
 */

#include "verify/storemodel.hh"

#include <deque>
#include <functional>
#include <sstream>
#include <unordered_map>

namespace mintcb::verify
{

namespace
{

/** One machine's view of the store: the untrusted disk (epoch), the
 *  trusted chip (counter), and the engine lifecycle bits. */
struct Replica
{
    bool admitted = false;    //!< identity PAL late-launched
    bool live = false;        //!< engine open and serving
    bool invalidated = false; //!< counter advanced with no commit
    bool hasData = false;     //!< disk holds the dataset lineage
    std::uint64_t diskEpoch = 0;
    std::uint64_t counter = 0;
    /** Highest epoch this machine ever served live (history variable
     *  for the monotonicity invariant; not part of the real engine). */
    std::uint64_t servedFloor = 0;
};

struct World
{
    std::vector<Replica> replicas;

    std::string key() const
    {
        std::ostringstream os;
        for (const Replica &r : replicas) {
            os << r.admitted << r.live << r.invalidated << r.hasData
               << ':' << r.diskEpoch << ':' << r.counter << ':'
               << r.servedFloor << '|';
        }
        return os.str();
    }

    std::string dump() const
    {
        std::ostringstream os;
        for (std::size_t i = 0; i < replicas.size(); ++i) {
            const Replica &r = replicas[i];
            os << "machine " << i << ": "
               << (r.admitted ? "admitted" : "unadmitted") << ' '
               << (r.live ? "live" : "closed")
               << (r.invalidated ? " invalidated" : "")
               << (r.hasData ? " data" : " empty") << " epoch="
               << r.diskEpoch << " counter=" << r.counter
               << " servedFloor=" << r.servedFloor << '\n';
        }
        return os.str();
    }
};

/** A candidate successor: the action label plus the resulting world.
 *  `violation` is set when the action itself crossed an invariant
 *  (monotonicity is a property of the *act* of going live). */
struct Successor
{
    std::string action;
    World world;
    std::string violation;
};

/** Invariants 1 and 3 are state predicates, checked on every state. */
std::string
checkStatePredicates(const World &w)
{
    std::size_t liveReplicas = 0;
    for (std::size_t i = 0; i < w.replicas.size(); ++i) {
        const Replica &r = w.replicas[i];
        if (r.live && !r.admitted) {
            return "machine " + std::to_string(i) +
                   " unsealed without an admitted identity PAL";
        }
        if (r.live && r.hasData)
            ++liveReplicas;
    }
    if (liveReplicas > 1) {
        return std::to_string(liveReplicas) +
               " live replicas of one dataset (migration must leave "
               "exactly one)";
    }
    return {};
}

/** Enumerate every action enabled in @p w. */
std::vector<Successor>
successors(const World &w, const StoreModelConfig &cfg)
{
    std::vector<Successor> out;
    const auto n = w.replicas.size();

    auto add = [&](std::string action,
                   const std::function<void(World &, Successor &)> &fn) {
        Successor s;
        s.action = std::move(action);
        s.world = w;
        fn(s.world, s);
        out.push_back(std::move(s));
    };

    for (std::size_t i = 0; i < n; ++i) {
        const Replica &r = w.replicas[i];
        const std::string mi = std::to_string(i);

        // Late-launch the identity PAL; a one-way gate.
        if (!r.admitted) {
            add("admit(" + mi + ")",
                [i](World &nw, Successor &) { nw.replicas[i].admitted = true; });
        }

        // Open: unseal the disk state and serve it. The real engine
        // refuses when the sealed epoch trails the hardware counter
        // (rollback) and forward-repairs a counter exactly one behind
        // (commit durable, increment lost).
        const bool admissionOk =
            r.admitted ||
            cfg.mutation == StoreMutation::openWithoutAdmission;
        if (!r.live && r.hasData && admissionOk) {
            const bool counterOk =
                cfg.mutation == StoreMutation::ignoreCounter ||
                (r.diskEpoch >= r.counter &&
                 r.diskEpoch <= r.counter + 1);
            if (counterOk) {
                add("open(" + mi + ")", [i](World &nw, Successor &s) {
                    Replica &nr = nw.replicas[i];
                    if (nr.counter + 1 == nr.diskEpoch)
                        nr.counter = nr.diskEpoch; // forward repair
                    nr.live = true;
                    if (nr.diskEpoch < nr.servedFloor) {
                        s.violation =
                            "machine " + std::to_string(i) +
                            " served epoch " +
                            std::to_string(nr.diskEpoch) +
                            " after already serving epoch " +
                            std::to_string(nr.servedFloor) +
                            " (stale replay accepted)";
                    }
                    if (nr.diskEpoch > nr.servedFloor)
                        nr.servedFloor = nr.diskEpoch;
                });
            }
        }

        if (r.live && r.diskEpoch < cfg.maxEpoch) {
            // A durable commit: epoch and counter advance together,
            // and the live store is now serving the new epoch.
            add("commit(" + mi + ")", [i](World &nw, Successor &) {
                Replica &nr = nw.replicas[i];
                ++nr.diskEpoch;
                ++nr.counter;
                nr.servedFloor = nr.diskEpoch;
            });
            // Power loss between fsync and counter increment: the
            // commit is on disk, the counter is one behind. commit()
            // never returned, so the floor does NOT advance -- the
            // freshness guarantee covers exactly the commits that were
            // acknowledged.
            add("crashMidCommit(" + mi + ")",
                [i](World &nw, Successor &) {
                    Replica &nr = nw.replicas[i];
                    ++nr.diskEpoch;
                    nr.live = false;
                });
        }

        if (r.live) {
            add("crash(" + mi + ")", [i](World &nw, Successor &) {
                nw.replicas[i].live = false;
            });
        }

        // The adversary swaps in any older disk image it captured.
        // Only the directory rolls back -- never the chip.
        if (cfg.adversaryReplay && !r.live && r.hasData) {
            for (std::uint64_t e = 0; e < r.diskEpoch; ++e) {
                add("replayStale(" + mi + ",epoch=" + std::to_string(e) +
                        ")",
                    [i, e](World &nw, Successor &) {
                        nw.replicas[i].diskEpoch = e;
                    });
            }
        }

        // Attested migration to an empty admitted target: the target
        // adopts at a fresh epoch and commits; the source's counter
        // advances with no matching commit, bricking its directory.
        if (r.live && r.hasData) {
            for (std::size_t j = 0; j < n; ++j) {
                const Replica &t = w.replicas[j];
                if (j == i || t.live || t.hasData || !t.admitted)
                    continue;
                add("migrate(" + mi + "->" + std::to_string(j) + ")",
                    [i, j, &cfg](World &nw, Successor &s) {
                        Replica &src = nw.replicas[i];
                        Replica &dst = nw.replicas[j];
                        src.live = false;
                        if (cfg.mutation !=
                            StoreMutation::skipInvalidate) {
                            ++src.counter;
                            src.invalidated = true;
                        }
                        dst.hasData = true;
                        dst.diskEpoch = dst.counter + 1;
                        dst.counter = dst.diskEpoch;
                        dst.live = true;
                        if (dst.diskEpoch < dst.servedFloor) {
                            s.violation =
                                "migration target served epoch " +
                                std::to_string(dst.diskEpoch) +
                                " below its floor " +
                                std::to_string(dst.servedFloor);
                        }
                        if (dst.diskEpoch > dst.servedFloor)
                            dst.servedFloor = dst.diskEpoch;
                    });
            }
        }
    }
    return out;
}

} // namespace

const char *
storeMutationName(StoreMutation m)
{
    switch (m) {
    case StoreMutation::none:
        return "none";
    case StoreMutation::ignoreCounter:
        return "ignore-counter";
    case StoreMutation::skipInvalidate:
        return "skip-invalidate";
    case StoreMutation::openWithoutAdmission:
        return "open-without-admission";
    }
    return "?";
}

std::string
StoreCounterexample::str() const
{
    std::ostringstream os;
    os << "violation: " << violation << "\ntrace (" << trace.size()
       << " actions):\n";
    for (const std::string &a : trace)
        os << "  " << a << '\n';
    return os.str();
}

std::string
StoreExploreResult::str() const
{
    std::ostringstream os;
    os << "states=" << statesExplored
       << " transitions=" << transitionsTaken
       << (truncated ? " TRUNCATED" : "");
    if (counterexample)
        os << '\n' << counterexample->str();
    return os.str();
}

StoreLifecycleExplorer::StoreLifecycleExplorer(StoreModelConfig config)
    : config_(config)
{
}

StoreExploreResult
StoreLifecycleExplorer::run()
{
    StoreExploreResult result;

    struct Node
    {
        World world;
        std::size_t parent;
        std::string action;
    };

    World initial;
    initial.replicas.resize(
        static_cast<std::size_t>(config_.machines > 0 ? config_.machines
                                                      : 1));
    initial.replicas[0].hasData = true; // machine 0 owns the dataset

    std::vector<Node> nodes;
    nodes.push_back({initial, 0, {}});
    std::unordered_map<std::string, std::size_t> seen;
    seen.emplace(initial.key(), 0);
    std::deque<std::size_t> frontier{0};

    auto traceTo = [&](std::size_t idx, const std::string &last) {
        std::vector<std::string> trace;
        if (!last.empty())
            trace.push_back(last);
        while (idx != 0) {
            trace.push_back(nodes[idx].action);
            idx = nodes[idx].parent;
        }
        std::vector<std::string> fwd(trace.rbegin(), trace.rend());
        return fwd;
    };

    while (!frontier.empty()) {
        const std::size_t at = frontier.front();
        frontier.pop_front();
        ++result.statesExplored;

        // Copy: successors() may grow `nodes` and invalidate refs.
        const World here = nodes[at].world;
        for (Successor &next : successors(here, config_)) {
            ++result.transitionsTaken;

            std::string violation = next.violation;
            if (violation.empty())
                violation = checkStatePredicates(next.world);
            if (!violation.empty()) {
                StoreCounterexample cx;
                cx.trace = traceTo(at, next.action);
                cx.violation =
                    violation + "\n" + next.world.dump();
                result.counterexample = std::move(cx);
                return result;
            }

            const std::string key = next.world.key();
            if (seen.count(key) != 0)
                continue;
            if (nodes.size() >= config_.maxStates) {
                result.truncated = true;
                return result;
            }
            seen.emplace(key, nodes.size());
            frontier.push_back(nodes.size());
            nodes.push_back(
                {std::move(next.world), at, std::move(next.action)});
        }
    }
    return result;
}

} // namespace mintcb::verify
