/**
 * @file
 * Recorded execution traces for offline lint checking.
 *
 * A TraceRecorder rides on the ExecSyncObserver / ServiceObserver hooks
 * and appends every life-cycle and transport milestone to an
 * ExecutionTrace. The trace serializes to the repo's canonical
 * big-endian encoding, so a run can be recorded once and linted later
 * (tools/mintcb-lint) against the temporal properties in temporal.hh.
 */

#ifndef MINTCB_VERIFY_TRACE_HH
#define MINTCB_VERIFY_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/simtime.hh"
#include "common/types.hh"
#include "rec/instructions.hh"
#include "sea/service.hh"

namespace mintcb::verify
{

/** What happened (wire values are part of the trace format). */
enum class TraceEventKind : std::uint8_t
{
    slaunch = 1,       //!< subject = PAL name, arg = 1 if resume
    syield = 2,        //!< subject = PAL name
    sfree = 3,         //!< subject = PAL name
    skill = 4,         //!< subject = PAL name
    barrier = 5,       //!< scheduler round barrier
    drainBegin = 6,    //!< arg = requests claimed
    drainEnd = 7,      //!< arg = reports returned
    sessionOpen = 8,   //!< transport session key exchange
    sessionResume = 9, //!< arg = rekey epoch
    sessionClose = 10, //!< harness-noted session teardown
    transportExchange = 11, //!< arg = commands in the exchange
};

const char *traceEventKindName(TraceEventKind k);

/** One recorded milestone. */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::barrier;
    std::uint64_t seq = 0;   //!< position in the trace (0-based)
    CpuId cpu = 0;           //!< reporting CPU (0 for service events)
    std::string subject;     //!< PAL name; empty for platform events
    std::uint64_t arg = 0;   //!< kind-specific payload
    /** Simulated time on the reporting clock. Epoch (zero) in traces
     *  decoded from the v1 format, which carried no timestamps. */
    TimePoint at;

    std::string str() const;
};

/** An append-only sequence of TraceEvents with a canonical encoding.
 *  Encodes as format v2 ("MTL2", per-event sim-time); decode() also
 *  accepts v1 ("MTL1") blobs, whose events get a zero timestamp. */
class ExecutionTrace
{
  public:
    void append(TraceEventKind kind, CpuId cpu, std::string subject,
                std::uint64_t arg = 0, TimePoint at = {});

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** Canonical big-endian serialization (versioned). */
    Bytes encode() const;
    /** Inverse of encode(); rejects truncated or trailing bytes. */
    static Result<ExecutionTrace> decode(const Bytes &blob);

    std::string str() const;

  private:
    std::vector<TraceEvent> events_;
};

/**
 * Observer that records a live run into an ExecutionTrace. Attach to a
 * SecureExecutive, an ExecutionService, or both; the recorder detaches
 * itself on destruction.
 */
class TraceRecorder : public rec::ExecSyncObserver,
                      public sea::ServiceObserver
{
  public:
    explicit TraceRecorder(ExecutionTrace &trace) : trace_(trace) {}
    ~TraceRecorder() override;

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    void attach(rec::SecureExecutive &exec);
    void attach(sea::ExecutionService &service);

    /** @name ExecSyncObserver. @{ */
    void onPalEvent(rec::ExecEvent event, CpuId cpu,
                    const rec::Secb &secb) override;
    void onBarrier() override;
    /** @} */

    /** @name ServiceObserver. @{ */
    void onDrainBegin(std::size_t queued) override;
    void onDrainEnd(std::size_t completed) override;
    void onSessionOpened() override;
    void onSessionResumed(std::uint64_t epoch) override;
    void onAuditExchange(std::size_t commands) override;
    /** @} */

    /** The service model never tears sessions down; a harness that does
     *  (or a synthetic trace) marks the closure explicitly so the
     *  no-use-after-close property has teeth. */
    void noteSessionClose();

  private:
    /** Sim-time on @p cpu's clock (epoch before any attach()). */
    TimePoint stamp(CpuId cpu) const;

    ExecutionTrace &trace_;
    rec::SecureExecutive *exec_ = nullptr;
    sea::ExecutionService *service_ = nullptr;
};

} // namespace mintcb::verify

#endif // MINTCB_VERIFY_TRACE_HH
