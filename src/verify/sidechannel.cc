/**
 * @file
 * Access-pattern leak detection implementation.
 */

#include "verify/sidechannel.hh"

#include <algorithm>
#include <sstream>

namespace mintcb::verify
{

const char *
granularityName(Granularity g)
{
    return g == Granularity::page ? "page" : "cache-line";
}

std::string
LeakReport::str() const
{
    std::ostringstream out;
    if (!leaks) {
        out << "no access-pattern leak (" << lengthA
            << " accesses, traces identical)";
        return out.str();
    }
    out << "ACCESS-PATTERN LEAK: traces diverge at access "
        << firstDivergence << " (lengths " << lengthA << " vs "
        << lengthB << ")";
    return out.str();
}

LeakReport
accessPatternLeak(const std::vector<PageAccess> &a,
                  const std::vector<PageAccess> &b)
{
    LeakReport report;
    report.lengthA = a.size();
    report.lengthB = b.size();
    const std::size_t common = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < common; ++i) {
        if (a[i] != b[i]) {
            report.leaks = true;
            report.firstDivergence = i;
            return report;
        }
    }
    if (a.size() != b.size()) {
        report.leaks = true;
        report.firstDivergence = common;
    }
    return report;
}

} // namespace mintcb::verify
