/**
 * @file
 * Execution-trace recording and serialization.
 */

#include "verify/trace.hh"

#include "common/bytebuf.hh"

namespace mintcb::verify
{

namespace
{

constexpr std::uint32_t traceMagicV1 = 0x4d544c31; // "MTL1": no times
constexpr std::uint32_t traceMagicV2 = 0x4d544c32; // "MTL2": + sim-time
constexpr std::uint8_t kindMin = 1;
constexpr std::uint8_t kindMax =
    static_cast<std::uint8_t>(TraceEventKind::transportExchange);

} // namespace

const char *
traceEventKindName(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::slaunch: return "slaunch";
      case TraceEventKind::syield: return "syield";
      case TraceEventKind::sfree: return "sfree";
      case TraceEventKind::skill: return "skill";
      case TraceEventKind::barrier: return "barrier";
      case TraceEventKind::drainBegin: return "drain-begin";
      case TraceEventKind::drainEnd: return "drain-end";
      case TraceEventKind::sessionOpen: return "session-open";
      case TraceEventKind::sessionResume: return "session-resume";
      case TraceEventKind::sessionClose: return "session-close";
      case TraceEventKind::transportExchange: return "transport-exchange";
    }
    return "?";
}

std::string
TraceEvent::str() const
{
    std::string out = std::to_string(seq) + ": " +
                      traceEventKindName(kind);
    if (!subject.empty())
        out += " " + subject;
    out += " cpu=" + std::to_string(cpu);
    if (arg != 0)
        out += " arg=" + std::to_string(arg);
    if (at != TimePoint())
        out += " t=" + at.sinceEpoch().str();
    return out;
}

void
ExecutionTrace::append(TraceEventKind kind, CpuId cpu, std::string subject,
                       std::uint64_t arg, TimePoint at)
{
    TraceEvent e;
    e.kind = kind;
    e.seq = events_.size();
    e.cpu = cpu;
    e.subject = std::move(subject);
    e.arg = arg;
    e.at = at;
    events_.push_back(std::move(e));
}

Bytes
ExecutionTrace::encode() const
{
    ByteWriter w;
    w.u32(traceMagicV2);
    w.u32(static_cast<std::uint32_t>(events_.size()));
    for (const TraceEvent &e : events_) {
        w.u8(static_cast<std::uint8_t>(e.kind));
        w.u32(e.cpu);
        w.str(e.subject);
        w.u64(e.arg);
        w.u64(static_cast<std::uint64_t>(e.at.sinceEpoch().ticks()));
    }
    return w.take();
}

Result<ExecutionTrace>
ExecutionTrace::decode(const Bytes &blob)
{
    ByteReader r(blob);
    auto magic = r.u32();
    if (!magic)
        return magic.error();
    if (*magic != traceMagicV1 && *magic != traceMagicV2)
        return Error(Errc::integrityFailure, "not a mintcb trace blob");
    const bool timed = *magic == traceMagicV2;
    auto count = r.u32();
    if (!count)
        return count.error();

    ExecutionTrace trace;
    for (std::uint32_t i = 0; i < *count; ++i) {
        auto kind = r.u8();
        if (!kind)
            return kind.error();
        if (*kind < kindMin || *kind > kindMax) {
            return Error(Errc::integrityFailure,
                         "unknown trace event kind " +
                             std::to_string(*kind));
        }
        auto cpu = r.u32();
        if (!cpu)
            return cpu.error();
        auto subject = r.str();
        if (!subject)
            return subject.error();
        auto arg = r.u64();
        if (!arg)
            return arg.error();
        TimePoint at;
        if (timed) {
            auto ticks = r.u64();
            if (!ticks)
                return ticks.error();
            at = TimePoint(
                Duration::picos(static_cast<std::int64_t>(*ticks)));
        }
        trace.append(static_cast<TraceEventKind>(*kind), *cpu,
                     subject.take(), *arg, at);
    }
    if (!r.atEnd())
        return Error(Errc::integrityFailure, "trailing trace bytes");
    return trace;
}

std::string
ExecutionTrace::str() const
{
    std::string out =
        "trace: " + std::to_string(events_.size()) + " events\n";
    for (const TraceEvent &e : events_)
        out += "  " + e.str() + "\n";
    return out;
}

TraceRecorder::~TraceRecorder()
{
    if (exec_ && exec_->syncObserver() == this)
        exec_->setSyncObserver(nullptr);
    if (service_ && service_->observer() == this)
        service_->setObserver(nullptr);
}

void
TraceRecorder::attach(rec::SecureExecutive &exec)
{
    exec_ = &exec;
    exec.setSyncObserver(this);
}

void
TraceRecorder::attach(sea::ExecutionService &service)
{
    service_ = &service;
    service.setObserver(this);
    attach(service.executive());
}

TimePoint
TraceRecorder::stamp(CpuId cpu) const
{
    if (!exec_)
        return {};
    return exec_->machine().cpu(cpu).now();
}

void
TraceRecorder::onPalEvent(rec::ExecEvent event, CpuId cpu,
                          const rec::Secb &secb)
{
    const TimePoint at = stamp(cpu);
    switch (event) {
      case rec::ExecEvent::slaunchMeasure:
        trace_.append(TraceEventKind::slaunch, cpu, secb.palName, 0, at);
        break;
      case rec::ExecEvent::slaunchResume:
        trace_.append(TraceEventKind::slaunch, cpu, secb.palName, 1, at);
        break;
      case rec::ExecEvent::syield:
        trace_.append(TraceEventKind::syield, cpu, secb.palName, 0, at);
        break;
      case rec::ExecEvent::sfree:
        trace_.append(TraceEventKind::sfree, cpu, secb.palName, 0, at);
        break;
      case rec::ExecEvent::skill:
        trace_.append(TraceEventKind::skill, cpu, secb.palName, 0, at);
        break;
    }
}

void
TraceRecorder::onBarrier()
{
    trace_.append(TraceEventKind::barrier, 0, {}, 0, stamp(0));
}

void
TraceRecorder::onDrainBegin(std::size_t queued)
{
    trace_.append(TraceEventKind::drainBegin, 0, {}, queued, stamp(0));
}

void
TraceRecorder::onDrainEnd(std::size_t completed)
{
    trace_.append(TraceEventKind::drainEnd, 0, {}, completed, stamp(0));
}

void
TraceRecorder::onSessionOpened()
{
    trace_.append(TraceEventKind::sessionOpen, 0, {}, 0, stamp(0));
}

void
TraceRecorder::onSessionResumed(std::uint64_t epoch)
{
    trace_.append(TraceEventKind::sessionResume, 0, {}, epoch, stamp(0));
}

void
TraceRecorder::onAuditExchange(std::size_t commands)
{
    trace_.append(TraceEventKind::transportExchange, 0, {}, commands, stamp(0));
}

void
TraceRecorder::noteSessionClose()
{
    trace_.append(TraceEventKind::sessionClose, 0, {}, 0, stamp(0));
}

} // namespace mintcb::verify
