/**
 * @file
 * Explorable-world implementation.
 *
 * Every transition mirrors rec::SecureExecutive's sequencing over the
 * real MemoryController / SePcrTpm / lifecycle functions, with the
 * validate-before-mutate discipline the explorer relies on: a rejected
 * action must leave the world untouched, so the explorer can try the
 * next candidate without replaying.
 */

#include "verify/model.hh"

#include "rec/lifecycle.hh"
#include "tpm/tpm.hh"

namespace mintcb::verify
{

namespace
{

/**
 * All Worlds share one ideal (zero-latency) TPM: SePcrTpm keeps its
 * own per-bank sePCR state and uses the base TPM only for timing
 * charges and signatures, so sharing is sound and keeps World
 * construction cheap enough for replay-based exploration.
 */
tpm::Tpm &
sharedTpm()
{
    static tpm::Tpm tpm(tpm::TpmVendor::ideal, /*seed=*/0x7eb1f1ed);
    return tpm;
}

} // namespace

const char *
mutationName(Mutation m)
{
    switch (m) {
      case Mutation::none:
        return "none";
      case Mutation::suspendSkipsNone:
        return "suspend-skips-none";
      case Mutation::sfreeSkipsRelease:
        return "sfree-skips-release";
      case Mutation::skillLeavesSepcrBound:
        return "skill-leaves-sepcr-bound";
    }
    return "?";
}

std::string
Action::str() const
{
    switch (kind) {
      case Kind::slaunch:
        return "SLAUNCH(pal" + std::to_string(pal) + ", cpu" +
               std::to_string(cpu) + ")";
      case Kind::syield:
        return "SYIELD(pal" + std::to_string(pal) + ")";
      case Kind::sfree:
        return "SFREE(pal" + std::to_string(pal) + ")";
      case Kind::skill:
        return "SKILL(pal" + std::to_string(pal) + ")";
      case Kind::release:
        return "SEPCR_Free(pal" + std::to_string(pal) + ")";
    }
    return "?";
}

World::World(const ModelConfig &config, Mutation mutation)
    : cfg_(config), mutation_(mutation),
      mem_(static_cast<std::uint64_t>(config.pals) * config.pagesPerPal),
      ctrl_(mem_), bank_(sharedTpm(), config.sePcrs),
      pals_(config.pals)
{
    for (std::uint32_t i = 0; i < config.pals; ++i) {
        Pal &pal = pals_[i];
        for (std::uint32_t p = 0; p < config.pagesPerPal; ++p)
            pal.pages.push_back(i * config.pagesPerPal + p);
        // Distinct image per PAL => distinct sePCR identities.
        pal.image = Bytes{'p', 'a', 'l',
                          static_cast<std::uint8_t>(i)};
    }
}

Status
World::slaunch(Pal &pal, CpuId cpu)
{
    if (pal.state == rec::PalState::execute) {
        // No SLAUNCH on a bound SECB (Section 5.3.1).
        return Error(Errc::failedPrecondition,
                     "PAL is already executing");
    }
    if (auto s = rec::checkTransition(pal.state, rec::PalState::execute);
        !s.ok()) {
        return s;
    }
    for (const Pal &other : pals_) {
        if (other.runningOn && *other.runningOn == cpu) {
            return Error(Errc::resourceExhausted,
                         "CPU already runs another PAL");
        }
    }
    if (auto s = ctrl_.aclAcquire(pal.pages, cpu); !s.ok())
        return s;
    if (!pal.measuredFlag) {
        auto handle = bank_.allocateAndMeasure(pal.image,
                                               tpm::Locality::hardware);
        if (!handle) {
            ctrl_.aclRelease(pal.pages); // unwind, as the hardware does
            return handle.error();
        }
        pal.sePcr = *handle;
        pal.measuredFlag = true;
    }
    pal.state = rec::PalState::execute;
    pal.runningOn = cpu;
    return okStatus();
}

Status
World::syield(Pal &pal)
{
    if (pal.state != rec::PalState::execute || !pal.runningOn) {
        return Error(Errc::failedPrecondition,
                     "SYIELD outside PAL execution");
    }
    if (auto s = rec::checkTransition(pal.state, rec::PalState::suspend);
        !s.ok()) {
        return s;
    }
    if (mutation_ != Mutation::suspendSkipsNone) {
        if (auto s = ctrl_.aclSuspend(pal.pages, *pal.runningOn);
            !s.ok()) {
            return s;
        }
    }
    pal.state = rec::PalState::suspend;
    pal.runningOn.reset();
    return okStatus();
}

Status
World::sfree(Pal &pal)
{
    if (pal.state != rec::PalState::execute || !pal.runningOn) {
        return Error(Errc::failedPrecondition,
                     "SFREE requires an executing PAL");
    }
    if (auto s = rec::checkTransition(pal.state, rec::PalState::done);
        !s.ok()) {
        return s;
    }
    if (pal.sePcr) {
        if (auto s = bank_.transitionToQuote(*pal.sePcr,
                                             tpm::Locality::hardware);
            !s.ok()) {
            return s;
        }
    }
    if (mutation_ != Mutation::sfreeSkipsRelease) {
        if (auto s = ctrl_.aclRelease(pal.pages); !s.ok())
            return s;
    }
    pal.state = rec::PalState::done;
    pal.runningOn.reset();
    return okStatus();
}

Status
World::skill(Pal &pal)
{
    if (pal.state != rec::PalState::suspend) {
        return Error(Errc::failedPrecondition,
                     "SKILL applies to suspended PALs");
    }
    if (auto s = rec::checkTransition(pal.state, rec::PalState::done);
        !s.ok()) {
        return s;
    }
    for (PageNum p : pal.pages)
        mem_.zeroPage(p);
    if (auto s = ctrl_.aclRelease(pal.pages); !s.ok())
        return s;
    if (pal.sePcr) {
        if (mutation_ == Mutation::skillLeavesSepcrBound) {
            // Bug under test: the sePCR stays Exclusive forever.
        } else {
            if (auto s = bank_.kill(*pal.sePcr, tpm::Locality::hardware);
                !s.ok()) {
                return s;
            }
            pal.sePcr.reset(); // hardware freed it; the handle is dead
        }
    }
    pal.state = rec::PalState::done;
    return okStatus();
}

Status
World::release(Pal &pal)
{
    if (pal.state != rec::PalState::done || !pal.sePcr) {
        return Error(Errc::failedPrecondition,
                     "TPM_SEPCR_Free needs an exited PAL with a handle");
    }
    if (auto s = bank_.release(*pal.sePcr); !s.ok())
        return s;
    pal.sePcr.reset();
    return okStatus();
}

Status
World::apply(const Action &action)
{
    if (action.pal >= pals_.size())
        return Error(Errc::invalidArgument, "PAL index out of range");
    if (action.kind == Action::Kind::slaunch && action.cpu >= cfg_.cpus)
        return Error(Errc::invalidArgument, "CPU index out of range");
    Pal &pal = pals_[action.pal];
    switch (action.kind) {
      case Action::Kind::slaunch:
        return slaunch(pal, action.cpu);
      case Action::Kind::syield:
        return syield(pal);
      case Action::Kind::sfree:
        return sfree(pal);
      case Action::Kind::skill:
        return skill(pal);
      case Action::Kind::release:
        return release(pal);
    }
    return Error(Errc::invalidArgument, "unknown action");
}

std::vector<Action>
World::candidateActions() const
{
    std::vector<Action> out;
    for (std::uint32_t i = 0; i < pals_.size(); ++i) {
        for (CpuId c = 0; c < cfg_.cpus; ++c)
            out.push_back({Action::Kind::slaunch, i, c});
        out.push_back({Action::Kind::syield, i, 0});
        out.push_back({Action::Kind::sfree, i, 0});
        out.push_back({Action::Kind::skill, i, 0});
        out.push_back({Action::Kind::release, i, 0});
    }
    return out;
}

WorldSnapshot
World::snapshot() const
{
    WorldSnapshot w;
    w.pages.resize(ctrl_.pages());
    for (PageNum p = 0; p < ctrl_.pages(); ++p)
        w.pages[p] = {ctrl_.pageState(p), ctrl_.pageOwnerMask(p)};
    w.sePcrs.resize(bank_.count());
    for (std::size_t h = 0; h < bank_.count(); ++h)
        w.sePcrs[h] = {bank_.state(static_cast<rec::SePcrHandle>(h))};
    for (const Pal &pal : pals_) {
        PalView v;
        v.state = pal.state;
        v.runningOn = pal.runningOn;
        v.sePcr = pal.sePcr;
        v.pages = pal.pages;
        v.measuredFlag = pal.measuredFlag;
        w.pals.push_back(std::move(v));
    }
    return w;
}

Status
World::crossCheckAccess() const
{
    const WorldSnapshot w = snapshot();
    for (PageNum p = 0; p < w.pages.size(); ++p) {
        const PageView &page = w.pages[p];
        const bool dma_ok =
            ctrl_.read(machine::Agent::forDevice(), pageBase(p), 1).ok();
        if (dma_ok != (page.state == machine::PageState::all)) {
            return Error(Errc::integrityFailure,
                         "page " + std::to_string(p) +
                             ": DMA admission disagrees with the "
                             "ownership view");
        }
        for (CpuId c = 0; c < cfg_.cpus; ++c) {
            const bool cpu_ok =
                ctrl_.read(machine::Agent::forCpu(c), pageBase(p), 1)
                    .ok();
            bool expect = false;
            switch (page.state) {
              case machine::PageState::all:
                expect = true;
                break;
              case machine::PageState::owned:
                expect = (page.ownerMask >> c) & 1;
                break;
              case machine::PageState::none:
                expect = false;
                break;
            }
            if (cpu_ok != expect) {
                return Error(
                    Errc::integrityFailure,
                    "page " + std::to_string(p) + ", CPU " +
                        std::to_string(c) +
                        ": controller admission disagrees with the "
                        "ownership view");
            }
        }
    }
    return okStatus();
}

} // namespace mintcb::verify
