/**
 * @file
 * Exhaustive model checking of the sealed-store lifecycle.
 *
 * A small abstract model of src/store's durability state machine --
 * replicas with a durable directory epoch, an un-rollbackable hardware
 * counter, an admission (late-launch) gate, and attested migration --
 * explored breadth-first under every interleaving of commits, crashes,
 * adversarial stale-disk replays, and migrations. Three invariants are
 * checked on every reachable state:
 *
 *  1. no unseal without admission: a store is never live on a machine
 *     whose identity PAL has not been admitted (late-launched);
 *  2. epoch monotonicity: a machine never serves a sealed epoch lower
 *     than one it already served -- the hardware counter must make
 *     every stale-replay open a typed rejection;
 *  3. single live replica: after a migration there are never two live
 *     replicas of the same dataset (the source is invalidated by the
 *     unmatched counter advance).
 *
 * Seeded mutations disable one protection mechanism each, and the
 * regression tests prove the walk then *finds* the violation with a
 * minimal counterexample trace -- the same discipline as
 * verify/explorer.hh applies to the protection state machines.
 */

#ifndef MINTCB_VERIFY_STOREMODEL_HH
#define MINTCB_VERIFY_STOREMODEL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mintcb::verify
{

/** Seeded defects: each removes one mechanism the invariants rest on. */
enum class StoreMutation
{
    none,
    /** open() ignores the hardware counter: stale replays are served. */
    ignoreCounter,
    /** migration skips invalidating the source replica. */
    skipInvalidate,
    /** open() no longer requires the identity PAL to be admitted. */
    openWithoutAdmission,
};

const char *storeMutationName(StoreMutation m);

/** Model bounds. Small numbers are enough: every violation class shows
 *  up within two commits and one migration. */
struct StoreModelConfig
{
    int machines = 2;

    /** Commits per machine are bounded by this epoch ceiling. */
    std::uint64_t maxEpoch = 2;

    /** Enable the adversary action that swaps in an older disk image. */
    bool adversaryReplay = true;

    StoreMutation mutation = StoreMutation::none;

    /** State cap; hitting it sets truncated (never silent). */
    std::size_t maxStates = 250000;
};

/** A violation with the action sequence that reproduces it. */
struct StoreCounterexample
{
    std::vector<std::string> trace;
    std::string violation;
    std::string str() const;
};

/** Outcome of one exhaustive walk. */
struct StoreExploreResult
{
    std::size_t statesExplored = 0;
    std::size_t transitionsTaken = 0;
    bool truncated = false;
    std::optional<StoreCounterexample> counterexample;

    bool ok() const { return !counterexample && !truncated; }
    std::string str() const;
};

/** The store-lifecycle model checker. */
class StoreLifecycleExplorer
{
  public:
    explicit StoreLifecycleExplorer(StoreModelConfig config = {});

    /** Enumerate every reachable lifecycle state; stops at the first
     *  invariant violation (BFS order makes the trace minimal). */
    StoreExploreResult run();

  private:
    StoreModelConfig config_;
};

} // namespace mintcb::verify

#endif // MINTCB_VERIFY_STOREMODEL_HH
