/**
 * @file
 * Leakage audit implementation.
 */

#include "verify/leakage.hh"

#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/rng.hh"
#include "sea/pal.hh"

namespace mintcb::verify
{

namespace
{

/** The audit victim's execution shape (matching the cost-matrix bench
 *  so audited backends run a representative workload). */
constexpr Duration victimCompute = Duration::millis(1);
constexpr std::size_t victimDataPages = 4;
constexpr std::size_t victimSlbBytes = 4 * 1024;

/** The victim: charge fixed compute and echo the secret. Its *output*
 *  is the same function of the input everywhere; what differs between
 *  backends is which memory the run touches along the way. */
sea::PalRequest
victimRequest(Bytes secret)
{
    sea::PalRequest req(
        sea::Pal::fromLogic("audit-victim", victimSlbBytes,
                            [](sea::PalContext &ctx) {
                                ctx.compute(victimCompute);
                                ctx.setOutput(ctx.input());
                                return okStatus();
                            }),
        std::move(secret));
    req.dataPages = victimDataPages;
    req.slicedCompute = victimCompute;
    req.secureBody = [](rec::PalHooks &,
                        const Bytes &in) -> Result<Bytes> { return in; };
    req.wantQuote = false;
    return req;
}

double
log2Of(double x)
{
    return std::log2(x);
}

} // namespace

std::string
LeakScore::str() const
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(2) << bits << " of "
        << maxBits << " bits (" << classes << " classes / " << secrets
        << " runs)";
    return out.str();
}

LeakScore
scoreViews(const std::vector<Bytes> &views)
{
    LeakScore score;
    score.secrets = views.size();
    if (views.size() < 2) {
        score.classes = views.size();
        return score;
    }
    std::map<Bytes, std::size_t> classes;
    for (const Bytes &v : views)
        ++classes[v];
    score.classes = classes.size();
    const auto k = static_cast<double>(views.size());
    score.maxBits = log2Of(k);
    double conditional = 0.0; // H(secret | view), uniform prior
    for (const auto &[view, size] : classes) {
        (void)view;
        const auto c = static_cast<double>(size);
        conditional += (c / k) * log2Of(c);
    }
    score.bits = score.maxBits - conditional;
    if (score.bits < 0.0)
        score.bits = 0.0;
    return score;
}

const LeakCell *
LeakMatrix::cell(const std::string &backend, AdversaryKind kind) const
{
    for (const LeakCell &c : cells) {
        if (c.backend == backend && c.adversary == kind)
            return &c;
    }
    return nullptr;
}

double
LeakMatrix::bits(const std::string &backend, AdversaryKind kind) const
{
    const LeakCell *c = cell(backend, kind);
    return c != nullptr ? c->score.bits : 0.0;
}

std::string
LeakMatrix::str() const
{
    std::ostringstream out;
    out << "leakage matrix (" << granularityName(granularity)
        << " granularity, " << secrets << " secrets, max "
        << std::fixed << std::setprecision(2)
        << log2Of(static_cast<double>(secrets ? secrets : 1))
        << " bits)\n";
    out << std::left << std::setw(14) << "backend";
    for (AdversaryKind kind : adversaryKinds)
        out << std::right << std::setw(14) << adversaryName(kind);
    out << '\n';
    std::vector<std::string> backends;
    for (const LeakCell &c : cells) {
        if (backends.empty() || backends.back() != c.backend)
            backends.push_back(c.backend);
    }
    for (const std::string &name : backends) {
        out << std::left << std::setw(14) << name;
        for (AdversaryKind kind : adversaryKinds) {
            const LeakCell *c = cell(name, kind);
            out << std::right << std::setw(14);
            if (c != nullptr) {
                std::ostringstream v;
                v << std::fixed << std::setprecision(2)
                  << c->score.bits;
                out << v.str();
            } else {
                out << "-";
            }
        }
        out << '\n';
    }
    return out.str();
}

Bytes
auditSecret(const AuditConfig &config, std::size_t k)
{
    // splitmix-style mix so adjacent k produce unrelated streams.
    Rng rng(config.seed ^
            (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(k) + 1)));
    return rng.bytes(config.secretBytes);
}

Result<LeakMatrix>
auditLeakage(const backend::BackendRegistry &registry,
             const AuditConfig &config)
{
    using machine::Machine;
    using machine::PlatformId;

    std::vector<std::string> names =
        config.backends.empty() ? registry.names() : config.backends;
    for (const std::string &name : names) {
        if (!registry.has(name)) {
            return Error(Errc::notFound,
                         "unknown backend '" + name + "'");
        }
    }

    LeakMatrix matrix;
    matrix.granularity = config.granularity;
    matrix.secrets = config.secrets;
    matrix.seed = config.seed;

    // The adversaries watch all of RAM: the audit compares observer
    // *power*, not window placement, so nothing the victim touches is
    // out of scope.
    const std::uint64_t ramPages =
        Machine::forPlatform(PlatformId::recTestbed, config.seed)
            .memctrl()
            .pages();
    const PageNum lastPage =
        ramPages > 0 ? static_cast<PageNum>(ramPages - 1) : 0;

    constexpr std::size_t kinds =
        sizeof(adversaryKinds) / sizeof(adversaryKinds[0]);

    for (const std::string &name : names) {
        const backend::Backend *backend = registry.find(name);

        std::unique_ptr<Adversary> adversaries[kinds];
        std::vector<Bytes> views[kinds];
        for (std::size_t a = 0; a < kinds; ++a) {
            adversaries[a] = makeAdversary(adversaryKinds[a], 0,
                                           lastPage,
                                           config.granularity);
        }

        for (std::size_t k = 0; k < config.secrets; ++k) {
            // Every run starts from the identical platform state: the
            // same-seed machine. Only the secret differs, so any view
            // difference is caused by the secret.
            Machine m = Machine::forPlatform(PlatformId::recTestbed,
                                            config.seed);
            for (auto &adv : adversaries) {
                adv->clear();
                adv->attach(m);
            }
            sea::PalRequest req = victimRequest(auditSecret(config, k));
            req.backend = name;
            auto report = backend->run(m, req, /*cpu=*/1);
            for (auto &adv : adversaries)
                adv->detach();
            if (!report.ok())
                return report.error();
            if (!report->status.ok()) {
                return Error(report->status.error().code,
                             "victim PAL failed on '" + name +
                                 "': " + report->status.error().message);
            }
            for (std::size_t a = 0; a < kinds; ++a)
                views[a].push_back(adversaries[a]->view());
        }

        for (std::size_t a = 0; a < kinds; ++a) {
            LeakCell cell;
            cell.backend = name;
            cell.adversary = adversaryKinds[a];
            cell.score = scoreViews(views[a]);
            for (const Bytes &v : views[a])
                cell.viewBytes += v.size();
            matrix.cells.push_back(std::move(cell));
        }
    }
    return matrix;
}

} // namespace mintcb::verify
