/**
 * @file
 * Vector clocks for the simulation-level happens-before model.
 *
 * The simulator is single-threaded; "concurrency" is per-core virtual
 * clocks advanced in program order. Real wall-clock interleaving
 * therefore never exists, but *logical* races do: two CPUs touching the
 * same simulated page with no synchronization edge between them would
 * be an actual data race on the hardware being modeled. Vector clocks
 * recover exactly that relation, independent of the arbitrary order in
 * which the single-threaded simulation happens to visit the cores.
 */

#ifndef MINTCB_VERIFY_VCLOCK_HH
#define MINTCB_VERIFY_VCLOCK_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace mintcb::verify
{

/** One process's (CPU's) vector clock. */
class VectorClock
{
  public:
    VectorClock() = default;
    explicit VectorClock(std::size_t width) : c_(width, 0) {}

    std::size_t width() const { return c_.size(); }
    std::uint64_t at(std::size_t i) const { return c_.at(i); }

    /** Advance own component (a new local event). */
    void
    tick(std::size_t self)
    {
        ++c_.at(self);
    }

    /** Component-wise maximum (receive/acquire). */
    void
    join(const VectorClock &other)
    {
        if (c_.size() < other.c_.size())
            c_.resize(other.c_.size(), 0);
        for (std::size_t i = 0; i < other.c_.size(); ++i)
            c_[i] = std::max(c_[i], other.c_[i]);
    }

    /**
     * Did an event at epoch @p epoch on process @p who happen before
     * everything this clock has seen? (The scalar-epoch test TSan
     * uses: e <= C[who].)
     */
    bool
    ordersAfter(std::size_t who, std::uint64_t epoch) const
    {
        return who < c_.size() && epoch <= c_[who];
    }

    std::string
    str() const
    {
        std::string out = "[";
        for (std::size_t i = 0; i < c_.size(); ++i) {
            if (i)
                out += ",";
            out += std::to_string(c_[i]);
        }
        return out + "]";
    }

  private:
    std::vector<std::uint64_t> c_;
};

} // namespace mintcb::verify

#endif // MINTCB_VERIFY_VCLOCK_HH
