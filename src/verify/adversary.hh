/**
 * @file
 * The leakage audit's adversary models.
 *
 * The five backends in the zoo expose very different observation
 * surfaces to the untrusted platform (the per-architecture differences
 * the TEE SoK catalogs: EPC paging vs. nested-page exits vs. SMC world
 * switches). The audit quantifies them by playing three concrete
 * adversaries -- in increasing order of power -- against the same
 * victim run and scoring what each one's *view* distinguishes:
 *
 *  1. page-trace: a passive sweep of the page tables (accessed/dirty
 *     bits, EPC resident set). Periodic sweeping recovers *which*
 *     pages (or, at cache-line granularity, which lines -- a
 *     Prime+Probe residue) the victim touched, but neither order nor
 *     multiplicity: its view is the unordered touch footprint.
 *
 *  2. ctrl-channel: the controlled-channel / pigeonhole adversary (Xu
 *     et al.): it unmaps the window and induces a fault on every
 *     first touch, re-protecting behind the victim, so it observes the
 *     ordered *fault chain*. Two consecutive touches of the same unit
 *     cannot both fault (the unit must be mapped for the victim to
 *     make progress), so the view is the ordered sequence with
 *     consecutive repeats collapsed.
 *
 *  3. single-step: the SEV-Step-style interrupt adversary: an APIC
 *     timer cadence subdivides the victim's protected execution into
 *     stepped windows, attributing every touch -- order, multiplicity
 *     *and* coarse timing -- to the window it happened in. This is the
 *     finest view: it refines the fault chain with repeat counts and
 *     inter-access progress.
 *
 * Every adversary canonicalizes what it learned into a byte string
 * (view()): two runs are indistinguishable to that adversary exactly
 * when their views are byte-equal, which is what the equivalence-class
 * entropy in verify/leakage.hh scores.
 */

#ifndef MINTCB_VERIFY_ADVERSARY_HH
#define MINTCB_VERIFY_ADVERSARY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"
#include "machine/machine.hh"
#include "verify/sidechannel.hh"

namespace mintcb::verify
{

/** The three observer models the leakage matrix compares. */
enum class AdversaryKind
{
    pageTrace,         //!< passive footprint sweep
    controlledChannel, //!< induced page-fault chains
    singleStep,        //!< interrupt-cadence stepping
};

/** Stable matrix label ("page-trace", "ctrl-channel", "single-step"). */
const char *adversaryName(AdversaryKind kind);

/** Every kind, in fixed matrix column order. */
inline constexpr AdversaryKind adversaryKinds[] = {
    AdversaryKind::pageTrace,
    AdversaryKind::controlledChannel,
    AdversaryKind::singleStep,
};

/**
 * A recording adversary: attach to the victim's machine, run the
 * victim, take the canonical view. Adversaries are pure observers --
 * they join the memory controller's fan-out and never perturb the
 * simulation, so reports stay byte-identical with any number of them
 * attached (the audit test suite proves this).
 */
class Adversary
{
  public:
    virtual ~Adversary() = default;

    virtual AdversaryKind kind() const = 0;

    /** Join @p machine's access-observer fan-out. */
    virtual void attach(machine::Machine &machine) = 0;
    /** Leave the fan-out (idempotent). */
    virtual void detach() = 0;
    /** Forget everything recorded (window and config stay). */
    virtual void clear() = 0;

    /** Canonical serialization of everything this adversary learned
     *  from the run so far: byte-equal views mean the two runs are
     *  indistinguishable to this adversary. */
    virtual Bytes view() const = 0;
};

/** Interrupt cadence of the single-step adversary: the stepped-window
 *  width its APIC timer imposes on the victim's virtual clock. */
inline constexpr Duration singleStepCadence = Duration::micros(5);

/** Build the @p kind adversary watching pages [first_page, last_page]
 *  at @p granularity. */
std::unique_ptr<Adversary> makeAdversary(AdversaryKind kind,
                                         PageNum first_page,
                                         PageNum last_page,
                                         Granularity granularity);

} // namespace mintcb::verify

#endif // MINTCB_VERIFY_ADVERSARY_HH
