/**
 * @file
 * Adversary model implementations.
 *
 * All three share the same skeleton: window-filter the mediated access
 * stream, quantize to the configured granularity (page or 64 B line),
 * reduce to the model's view, and serialize canonically with the
 * big-endian ByteWriter so equal views are byte-equal.
 */

#include "verify/adversary.hh"

#include <set>
#include <tuple>
#include <vector>

#include "common/bytebuf.hh"

namespace mintcb::verify
{

namespace
{

/** One quantized touch: the unit (page [+ line]) and the direction. */
struct Touch
{
    PageNum page = 0;
    std::uint32_t line = 0;
    bool isWrite = false;

    bool
    operator==(const Touch &other) const
    {
        return page == other.page && line == other.line &&
               isWrite == other.isWrite;
    }
    bool
    operator<(const Touch &other) const
    {
        return std::tie(page, line, isWrite) <
               std::tie(other.page, other.line, other.isWrite);
    }
};

void
writeTouch(ByteWriter &w, const Touch &t)
{
    w.u64(t.page);
    w.u32(t.line);
    w.u8(t.isWrite ? 1 : 0);
}

/** Common base: windowing, granularity quantization, attach plumbing.
 *  Subclasses get one onTouch() per quantized unit the access covers
 *  (denied probes included -- the address leaks either way). */
class WindowedAdversary : public Adversary, public machine::MemAccessObserver
{
  public:
    WindowedAdversary(PageNum first, PageNum last, Granularity g)
        : first_(first), last_(last), granularity_(g)
    {
    }
    ~WindowedAdversary() override { WindowedAdversary::detach(); }

    WindowedAdversary(const WindowedAdversary &) = delete;
    WindowedAdversary &operator=(const WindowedAdversary &) = delete;

    void
    attach(machine::Machine &machine) override
    {
        detach();
        machine_ = &machine;
        machine.memctrl().addAccessObserver(this);
    }

    void
    detach() override
    {
        if (machine_)
            machine_->memctrl().removeAccessObserver(this);
        machine_ = nullptr;
    }

    void
    onAccess(const machine::Agent &agent, PageNum page,
             std::uint32_t offset, std::uint32_t len, bool isWrite,
             bool granted) override
    {
        (void)granted;
        if (page < first_ || page > last_)
            return;
        if (granularity_ == Granularity::page) {
            onTouch(agent, {page, 0, isWrite});
            return;
        }
        const auto lineSize = static_cast<std::uint32_t>(cacheLineSize);
        const std::uint32_t firstLine = offset / lineSize;
        const std::uint32_t lastLine =
            len ? (offset + len - 1) / lineSize : firstLine;
        for (std::uint32_t l = firstLine; l <= lastLine; ++l)
            onTouch(agent, {page, l, isWrite});
    }

  protected:
    virtual void onTouch(const machine::Agent &agent,
                         const Touch &touch) = 0;

    /** The victim machine while attached (clock access). */
    machine::Machine *machine_ = nullptr;

  private:
    PageNum first_;
    PageNum last_;
    Granularity granularity_;
};

/** Model 1: the passive sweep. Order and multiplicity are invisible;
 *  the view is the sorted set of distinct touches. */
class PageTraceAdversary final : public WindowedAdversary
{
  public:
    using WindowedAdversary::WindowedAdversary;

    AdversaryKind kind() const override
    {
        return AdversaryKind::pageTrace;
    }
    void clear() override { footprint_.clear(); }

    Bytes
    view() const override
    {
        ByteWriter w;
        w.u32(static_cast<std::uint32_t>(footprint_.size()));
        for (const Touch &t : footprint_)
            writeTouch(w, t);
        return w.take();
    }

  protected:
    void
    onTouch(const machine::Agent &, const Touch &touch) override
    {
        footprint_.insert(touch);
    }

  private:
    std::set<Touch> footprint_; //!< canonical order for free
};

/** Model 2: the induced fault chain. Consecutive repeats of the same
 *  unit cannot both fault, so they collapse; everything else keeps its
 *  order. */
class ControlledChannelAdversary final : public WindowedAdversary
{
  public:
    using WindowedAdversary::WindowedAdversary;

    AdversaryKind kind() const override
    {
        return AdversaryKind::controlledChannel;
    }
    void
    clear() override
    {
        chain_.clear();
        hasLast_ = false;
    }

    Bytes
    view() const override
    {
        ByteWriter w;
        w.u32(static_cast<std::uint32_t>(chain_.size()));
        for (const Touch &t : chain_)
            writeTouch(w, t);
        return w.take();
    }

  protected:
    void
    onTouch(const machine::Agent &, const Touch &touch) override
    {
        // Re-protection happens when the victim moves on: the same
        // unit touched twice in a row stays mapped and faults once.
        if (hasLast_ && touch.page == last_.page &&
            touch.line == last_.line) {
            return;
        }
        chain_.push_back(touch);
        last_ = touch;
        hasLast_ = true;
    }

  private:
    std::vector<Touch> chain_;
    Touch last_{};
    bool hasLast_ = false;
};

/** Model 3: the interrupt single-stepper. Every touch is recorded with
 *  the stepped window (victim-clock quantum) it happened in, so the
 *  view carries order, multiplicity and coarse timing. */
class SingleStepAdversary final : public WindowedAdversary
{
  public:
    using WindowedAdversary::WindowedAdversary;

    AdversaryKind kind() const override
    {
        return AdversaryKind::singleStep;
    }
    void
    clear() override
    {
        steps_.clear();
        epoch_ = machine_ ? machine_->now() : TimePoint();
    }

    void
    attach(machine::Machine &machine) override
    {
        WindowedAdversary::attach(machine);
        // Stepping starts now: windows are counted from attach time so
        // two same-shaped victim runs land in the same windows.
        epoch_ = machine.now();
    }

    Bytes
    view() const override
    {
        ByteWriter w;
        w.u32(static_cast<std::uint32_t>(steps_.size()));
        for (const auto &s : steps_) {
            w.u64(s.window);
            writeTouch(w, s.touch);
        }
        return w.take();
    }

  protected:
    void
    onTouch(const machine::Agent &agent, const Touch &touch) override
    {
        std::uint64_t window = 0;
        if (machine_ && agent.kind == machine::Agent::Kind::cpu &&
            agent.cpu < machine_->cpuCount()) {
            const Duration sinceEpoch =
                machine_->cpu(agent.cpu).now() - epoch_;
            if (sinceEpoch.ticks() > 0) {
                window = static_cast<std::uint64_t>(
                    sinceEpoch.ticks() / singleStepCadence.ticks());
            }
        }
        steps_.push_back({window, touch});
    }

  private:
    struct Step
    {
        std::uint64_t window = 0;
        Touch touch;
    };

    std::vector<Step> steps_;
    TimePoint epoch_{};
};

} // namespace

const char *
adversaryName(AdversaryKind kind)
{
    switch (kind) {
      case AdversaryKind::pageTrace:
        return "page-trace";
      case AdversaryKind::controlledChannel:
        return "ctrl-channel";
      case AdversaryKind::singleStep:
        return "single-step";
    }
    return "unknown";
}

std::unique_ptr<Adversary>
makeAdversary(AdversaryKind kind, PageNum first_page, PageNum last_page,
              Granularity granularity)
{
    switch (kind) {
      case AdversaryKind::pageTrace:
        return std::make_unique<PageTraceAdversary>(
            first_page, last_page, granularity);
      case AdversaryKind::controlledChannel:
        return std::make_unique<ControlledChannelAdversary>(
            first_page, last_page, granularity);
      case AdversaryKind::singleStep:
        return std::make_unique<SingleStepAdversary>(
            first_page, last_page, granularity);
    }
    return nullptr;
}

} // namespace mintcb::verify
