/**
 * @file
 * Exhaustive state-space exploration of the protection state machines.
 *
 * Breadth-first enumeration of every reachable World state under every
 * action interleaving, checking the full invariant catalog (and the
 * model-vs-controller access cross-check) on each newly discovered
 * state. States are deduplicated by canonical snapshot fingerprint;
 * a violation yields a minimal-length counterexample trace (BFS order
 * guarantees no shorter action sequence reaches the violating state).
 *
 * The walk is replay-based: a state is identified by the action
 * sequence that first reached it, and expansion re-executes that
 * sequence on a fresh World. This keeps the production classes free of
 * copy/restore plumbing at the cost of O(depth) re-execution per edge
 * -- negligible for the <= 3-CPU / <= 4-PAL / <= 8-page configurations
 * the paper's argument needs.
 */

#ifndef MINTCB_VERIFY_EXPLORER_HH
#define MINTCB_VERIFY_EXPLORER_HH

#include <optional>
#include <string>
#include <vector>

#include "verify/model.hh"

namespace mintcb::verify
{

/** Exploration budget. Hitting a cap sets ExploreResult::truncated --
 *  never silently. */
struct ExploreLimits
{
    std::size_t maxStates = 250000;
    std::size_t maxDepth = 128;
};

/** A violation, with the exact action sequence that reproduces it. */
struct Counterexample
{
    std::vector<std::string> trace; //!< actions from the initial state
    std::string violation;          //!< which invariant, and how
    std::string stateDump;          //!< the violating WorldSnapshot
    std::string str() const;
};

/** Outcome of one exhaustive walk. */
struct ExploreResult
{
    std::size_t statesExplored = 0;
    std::size_t transitionsTaken = 0;
    std::size_t maxDepthReached = 0;
    bool truncated = false; //!< a limit cut the walk short
    std::optional<Counterexample> counterexample;

    bool ok() const { return !counterexample && !truncated; }
    std::string str() const;
};

/** The model checker. */
class StateExplorer
{
  public:
    explicit StateExplorer(const ModelConfig &config,
                           Mutation mutation = Mutation::none,
                           ExploreLimits limits = {});

    /** Enumerate everything reachable; stops at the first violation. */
    ExploreResult run();

  private:
    ModelConfig config_;
    Mutation mutation_;
    ExploreLimits limits_;
};

} // namespace mintcb::verify

#endif // MINTCB_VERIFY_EXPLORER_HH
