/**
 * @file
 * Happens-before race detector for the simulated memory system.
 *
 * A deterministic, simulation-level analogue of ThreadSanitizer: every
 * page-granular access the memory controller mediates is checked
 * against the happens-before relation induced by the platform's real
 * synchronization points --
 *
 *   - SLAUNCH acquires a SECB (joins the clock its last SYIELD/SFREE/
 *     SKILL released),
 *   - SYIELD / SFREE / SKILL release a SECB,
 *   - scheduler round barriers order every CPU against every other.
 *
 * Two accesses to the same page from different CPUs, at least one a
 * write, with neither ordered before the other, are reported as a
 * race. On the hardware the paper recommends this is exactly the bug
 * class the access-control table exists to prevent, so on the shipped
 * tree the detector must stay silent; it exists to catch regressions
 * in the SLAUNCH/SYIELD release-acquire discipline.
 */

#ifndef MINTCB_VERIFY_RACE_HH
#define MINTCB_VERIFY_RACE_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "machine/memctrl.hh"
#include "rec/instructions.hh"
#include "verify/vclock.hh"

namespace mintcb::verify
{

/** One unordered pair of conflicting accesses. */
struct Race
{
    PageNum page = 0;
    CpuId firstCpu = 0;       //!< the access already in the history
    bool firstIsWrite = false;
    CpuId secondCpu = 0;      //!< the access that exposed the race
    bool secondIsWrite = false;

    std::string str() const;
};

/**
 * Vector-clock race detector. Attach to a MemoryController (access
 * stream) and a SecureExecutive (synchronization stream), run the
 * workload, then inspect races().
 */
class HbRaceDetector : public machine::MemAccessObserver,
                       public rec::ExecSyncObserver
{
  public:
    /** @p cpus is the platform width (clock dimension). */
    explicit HbRaceDetector(std::size_t cpus);
    ~HbRaceDetector() override;

    HbRaceDetector(const HbRaceDetector &) = delete;
    HbRaceDetector &operator=(const HbRaceDetector &) = delete;

    /** Start observing @p ctrl (joins its observer fan-out; other
     *  observers keep seeing the stream too). */
    void attach(machine::MemoryController &ctrl);
    /** Start observing @p exec's synchronization points. */
    void attach(rec::SecureExecutive &exec);

    /** @name Observer entry points. @{ */
    void onAccess(const machine::Agent &agent, PageNum page,
                  std::uint32_t offset, std::uint32_t len, bool isWrite,
                  bool granted) override;
    void onPalEvent(rec::ExecEvent event, CpuId cpu,
                    const rec::Secb &secb) override;
    void onBarrier() override;
    /** @} */

    /** @name Sharded-service fork/join edges.
     * The sharded ExecutionService hands each shard campaign to a
     * worker thread (fork) and later commits its results on the drain
     * thread (join); a per-shard detector observes that shard's memory
     * system. Both ends are full synchronization points for the shard:
     * everything before the fork happens-before the campaign, and the
     * campaign happens-before everything after the join -- so accesses
     * from different drains can never be reported as racing merely
     * because a different host worker ran them. Modeled as barrier
     * edges over the shard machine's CPUs; @p shard is recorded for
     * bookkeeping only (each detector watches exactly one shard).
     * @{ */
    void onShardFork(std::uint32_t shard);
    void onShardJoin(std::uint32_t shard);
    std::uint64_t shardForks() const { return shardForks_; }
    std::uint64_t shardJoins() const { return shardJoins_; }
    /** @} */

    /** Distinct races observed (capped; see dropped()). */
    const std::vector<Race> &races() const { return races_; }
    /** Races beyond the storage cap (still counted, not stored). */
    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t accessesChecked() const { return accessesChecked_; }
    std::uint64_t syncEvents() const { return syncEvents_; }

    /** Human-readable report (notes the cap if it was hit). */
    std::string str() const;

    /** Stored-race cap: dedup keeps this bounded in practice; the cap
     *  guards pathological workloads. */
    static constexpr std::size_t maxStoredRaces = 64;

  private:
    struct PageHistory
    {
        bool hasWrite = false;
        CpuId writeCpu = 0;
        std::uint64_t writeEpoch = 0;
        //! last read epoch per CPU (0 = never read)
        std::vector<std::uint64_t> readEpochs;
    };

    void report(PageNum page, CpuId firstCpu, bool firstIsWrite,
                CpuId secondCpu, bool secondIsWrite);

    std::size_t cpus_;
    std::vector<VectorClock> clocks_;          //!< one per CPU
    std::map<PageNum, PageHistory> pages_;
    //! release clocks keyed by SECB identity (stable address; see
    //! SecureExecutive::slaunch's @pre)
    std::map<const rec::Secb *, VectorClock> released_;
    std::vector<Race> races_;
    std::set<std::tuple<PageNum, CpuId, CpuId, bool, bool>> seen_;
    std::uint64_t dropped_ = 0;
    std::uint64_t accessesChecked_ = 0;
    std::uint64_t syncEvents_ = 0;
    std::uint64_t shardForks_ = 0;
    std::uint64_t shardJoins_ = 0;
    machine::MemoryController *ctrl_ = nullptr;
    rec::SecureExecutive *exec_ = nullptr;
};

} // namespace mintcb::verify

#endif // MINTCB_VERIFY_RACE_HH
