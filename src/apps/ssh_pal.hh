/**
 * @file
 * SSH password-handling PAL (paper Section 4.1).
 *
 * "...and to secure an SSH server's password handling routines": the
 * salted password verifier is created and checked only inside a PAL, so
 * a compromised OS sees neither passwords nor verifiers in cleartext.
 */

#ifndef MINTCB_APPS_SSH_PAL_HH
#define MINTCB_APPS_SSH_PAL_HH

#include <map>
#include <string>

#include "common/result.hh"
#include "sea/session.hh"

namespace mintcb::apps
{

/** The SSH server's password back end, with SEA-protected records. */
class PasswordVault
{
  public:
    explicit PasswordVault(sea::SeaDriver &driver) : driver_(driver) {}

    /** In-PAL: derive a salted verifier for @p password, seal it. */
    Status enroll(const std::string &user, const std::string &password,
                  CpuId cpu = 0);

    /** In-PAL: unseal @p user's verifier and check @p password.
     *  Returns false for a wrong password; an Error for system faults
     *  (unknown user, tampered record, ...). */
    Result<bool> authenticate(const std::string &user,
                              const std::string &password, CpuId cpu = 0);

    /** Users with enrolled records. */
    std::size_t userCount() const { return records_.size(); }

    /** The sealed verifier as stored by the untrusted OS (for tamper
     *  experiments). */
    Result<tpm::SealedBlob> record(const std::string &user) const;
    /** Replace a stored record (models on-disk tampering). */
    void setRecord(const std::string &user, tpm::SealedBlob blob);

    /** Report of the most recent session (unified API). */
    const sea::ExecutionReport &lastReport() const { return lastReport_; }

  private:
    sea::SeaDriver &driver_;
    std::map<std::string, tpm::SealedBlob> records_;
    sea::ExecutionReport lastReport_;
};

} // namespace mintcb::apps

#endif // MINTCB_APPS_SSH_PAL_HH
