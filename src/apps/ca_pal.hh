/**
 * @file
 * Certificate-authority PAL (paper Section 4.1).
 *
 * "We also use the architecture to protect the confidentiality of a
 * certificate authority's private signing key": the key is generated
 * inside a PAL, sealed to the PAL's identity, and only ever decrypted
 * inside later runs of the same PAL. The OS ferries opaque blobs.
 */

#ifndef MINTCB_APPS_CA_PAL_HH
#define MINTCB_APPS_CA_PAL_HH

#include <string>

#include "common/result.hh"
#include "crypto/rsa.hh"
#include "sea/session.hh"

namespace mintcb::apps
{

/** A certificate signing request. */
struct CertificateRequest
{
    std::string subject;
    Bytes subjectPublicKey; //!< encoded RsaPublicKey
};

/** A certificate issued by the CA PAL. */
struct Certificate
{
    std::string subject;
    Bytes subjectPublicKey;
    Bytes signature; //!< CA signature over tbs()

    /** The byte string the CA signs. */
    Bytes tbs() const;
};

/** Verify @p cert against the CA's public key. */
bool verifyCertificate(const crypto::RsaPublicKey &ca_key,
                       const Certificate &cert);

/**
 * The CA service: untrusted front end + the security-sensitive PAL.
 * The private key exists in cleartext only inside PAL sessions.
 */
class CertificateAuthority
{
  public:
    /** @p key_bits sizes the CA key (tests use 512 for speed). */
    CertificateAuthority(sea::SeaDriver &driver,
                         std::size_t key_bits = 1024);

    /**
     * PAL-Gen-style session: generate the CA keypair inside the PAL,
     * seal the private half, publish the public half.
     */
    Status initialize(CpuId cpu = 0);

    bool initialized() const { return initialized_; }
    const crypto::RsaPublicKey &publicKey() const { return publicKey_; }

    /** PAL-Use-style session: unseal the key, sign @p request. */
    Result<Certificate> sign(const CertificateRequest &request,
                             CpuId cpu = 0);

    /** Report of the most recent session (unified request/response API;
     *  phase breakdown under .phases). */
    const sea::ExecutionReport &lastReport() const { return lastReport_; }

    /** The sealed private key as the OS stores it (opaque). */
    const tpm::SealedBlob &sealedKey() const { return sealedKey_; }

  private:
    sea::Pal makeCaPal(bool initialize, CertificateRequest request);

    sea::SeaDriver &driver_;
    std::size_t keyBits_;
    bool initialized_ = false;
    crypto::RsaPublicKey publicKey_;
    tpm::SealedBlob sealedKey_;
    sea::ExecutionReport lastReport_;
};

} // namespace mintcb::apps

#endif // MINTCB_APPS_CA_PAL_HH
