/**
 * @file
 * Distributed factoring implementation.
 */

#include "apps/factoring_pal.hh"

#include "common/bytebuf.hh"

namespace mintcb::apps
{

namespace
{

/** Modeled per-candidate trial-division cost on the PAL's core. */
constexpr Duration perCandidateCost = Duration::nanos(15);

struct WorkerState
{
    std::uint64_t composite;
    std::uint64_t next; // next odd candidate divisor

    Bytes
    encode() const
    {
        ByteWriter w;
        w.u64(composite);
        w.u64(next);
        return w.take();
    }

    static Result<WorkerState>
    decode(const Bytes &wire)
    {
        ByteReader r(wire);
        auto composite = r.u64();
        if (!composite)
            return composite.error();
        auto next = r.u64();
        if (!next)
            return next.error();
        return WorkerState{*composite, *next};
    }
};

/** PAL output: found flag, factor, next candidate, exhausted flag. */
Bytes
encodeOutcome(bool found, std::uint64_t factor, std::uint64_t next,
              bool exhausted)
{
    ByteWriter w;
    w.u8(found ? 1 : 0);
    w.u64(factor);
    w.u64(next);
    w.u8(exhausted ? 1 : 0);
    return w.take();
}

sea::Pal
factoringPal(std::uint64_t composite, std::uint64_t chunk, bool first)
{
    return sea::Pal::fromLogic(
        "distributed-factoring-pal", 6 * 1024,
        [composite, chunk, first](sea::PalContext &ctx) -> Status {
            WorkerState state{composite, 3};
            if (!first) {
                auto blob = tpm::SealedBlob::decode(ctx.input());
                if (!blob)
                    return blob.error();
                auto wire = ctx.unsealState(*blob);
                if (!wire)
                    return wire.error();
                auto decoded = WorkerState::decode(*wire);
                if (!decoded)
                    return decoded.error();
                state = *decoded;
                if (state.composite != composite) {
                    return Error(Errc::invalidArgument,
                                 "sealed state is for another composite");
                }
            } else if (composite % 2 == 0) {
                ctx.setOutput(encodeOutcome(true, 2, 3, false));
                return okStatus();
            }

            // One chunk of odd-candidate trial division.
            bool found = false, exhausted = false;
            std::uint64_t factor = 0;
            std::uint64_t tried = 0;
            while (tried < chunk) {
                const std::uint64_t c = state.next;
                if (c > composite / c) { // c*c > composite, overflow-safe
                    exhausted = true;
                    break;
                }
                if (composite % c == 0) {
                    found = true;
                    factor = c;
                    break;
                }
                state.next += 2;
                ++tried;
            }
            ctx.compute(perCandidateCost *
                        static_cast<double>(tried + 1));

            if (!found && !exhausted) {
                auto blob = ctx.sealState(state.encode());
                if (!blob)
                    return blob.error();
                ByteWriter out;
                out.raw(encodeOutcome(false, 0, state.next, false));
                out.lengthPrefixed(blob->encode());
                ctx.setOutput(out.take());
                return okStatus();
            }
            ctx.setOutput(encodeOutcome(found, factor, state.next,
                                        exhausted));
            return okStatus();
        });
}

} // namespace

DistributedFactoring::DistributedFactoring(sea::SeaDriver &driver,
                                           std::uint64_t composite,
                                           std::uint64_t chunk)
    : driver_(driver), composite_(composite), chunk_(chunk)
{
}

Result<DistributedFactoring::Progress>
DistributedFactoring::step(CpuId cpu)
{
    if (progress_.found || progress_.exhausted)
        return progress_;

    const bool first = !haveState_;
    auto session = driver_.run(
        sea::PalRequest(factoringPal(composite_, chunk_, first),
                        first ? Bytes{} : state_.encode()),
        cpu);
    if (!session)
        return session.error();
    const sea::ExecutionReport &s = *session;
    if (!s.status.ok())
        return s.status.error();
    overhead_ += s.phases.launch + s.phases.transition +
                 s.phases.teardown;
    compute_ += s.phases.compute;
    ++progress_.sessions;

    ByteReader r(s.output);
    auto found = r.u8();
    auto factor = r.u64();
    auto next = r.u64();
    auto exhausted = r.u8();
    if (!found || !factor || !next || !exhausted)
        return Error(Errc::integrityFailure, "malformed PAL outcome");
    progress_.found = *found == 1;
    progress_.factor = *factor;
    progress_.nextCandidate = *next;
    progress_.exhausted = *exhausted == 1;

    if (!progress_.found && !progress_.exhausted) {
        auto blob_wire = r.lengthPrefixed();
        if (!blob_wire)
            return blob_wire.error();
        auto blob = tpm::SealedBlob::decode(*blob_wire);
        if (!blob)
            return blob.error();
        state_ = blob.take();
        haveState_ = true;
    }
    return progress_;
}

Result<DistributedFactoring::Progress>
DistributedFactoring::runToCompletion(std::size_t max_sessions, CpuId cpu)
{
    for (std::size_t i = 0; i < max_sessions; ++i) {
        auto p = step(cpu);
        if (!p)
            return p.error();
        if (p->found || p->exhausted)
            return p;
    }
    return Error(Errc::resourceExhausted,
                 "session budget exhausted before completion");
}

} // namespace mintcb::apps
