/**
 * @file
 * Rootkit detector implementation.
 */

#include "apps/rootkit_pal.hh"

#include "crypto/hmac.hh"
#include "crypto/sha1.hh"

namespace mintcb::apps
{

namespace
{

/** One PAL identity for both the baseline and scan flows. */
sea::Pal
detectorPal(PhysAddr base, std::uint64_t bytes, bool make_baseline)
{
    return sea::Pal::fromLogic(
        "rootkit-detector-pal", 8 * 1024,
        [base, bytes, make_baseline](sea::PalContext &ctx) -> Status {
            // Hash the kernel text through the memory controller, as the
            // PAL's CPU would; charge the CPU-side SHA-1 rate.
            auto text = ctx.machine().readAs(ctx.cpuId(), base, bytes);
            if (!text)
                return text.error();
            ctx.compute(ctx.machine().spec().cpuHashPerByte *
                        static_cast<double>(bytes));
            const Bytes digest = crypto::Sha1::digestBytes(*text);

            if (make_baseline) {
                auto blob = ctx.sealState(digest);
                if (!blob)
                    return blob.error();
                ctx.setOutput(blob->encode());
                return okStatus();
            }

            auto blob = tpm::SealedBlob::decode(ctx.input());
            if (!blob)
                return blob.error();
            auto known_good = ctx.unsealState(*blob);
            if (!known_good)
                return known_good.error();
            const bool clean =
                crypto::constantTimeEqual(digest, *known_good);
            Bytes out;
            out.push_back(clean ? 1 : 0);
            out.insert(out.end(), digest.begin(), digest.end());
            ctx.setOutput(out);
            return okStatus();
        });
}

} // namespace

RootkitDetector::RootkitDetector(sea::SeaDriver &driver,
                                 PhysAddr kernel_base,
                                 std::uint64_t kernel_bytes)
    : driver_(driver), kernelBase_(kernel_base),
      kernelBytes_(kernel_bytes)
{
}

Status
RootkitDetector::baseline(CpuId cpu)
{
    auto session = driver_.run(
        sea::PalRequest(detectorPal(kernelBase_, kernelBytes_, true)),
        cpu);
    if (!session)
        return session.error();
    lastReport_ = session.take();
    if (!lastReport_.status.ok())
        return lastReport_.status.error();
    auto blob = tpm::SealedBlob::decode(lastReport_.output);
    if (!blob)
        return blob.error();
    baseline_ = blob.take();
    haveBaseline_ = true;
    return okStatus();
}

Result<RootkitDetector::ScanResult>
RootkitDetector::scan(CpuId cpu)
{
    if (!haveBaseline_) {
        return Error(Errc::failedPrecondition,
                     "no sealed baseline; run baseline() first");
    }
    auto session = driver_.run(
        sea::PalRequest(detectorPal(kernelBase_, kernelBytes_, false),
                        baseline_.encode()),
        cpu);
    if (!session)
        return session.error();
    lastReport_ = session.take();
    if (!lastReport_.status.ok())
        return lastReport_.status.error();

    const Bytes &out = lastReport_.output;
    if (out.size() != 1 + crypto::sha1DigestSize) {
        return Error(Errc::integrityFailure,
                     "malformed verdict from detector PAL");
    }
    ScanResult result;
    result.clean = out[0] == 1;
    result.currentHash.assign(out.begin() + 1, out.end());
    return result;
}

} // namespace mintcb::apps
