/**
 * @file
 * Password vault implementation.
 */

#include "apps/ssh_pal.hh"

#include "common/bytebuf.hh"
#include "common/hex.hh"
#include "crypto/hmac.hh"

namespace mintcb::apps
{

namespace
{

/** Modeled in-PAL cost of the (deliberately slow) password KDF. */
constexpr Duration kdfCost = Duration::millis(25);

/** Verifier = HMAC-SHA256(salt, user || 0x00 || password). */
Bytes
deriveVerifier(const Bytes &salt, const std::string &user,
               const std::string &password)
{
    ByteWriter w;
    w.str(user);
    w.u8(0);
    w.str(password);
    return crypto::hmacSha256(salt, w.bytes());
}

/** One PAL identity for enroll and authenticate. */
sea::Pal
passwordPal(bool enroll, std::string user, std::string password)
{
    return sea::Pal::fromLogic(
        "ssh-password-pal", 6 * 1024,
        [enroll, user = std::move(user),
         password = std::move(password)](sea::PalContext &ctx) -> Status {
            if (enroll) {
                auto salt = ctx.tpm().getRandom(16);
                if (!salt)
                    return salt.error();
                const Bytes verifier =
                    deriveVerifier(*salt, user, password);
                ctx.compute(kdfCost);
                ByteWriter record;
                record.lengthPrefixed(*salt);
                record.lengthPrefixed(verifier);
                auto blob = ctx.sealState(record.bytes());
                if (!blob)
                    return blob.error();
                ctx.setOutput(blob->encode());
                return okStatus();
            }

            auto blob = tpm::SealedBlob::decode(ctx.input());
            if (!blob)
                return blob.error();
            auto record = ctx.unsealState(*blob);
            if (!record)
                return record.error();
            ByteReader r(*record);
            auto salt = r.lengthPrefixed();
            if (!salt)
                return salt.error();
            auto stored = r.lengthPrefixed();
            if (!stored)
                return stored.error();

            const Bytes attempt = deriveVerifier(*salt, user, password);
            ctx.compute(kdfCost);
            const bool match = crypto::constantTimeEqual(attempt, *stored);
            ctx.setOutput(Bytes{match ? std::uint8_t{1} : std::uint8_t{0}});
            return okStatus();
        });
}

} // namespace

Status
PasswordVault::enroll(const std::string &user, const std::string &password,
                      CpuId cpu)
{
    auto session = driver_.run(
        sea::PalRequest(passwordPal(true, user, password)), cpu);
    if (!session)
        return session.error();
    lastReport_ = session.take();
    if (!lastReport_.status.ok())
        return lastReport_.status.error();
    auto blob = tpm::SealedBlob::decode(lastReport_.output);
    if (!blob)
        return blob.error();
    records_[user] = blob.take();
    return okStatus();
}

Result<bool>
PasswordVault::authenticate(const std::string &user,
                            const std::string &password, CpuId cpu)
{
    auto it = records_.find(user);
    if (it == records_.end())
        return Error(Errc::notFound, "no record for user " + user);
    auto session =
        driver_.run(sea::PalRequest(passwordPal(false, user, password),
                                    it->second.encode()),
                    cpu);
    if (!session)
        return session.error();
    lastReport_ = session.take();
    if (!lastReport_.status.ok())
        return lastReport_.status.error();
    if (lastReport_.output.size() != 1) {
        return Error(Errc::integrityFailure,
                     "malformed verdict from password PAL");
    }
    return lastReport_.output[0] == 1;
}

Result<tpm::SealedBlob>
PasswordVault::record(const std::string &user) const
{
    auto it = records_.find(user);
    if (it == records_.end())
        return Error(Errc::notFound, "no record for user " + user);
    return it->second;
}

void
PasswordVault::setRecord(const std::string &user, tpm::SealedBlob blob)
{
    records_[user] = std::move(blob);
}

} // namespace mintcb::apps
