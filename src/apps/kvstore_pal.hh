/**
 * @file
 * A rollback-protected secure key-value store.
 *
 * The most demanding composition of the paper's primitives: every
 * mutation runs inside a PAL, the whole store travels as one sealed
 * blob bound to the PAL's identity, and a TPM monotonic counter embedded
 * in the sealed state defeats the untrusted OS's last move -- replaying
 * yesterday's store. This is the "protect application state across
 * context switches" problem of Section 3.3 taken to its logical
 * conclusion.
 */

#ifndef MINTCB_APPS_KVSTORE_PAL_HH
#define MINTCB_APPS_KVSTORE_PAL_HH

#include <map>
#include <string>

#include "common/result.hh"
#include "sea/session.hh"
#include "sea/statestore.hh"

namespace mintcb::apps
{

/** The secure store service (untrusted front end). */
class SecureKvStore
{
  public:
    explicit SecureKvStore(sea::SeaDriver &driver);

    /**
     * Attach a durable home for the sealed image *and* the chip NV
     * (counter) state. Must be called before initialize(): with a
     * store attached, initialize() restores a previous incarnation
     * when one is present -- so the kvstore survives process restarts,
     * not just context switches -- and every mutation re-persists.
     */
    Status attachPersistence(sea::SealedStateStore &store);

    /** True when initialize() restored a previous incarnation instead
     *  of creating a fresh store. */
    bool restored() const { return restored_; }

    /** Create an empty store: binds a fresh monotonic counter and seals
     *  version 1. With persistence attached, restores instead when a
     *  previous incarnation is present. */
    Status initialize(CpuId cpu = 0);

    /** In-PAL: unseal, check freshness, insert/overwrite, bump the
     *  counter, reseal. */
    Status put(const std::string &key, const Bytes &value,
               CpuId cpu = 0);

    /** In-PAL: unseal, check freshness, look up. */
    Result<Bytes> get(const std::string &key, CpuId cpu = 0);

    /** In-PAL: unseal, check freshness, erase, bump, reseal. */
    Status remove(const std::string &key, CpuId cpu = 0);

    /** Number of keys (requires a session; reads the sealed state). */
    Result<std::size_t> size(CpuId cpu = 0);

    /** The opaque sealed image the OS stores (for attack experiments). */
    const Bytes &sealedImage() const { return sealedImage_; }
    /** Replace the stored image (models disk tampering / replay). */
    void setSealedImage(Bytes image) { sealedImage_ = std::move(image); }

  private:
    /** Operations tunneled into the PAL. */
    enum class Op : std::uint8_t
    {
        init = 0,
        put = 1,
        get = 2,
        remove = 3,
        size = 4,
    };

    Result<Bytes> session(Op op, const std::string &key,
                          const Bytes &value, CpuId cpu);
    Status persistNow();
    Status restoreFromPersistence();

    sea::SeaDriver &driver_;
    bool initialized_ = false;
    bool restored_ = false;
    std::uint32_t counterHandle_ = 0;
    Bytes sealedImage_;
    sea::SealedStateStore *persist_ = nullptr;
};

} // namespace mintcb::apps

#endif // MINTCB_APPS_KVSTORE_PAL_HH
