/**
 * @file
 * CA PAL implementation.
 */

#include "apps/ca_pal.hh"

#include "common/bytebuf.hh"

namespace mintcb::apps
{

namespace
{

/** Modeled latency of in-PAL RSA key generation on 2007 hardware. */
constexpr Duration keygenCost = Duration::millis(180);
/** Modeled latency of one in-PAL RSA signature. */
constexpr Duration signCost = Duration::millis(12);

} // namespace

Bytes
Certificate::tbs() const
{
    ByteWriter w;
    w.str("CERT");
    w.str(subject);
    w.lengthPrefixed(subjectPublicKey);
    return w.take();
}

bool
verifyCertificate(const crypto::RsaPublicKey &ca_key,
                  const Certificate &cert)
{
    return crypto::rsaVerifySha1(ca_key, cert.tbs(), cert.signature);
}

CertificateAuthority::CertificateAuthority(sea::SeaDriver &driver,
                                           std::size_t key_bits)
    : driver_(driver), keyBits_(key_bits)
{
}

sea::Pal
CertificateAuthority::makeCaPal(bool initialize,
                                CertificateRequest request)
{
    // One identity for both flows: the sign flow must unseal what the
    // init flow sealed, so the measured code must be identical.
    const std::size_t key_bits = keyBits_;
    return sea::Pal::fromLogic(
        "certificate-authority-pal", 12 * 1024,
        [initialize, request = std::move(request),
         key_bits](sea::PalContext &ctx) -> Status {
            if (initialize) {
                // Derive key material from TPM randomness; charge the
                // modeled keygen latency.
                auto seed_bytes = ctx.tpm().getRandom(8);
                if (!seed_bytes)
                    return seed_bytes.error();
                std::uint64_t seed = 0;
                for (std::uint8_t b : *seed_bytes)
                    seed = seed << 8 | b;
                Rng rng(seed);
                const crypto::RsaPrivateKey key =
                    crypto::rsaGenerate(rng, key_bits);
                ctx.compute(keygenCost);

                auto blob = ctx.sealState(key.encode());
                if (!blob)
                    return blob.error();
                ByteWriter out;
                out.lengthPrefixed(key.pub.encode());
                out.lengthPrefixed(blob->encode());
                ctx.setOutput(out.take());
                return okStatus();
            }

            // Sign flow: the sealed key travels in via the input.
            auto blob = tpm::SealedBlob::decode(ctx.input());
            if (!blob)
                return blob.error();
            auto key_wire = ctx.unsealState(*blob);
            if (!key_wire)
                return key_wire.error();
            auto key = crypto::RsaPrivateKey::decode(*key_wire);
            if (!key)
                return key.error();

            Certificate cert;
            cert.subject = request.subject;
            cert.subjectPublicKey = request.subjectPublicKey;
            cert.signature = crypto::rsaSignSha1(*key, cert.tbs());
            ctx.compute(signCost);
            // The unsealed key is erased with the PAL's memory; no
            // reseal needed (Section 4.1's CA example).
            ctx.setOutput(cert.signature);
            return okStatus();
        });
}

Status
CertificateAuthority::initialize(CpuId cpu)
{
    auto session =
        driver_.run(sea::PalRequest(makeCaPal(true, {})), cpu);
    if (!session)
        return session.error();
    lastReport_ = session.take();
    if (!lastReport_.status.ok())
        return lastReport_.status.error();

    ByteReader r(lastReport_.output);
    auto pub_wire = r.lengthPrefixed();
    if (!pub_wire)
        return pub_wire.error();
    auto blob_wire = r.lengthPrefixed();
    if (!blob_wire)
        return blob_wire.error();
    auto pub = crypto::RsaPublicKey::decode(*pub_wire);
    if (!pub)
        return pub.error();
    auto blob = tpm::SealedBlob::decode(*blob_wire);
    if (!blob)
        return blob.error();

    publicKey_ = pub.take();
    sealedKey_ = blob.take();
    initialized_ = true;
    return okStatus();
}

Result<Certificate>
CertificateAuthority::sign(const CertificateRequest &request, CpuId cpu)
{
    if (!initialized_) {
        return Error(Errc::failedPrecondition,
                     "CA not initialized: no sealed signing key");
    }
    auto session = driver_.run(
        sea::PalRequest(makeCaPal(false, request), sealedKey_.encode()),
        cpu);
    if (!session)
        return session.error();
    lastReport_ = session.take();
    if (!lastReport_.status.ok())
        return lastReport_.status.error();

    Certificate cert;
    cert.subject = request.subject;
    cert.subjectPublicKey = request.subjectPublicKey;
    cert.signature = lastReport_.output;
    return cert;
}

} // namespace mintcb::apps
