/**
 * @file
 * Kernel rootkit detector PAL (paper Section 4.1).
 *
 * "We implemented a kernel rootkit detector ... that use[s] our
 * architecture to provide isolation and integrity protection": a PAL
 * hashes the (simulated) kernel text region, compares against a sealed
 * baseline, and emits an attestable verdict. Because the measurement
 * runs inside the minimal TCB, a rootkit that owns the OS cannot lie to
 * the PAL about the kernel bytes -- it can only be caught.
 */

#ifndef MINTCB_APPS_ROOTKIT_PAL_HH
#define MINTCB_APPS_ROOTKIT_PAL_HH

#include "common/result.hh"
#include "sea/session.hh"

namespace mintcb::apps
{

/** The rootkit detector service. */
class RootkitDetector
{
  public:
    /**
     * Watch the kernel text at [@p kernel_base, +@p kernel_bytes) of
     * @p driver's machine.
     */
    RootkitDetector(sea::SeaDriver &driver, PhysAddr kernel_base,
                    std::uint64_t kernel_bytes);

    /** In-PAL: hash the kernel text and seal it as the known-good
     *  baseline. Run this while the kernel is trusted (e.g. right after
     *  a verified boot). */
    Status baseline(CpuId cpu = 0);

    /** Verdict of one scan. */
    struct ScanResult
    {
        bool clean;        //!< kernel text matches the baseline
        Bytes currentHash; //!< SHA-1 the PAL computed this scan
    };

    /** In-PAL: re-hash the kernel text and compare to the baseline. */
    Result<ScanResult> scan(CpuId cpu = 0);

    /** Report of the most recent session (unified API). */
    const sea::ExecutionReport &lastReport() const { return lastReport_; }

  private:
    sea::SeaDriver &driver_;
    PhysAddr kernelBase_;
    std::uint64_t kernelBytes_;
    bool haveBaseline_ = false;
    tpm::SealedBlob baseline_;
    sea::ExecutionReport lastReport_;
};

} // namespace mintcb::apps

#endif // MINTCB_APPS_ROOTKIT_PAL_HH
