/**
 * @file
 * Distributed-factoring PAL (paper Section 4.1).
 *
 * "...a distributed factoring program that use[s] our architecture to
 * provide isolation and integrity protection": a SETI@Home-style worker
 * performs a bounded chunk of trial division per PAL session and seals
 * its intermediate state, so a malicious host can neither corrupt the
 * computation nor forge results -- but pays the full session overhead
 * per chunk, which is exactly the cost structure Figure 2 laments.
 */

#ifndef MINTCB_APPS_FACTORING_PAL_HH
#define MINTCB_APPS_FACTORING_PAL_HH

#include <cstdint>

#include "common/result.hh"
#include "sea/session.hh"

namespace mintcb::apps
{

/** The factoring worker. */
class DistributedFactoring
{
  public:
    /**
     * Factor @p composite by trial division, @p chunk candidate
     * divisors per PAL session.
     */
    DistributedFactoring(sea::SeaDriver &driver, std::uint64_t composite,
                         std::uint64_t chunk = 4096);

    /** Progress after a session. */
    struct Progress
    {
        bool found = false;        //!< a factor was discovered
        std::uint64_t factor = 0;  //!< the factor, when found
        std::uint64_t nextCandidate = 3; //!< resume point
        bool exhausted = false;    //!< proved prime (no factor <= sqrt)
        std::uint64_t sessions = 0; //!< PAL sessions consumed so far
    };

    /** Run one PAL session (one work chunk). */
    Result<Progress> step(CpuId cpu = 0);

    /** Run sessions until a factor is found or the search completes. */
    Result<Progress> runToCompletion(std::size_t max_sessions = 100000,
                                     CpuId cpu = 0);

    /** Cumulative SEA overhead (late launch + seal + unseal) so far. */
    Duration overheadTime() const { return overhead_; }
    /** Cumulative useful compute so far. */
    Duration computeTime() const { return compute_; }

  private:
    sea::SeaDriver &driver_;
    std::uint64_t composite_;
    std::uint64_t chunk_;
    Progress progress_;
    bool haveState_ = false;
    tpm::SealedBlob state_;
    Duration overhead_;
    Duration compute_;
};

} // namespace mintcb::apps

#endif // MINTCB_APPS_FACTORING_PAL_HH
