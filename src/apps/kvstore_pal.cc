/**
 * @file
 * Secure KV store implementation.
 *
 * Sealed state layout: u64 version | u32 count | count x (key, value).
 * The PAL refuses state whose version trails the hardware counter.
 */

#include "apps/kvstore_pal.hh"

#include <map>

#include "common/bytebuf.hh"

namespace mintcb::apps
{

namespace
{

using Store = std::map<std::string, Bytes>;

Bytes
encodeStore(std::uint64_t version, const Store &store)
{
    ByteWriter w;
    w.u64(version);
    w.u32(static_cast<std::uint32_t>(store.size()));
    for (const auto &[key, value] : store) {
        w.str(key);
        w.lengthPrefixed(value);
    }
    return w.take();
}

Result<std::pair<std::uint64_t, Store>>
decodeStore(const Bytes &wire)
{
    ByteReader r(wire);
    auto version = r.u64();
    if (!version)
        return version.error();
    auto count = r.u32();
    if (!count)
        return count.error();
    Store store;
    for (std::uint32_t i = 0; i < *count; ++i) {
        auto key = r.str();
        if (!key)
            return key.error();
        auto value = r.lengthPrefixed();
        if (!value)
            return value.error();
        store.emplace(key.take(), value.take());
    }
    if (!r.atEnd())
        return Error(Errc::integrityFailure, "trailing store bytes");
    return std::make_pair(*version, std::move(store));
}

/** Per-op modeled compute. */
constexpr Duration opCost = Duration::micros(40);

/** Names under which a persistent incarnation lives in its store. */
constexpr const char *kvImageKey = "kvstore/image";
constexpr const char *kvCounterKey = "kvstore/counter";
constexpr const char *kvNvKey = "kvstore/tpmnv";

} // namespace

SecureKvStore::SecureKvStore(sea::SeaDriver &driver) : driver_(driver)
{
}

Result<Bytes>
SecureKvStore::session(Op op, const std::string &key, const Bytes &value,
                       CpuId cpu)
{
    const std::uint32_t counter = counterHandle_;
    const Bytes state_in = sealedImage_;

    // One PAL identity for every operation: the store must unseal across
    // operations, so all flows share (name, codeBytes).
    const sea::Pal pal = sea::Pal::fromLogic(
        "secure-kvstore-pal", 10 * 1024,
        [op, key, value, counter,
         state_in](sea::PalContext &ctx) -> Status {
            std::uint64_t version = 0;
            Store store;

            if (op != Op::init) {
                auto blob = tpm::SealedBlob::decode(state_in);
                if (!blob)
                    return blob.error();
                auto wire = ctx.unsealState(*blob);
                if (!wire)
                    return wire.error();
                auto decoded = decodeStore(*wire);
                if (!decoded)
                    return decoded.error();
                version = decoded->first;
                store = std::move(decoded->second);

                // Freshness: the sealed version must match the hardware
                // counter exactly; anything lower is a replayed image.
                auto hw = ctx.tpm().counterRead(counter);
                if (!hw)
                    return hw.error();
                if (version < *hw) {
                    return Error(Errc::integrityFailure,
                                 "stale store image: rollback detected");
                }
            }

            ctx.compute(opCost);
            ByteWriter out;
            bool mutate = false;
            switch (op) {
              case Op::init:
                mutate = true;
                break;
              case Op::put:
                store[key] = value;
                mutate = true;
                break;
              case Op::remove:
                if (store.erase(key) == 0) {
                    return Error(Errc::notFound,
                                 "no such key: " + key);
                }
                mutate = true;
                break;
              case Op::get: {
                  auto it = store.find(key);
                  if (it == store.end()) {
                      return Error(Errc::notFound,
                                   "no such key: " + key);
                  }
                  out.u8(0);
                  out.lengthPrefixed(it->second);
                  break;
              }
              case Op::size: {
                  ByteWriter inner;
                  inner.u32(static_cast<std::uint32_t>(store.size()));
                  out.u8(0);
                  out.lengthPrefixed(inner.bytes());
                  break;
              }
            }

            if (mutate) {
                auto next = ctx.tpm().counterIncrement(counter);
                if (!next)
                    return next.error();
                auto blob = ctx.sealState(encodeStore(*next, store));
                if (!blob)
                    return blob.error();
                out.u8(1);
                out.lengthPrefixed(blob->encode());
            }
            ctx.setOutput(out.take());
            return okStatus();
        });

    auto report = driver_.run(sea::PalRequest(std::move(pal)), cpu);
    if (!report)
        return report.error();
    if (!report->status.ok())
        return report->status.error();

    ByteReader r(report->output);
    auto kind = r.u8();
    if (!kind)
        return kind.error();
    auto payload = r.lengthPrefixed();
    if (!payload)
        return payload.error();
    if (*kind == 1) {
        sealedImage_ = payload.take();
        if (auto s = persistNow(); !s.ok())
            return s.error();
        return Bytes{};
    }
    return payload.take();
}

Status
SecureKvStore::attachPersistence(sea::SealedStateStore &store)
{
    if (initialized_) {
        return Error(Errc::failedPrecondition,
                     "attach persistence before initialize()");
    }
    persist_ = &store;
    return okStatus();
}

Status
SecureKvStore::persistNow()
{
    if (persist_ == nullptr)
        return okStatus();
    // Image first, chip NV second: a crash between the two leaves the
    // durable counter *behind* the image version, which the freshness
    // check accepts (version >= counter); the other order would make
    // every such crash indistinguishable from a rollback attack.
    if (auto s = persist_->storeSealedState(kvImageKey, sealedImage_);
        !s.ok()) {
        return s;
    }
    ByteWriter handle;
    handle.u32(counterHandle_);
    if (auto s = persist_->storeSealedState(kvCounterKey,
                                            handle.take());
        !s.ok()) {
        return s;
    }
    return persist_->storeSealedState(
        kvNvKey, driver_.machine().tpm().exportNvState());
}

Status
SecureKvStore::restoreFromPersistence()
{
    auto nv = persist_->loadSealedState(kvNvKey);
    if (!nv)
        return nv.error();
    if (auto s = driver_.machine().tpm().importNvState(*nv); !s.ok())
        return s;
    auto handleWire = persist_->loadSealedState(kvCounterKey);
    if (!handleWire)
        return handleWire.error();
    ByteReader r(*handleWire);
    auto handle = r.u32();
    if (!handle || !r.atEnd()) {
        return Error(Errc::integrityFailure,
                     "malformed persisted counter handle");
    }
    auto image = persist_->loadSealedState(kvImageKey);
    if (!image)
        return image.error();
    counterHandle_ = *handle;
    sealedImage_ = image.take();
    initialized_ = true;
    restored_ = true;
    return okStatus();
}

Status
SecureKvStore::initialize(CpuId cpu)
{
    if (initialized_) {
        return Error(Errc::failedPrecondition,
                     "store already initialized");
    }
    if (persist_ != nullptr && persist_->hasSealedState(kvImageKey))
        return restoreFromPersistence();
    auto counter = driver_.machine().tpm().counterCreate();
    if (!counter)
        return counter.error();
    counterHandle_ = *counter;
    auto out = session(Op::init, {}, {}, cpu);
    if (!out)
        return out.error();
    initialized_ = true;
    return okStatus();
}

Status
SecureKvStore::put(const std::string &key, const Bytes &value, CpuId cpu)
{
    if (!initialized_)
        return Error(Errc::failedPrecondition, "store not initialized");
    auto out = session(Op::put, key, value, cpu);
    if (!out)
        return out.error();
    return okStatus();
}

Result<Bytes>
SecureKvStore::get(const std::string &key, CpuId cpu)
{
    if (!initialized_)
        return Error(Errc::failedPrecondition, "store not initialized");
    return session(Op::get, key, {}, cpu);
}

Status
SecureKvStore::remove(const std::string &key, CpuId cpu)
{
    if (!initialized_)
        return Error(Errc::failedPrecondition, "store not initialized");
    auto out = session(Op::remove, key, {}, cpu);
    if (!out)
        return out.error();
    return okStatus();
}

Result<std::size_t>
SecureKvStore::size(CpuId cpu)
{
    if (!initialized_)
        return Error(Errc::failedPrecondition, "store not initialized");
    auto out = session(Op::size, {}, {}, cpu);
    if (!out)
        return out.error();
    ByteReader r(*out);
    auto n = r.u32();
    if (!n || !r.atEnd())
        return Error(Errc::integrityFailure, "malformed size response");
    return static_cast<std::size_t>(*n);
}

} // namespace mintcb::apps
