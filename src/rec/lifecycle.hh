/**
 * @file
 * The PAL life cycle (paper Figure 6).
 *
 *   Start --SLAUNCH(MF=0)--> Protect --> Measure --> Execute
 *   Execute --preempt/SYIELD--> Suspend --SLAUNCH(MF=1)--> (Protect) Execute
 *   Execute --SFREE--> Done        Suspend --SKILL--> Done
 *
 * The simulation collapses Protect/Measure into the SLAUNCH call but
 * validates every externally visible transition against this machine, so
 * illegal sequences (resuming a running PAL, SFREE from outside, SKILL
 * on a running PAL) fail exactly where the hardware would refuse them.
 */

#ifndef MINTCB_REC_LIFECYCLE_HH
#define MINTCB_REC_LIFECYCLE_HH

#include "common/result.hh"

namespace mintcb::rec
{

/** States of Figure 6. */
enum class PalState
{
    start,   //!< SECB allocated, never launched
    execute, //!< running on some CPU with protections up
    suspend, //!< context-switched out; pages in NONE
    done,    //!< exited via SFREE or SKILL; resources returned
};

/** Printable state name. */
const char *palStateName(PalState s);

/** Validate a life-cycle edge; failedPrecondition when Figure 6 has no
 *  such arrow. */
Status checkTransition(PalState from, PalState to);

} // namespace mintcb::rec

#endif // MINTCB_REC_LIFECYCLE_HH
