/**
 * @file
 * SLAUNCH / SYIELD / SFREE / SKILL semantics (paper Figures 6 and 7).
 */

#include "rec/instructions.hh"

#include "crypto/sha1.hh"
#include "latelaunch/slb.hh"

namespace mintcb::rec
{

using machine::Cpu;
using machine::PageState;

const char *
execEventName(ExecEvent e)
{
    switch (e) {
      case ExecEvent::slaunchMeasure: return "SLAUNCH(measure)";
      case ExecEvent::slaunchResume: return "SLAUNCH(resume)";
      case ExecEvent::syield: return "SYIELD";
      case ExecEvent::sfree: return "SFREE";
      case ExecEvent::skill: return "SKILL";
    }
    return "?";
}

SecureExecutive::SecureExecutive(machine::Machine &machine,
                                 std::size_t sepcr_count)
    : machine_(machine), sePcrs_(machine.tpm(), sepcr_count),
      runningOnCpu_(machine.cpuCount(), nullptr)
{
}

Result<SlaunchReport>
SecureExecutive::slaunch(CpuId cpu, Secb &secb)
{
    if (secb.pages.empty())
        return Error(Errc::invalidArgument, "SECB has no pages");
    if (secb.state == PalState::execute) {
        // "Once a PAL is executing on a CPU, any other CPU that tries to
        // resume the same PAL will fail" (Section 5.3.1).
        return Error(Errc::failedPrecondition,
                     "PAL is already executing");
    }
    if (auto s = checkTransition(secb.state, PalState::execute); !s.ok())
        return s.error();

    // The Measured Flag is honored only if the SECB's pages are in NONE
    // (Section 5.3.1) -- otherwise the OS could replay a forged MF=1
    // SECB and run unmeasured code under a stale identity.
    bool pages_were_none = true;
    for (PageNum p : secb.pages)
        pages_were_none &= machine_.memctrl().pageState(p) == PageState::none;
    const bool resume = secb.measuredFlag && pages_were_none;

    if (auto s = machine_.memctrl().aclAcquire(secb.pages, cpu); !s.ok())
        return s.error();

    Cpu &core = machine_.cpu(cpu);
    const TimePoint start = core.now();
    SlaunchReport report;

    if (resume) {
        // Fast path: the whole context switch is a VM-entry-class world
        // switch (Section 5.3.2 / Table 2).
        if (!secb.saved.valid) {
            machine_.memctrl().aclSuspend(secb.pages, cpu);
            return Error(Errc::failedPrecondition,
                         "SECB carries no saved CPU state to resume");
        }
        core.advance(
            machine_.spec().vmTiming.sampleEnter(machine_.rng()));
        core.setInterruptsEnabled(false);
        secb.saved.valid = false;
    } else {
        // Slow path: full measurement, as SKINIT pays today.
        report.firstLaunch = true;
        core.resetToTrustedState(machine_.spec().cpuStateInit);

        auto image = machine_.readAs(cpu, secb.base,
                                     latelaunch::slbHeaderBytes);
        if (!image) {
            machine_.memctrl().aclRelease(secb.pages);
            return image.error();
        }
        const std::size_t length = latelaunch::Slb::decodeLengthWord(
            static_cast<std::uint16_t>((*image)[0]) |
            static_cast<std::uint16_t>((*image)[1]) << 8);
        auto full = machine_.readAs(cpu, secb.base, length);
        if (!full) {
            machine_.memctrl().aclRelease(secb.pages);
            return full.error();
        }

        // Hardware TPM lock arbitrates concurrent launches
        // (Section 5.4.5).
        auto &tpm = machine_.tpmAs(cpu);
        if (!tpm.tryLock(cpu)) {
            machine_.memctrl().aclRelease(secb.pages);
            return Error(Errc::resourceExhausted,
                         "TPM busy measuring another PAL");
        }
        // The TPM reports sePCR exhaustion when the hash sequence opens,
        // *before* the PAL streams across the LPC bus (Section 5.4.1:
        // "If no sePCR is available, SLAUNCH must return a failure
        // code") -- so a doomed launch is cheap.
        if (sePcrs_.freeCount() == 0) {
            tpm.unlock(cpu);
            machine_.memctrl().aclRelease(secb.pages);
            return Error(Errc::resourceExhausted,
                         "no free sePCR: concurrent-PAL limit reached");
        }
        const TimePoint measure_start = core.now();
        machine_.lpc().transferTracked(full->size(), core.clock());
        tpm.charge(tpm.profile().hashStartStop, "tpm:hash_seq");
        tpm.charge(tpm.profile().hashWaitPerByte *
                       static_cast<double>(full->size()),
                   "tpm:hash_data");
        auto handle =
            sePcrs_.allocateAndMeasure(*full, tpm::Locality::hardware);
        tpm.unlock(cpu);
        if (!handle) {
            machine_.memctrl().aclRelease(secb.pages);
            return handle.error();
        }
        report.measurement = core.now() - measure_start;

        secb.sePcr = *handle;
        secb.measuredFlag = true;
        core.setInterruptsEnabled(false);
        // Stack pointer at the top of the allocated region "allowing the
        // PAL to confirm the size of its data memory region".
        secb.saved.stackPointer =
            pageBase(secb.pages.back()) + pageSize;
        secb.saved.valid = false;
    }

    if (secb.preemptionTimer > Duration::zero())
        core.armPreemptionTimer(secb.preemptionTimer);

    // Scheduling an IDT-carrying PAL reprograms the interrupt routing
    // logic (Section 6's overhead caveat).
    if (!secb.interruptVectors.empty())
        core.advance(idtReprogramCost);

    secb.state = PalState::execute;
    secb.runningOn = cpu;
    runningOnCpu_.at(cpu) = &secb;
    ++secb.launches;
    report.total = core.now() - start;
    if (resume) {
        ++contextSwitches_;
        contextSwitchTime_ += report.total;
    }
    notify(resume ? ExecEvent::slaunchResume : ExecEvent::slaunchMeasure,
           cpu, secb);
    return report;
}

Status
SecureExecutive::syield(Secb &secb)
{
    if (secb.state != PalState::execute || !secb.runningOn) {
        return Error(Errc::failedPrecondition,
                     "SYIELD outside PAL execution");
    }
    if (auto s = checkTransition(secb.state, PalState::suspend); !s.ok())
        return s;

    const CpuId cpu = *secb.runningOn;
    Cpu &core = machine_.cpu(cpu);
    const TimePoint start = core.now();

    // Hardware saves the architectural state into the SECB...
    secb.saved.valid = true;
    secb.saved.instructionPointer = 0xf11c4e5;

    // ...signals the memory controller that the pages are off limits...
    if (auto s = machine_.memctrl().aclSuspend(secb.pages, cpu); !s.ok())
        return s;

    // ...and clears leak-capable microarchitectural state.
    core.secureStateClear(machine_.spec().microarchFlush);
    core.advance(machine_.spec().vmTiming.sampleExit(machine_.rng()));
    core.disarmPreemptionTimer();
    core.setInterruptsEnabled(true); // control returns to the OS handler

    secb.state = PalState::suspend;
    secb.resumeFlag = true;
    runningOnCpu_.at(cpu) = nullptr;
    secb.runningOn.reset();
    ++secb.yields;
    ++contextSwitches_;
    contextSwitchTime_ += core.now() - start;
    notify(ExecEvent::syield, cpu, secb);
    return okStatus();
}

Result<Duration>
SecureExecutive::executeFor(Secb &secb, Duration work)
{
    if (secb.state != PalState::execute || !secb.runningOn) {
        return Error(Errc::failedPrecondition,
                     "executeFor requires an executing PAL");
    }
    Cpu &core = machine_.cpu(*secb.runningOn);
    const auto budget = core.preemptionBudget();
    const bool preempt = budget && *budget < work;
    const Duration slice = preempt ? *budget : work;
    core.advance(slice);
    secb.executed += slice;
    if (preempt) {
        // Timer expiry: hardware-forced SYIELD.
        ++secb.preemptions;
        if (auto s = syield(secb); !s.ok())
            return s.error();
    }
    return slice;
}

Status
SecureExecutive::sfree(Secb &secb, bool from_pal)
{
    if (secb.state != PalState::execute || !secb.runningOn) {
        return Error(Errc::failedPrecondition,
                     "SFREE requires an executing PAL");
    }
    if (!from_pal) {
        // "SFREE executed by other code must fail. This can be detected
        // by verifying that the SFREE instruction resides at a physical
        // memory address inside the PAL's memory region" (Section 5.5).
        return Error(Errc::permissionDenied,
                     "SFREE must execute from inside the PAL");
    }
    if (auto s = checkTransition(secb.state, PalState::done); !s.ok())
        return s;

    const CpuId cpu = *secb.runningOn;
    Cpu &core = machine_.cpu(cpu);

    // sePCR: Exclusive -> Quote, so untrusted code can attest the run.
    if (secb.sePcr) {
        if (auto s = sePcrs_.transitionToQuote(*secb.sePcr,
                                               tpm::Locality::hardware);
            !s.ok()) {
            return s;
        }
    }

    // Pages back to ALL (the PAL erased its own secrets beforehand).
    if (auto s = machine_.memctrl().aclRelease(secb.pages); !s.ok())
        return s;

    core.secureStateClear(machine_.spec().microarchFlush);
    core.advance(machine_.spec().vmTiming.sampleExit(machine_.rng()));
    core.disarmPreemptionTimer();
    core.setInterruptsEnabled(true);

    secb.state = PalState::done;
    runningOnCpu_.at(cpu) = nullptr;
    secb.runningOn.reset();
    notify(ExecEvent::sfree, cpu, secb);
    return okStatus();
}

Status
SecureExecutive::skill(Secb &secb)
{
    // Figure 6: SKILL runs on a *suspended* (misbehaving) PAL.
    if (secb.state != PalState::suspend) {
        return Error(Errc::failedPrecondition,
                     "SKILL applies to suspended PALs");
    }
    if (auto s = checkTransition(secb.state, PalState::done); !s.ok())
        return s;

    // Hardware erases every page before anything else can see it.
    for (PageNum p : secb.pages)
        machine_.memory().zeroPage(p);
    if (auto s = machine_.memctrl().aclRelease(secb.pages); !s.ok())
        return s;

    if (secb.sePcr) {
        if (auto s = sePcrs_.kill(*secb.sePcr, tpm::Locality::hardware);
            !s.ok()) {
            return s;
        }
    }

    secb.state = PalState::done;
    secb.saved.valid = false;
    // The OS reclaims a suspended PAL; by convention the boot CPU
    // executes SKILL in this simulation.
    notify(ExecEvent::skill, 0, secb);
    return okStatus();
}

Status
SecureExecutive::configureIdt(Secb &secb,
                              std::vector<std::uint8_t> vectors)
{
    if (secb.state != PalState::execute) {
        return Error(Errc::failedPrecondition,
                     "only a running PAL may install its IDT");
    }
    secb.interruptVectors = std::move(vectors);
    return okStatus();
}

Result<bool>
SecureExecutive::deliverInterrupt(CpuId cpu, std::uint8_t vector)
{
    if (cpu >= machine_.cpuCount())
        return Error(Errc::invalidArgument, "CPU out of range");
    Secb *running = runningOnCpu_.at(cpu);
    if (!running) {
        // No PAL on this core: the OS takes it as usual.
        return false;
    }
    // A PAL core has interrupts masked unless the PAL opted in to this
    // exact vector (Section 6: "Routing only the interrupts the PAL is
    // interested in").
    for (std::uint8_t v : running->interruptVectors) {
        if (v == vector) {
            machine_.cpu(cpu).advance(Duration::nanos(300)); // dispatch
            ++palInterrupts_;
            return true;
        }
    }
    return false;
}

Status
SecureExecutive::join(CpuId joining_cpu, Secb &secb)
{
    if (secb.state != PalState::execute || !secb.runningOn) {
        return Error(Errc::failedPrecondition,
                     "join requires an executing PAL");
    }
    if (auto s = machine_.memctrl().aclJoin(secb.pages, *secb.runningOn,
                                            joining_cpu);
        !s.ok()) {
        return s;
    }
    Cpu &joiner = machine_.cpu(joining_cpu);
    joiner.advance(machine_.spec().vmTiming.sampleEnter(machine_.rng()));
    joiner.setInterruptsEnabled(false);
    return okStatus();
}

} // namespace mintcb::rec
