/**
 * @file
 * sePCR set implementation.
 */

#include "rec/sepcr_set.hh"

#include "crypto/sha1.hh"

namespace mintcb::rec
{

Result<SePcrSetHandle>
SePcrSets::allocateAndMeasure(std::size_t slots, const Bytes &pal_image,
                              tpm::Locality locality)
{
    if (slots == 0)
        return Error(Errc::invalidArgument, "empty sePCR set");
    if (bank_.freeCount() < slots) {
        return Error(Errc::resourceExhausted,
                     "not enough free sePCRs for the requested set");
    }

    SePcrSetHandle set;
    // Slot 0 carries the launch measurement.
    auto first = bank_.allocateAndMeasure(pal_image, locality);
    if (!first)
        return first.error();
    set.slots.push_back(*first);
    // Remaining slots start at the reset value (measure an empty image
    // placeholder, then the slot is just "reset + empty extend"? No --
    // allocate with the pal image would forge identities; allocate each
    // with a slot-tag so values are distinct and well-defined).
    for (std::size_t i = 1; i < slots; ++i) {
        auto h = bank_.allocateAndMeasure(
            Bytes{static_cast<std::uint8_t>(i)}, locality);
        if (!h) {
            // Cannot happen after the freeCount check; unwind anyway.
            for (SePcrHandle held : set.slots)
                bank_.kill(held, tpm::Locality::hardware);
            return h.error();
        }
        set.slots.push_back(*h);
    }
    return set;
}

Status
SePcrSets::extend(const SePcrSetHandle &set, std::size_t slot,
                  const Bytes &digest)
{
    if (slot >= set.size())
        return Error(Errc::invalidArgument, "set slot out of range");
    const SePcrHandle h = set.slot(slot);
    return bank_.extend(h, digest, h);
}

Status
SePcrSets::transitionToQuote(const SePcrSetHandle &set,
                             tpm::Locality locality)
{
    for (SePcrHandle h : set.slots) {
        if (auto s = bank_.transitionToQuote(h, locality); !s.ok())
            return s;
    }
    return okStatus();
}

Result<tpm::TpmQuote>
SePcrSets::quoteSubset(const SePcrSetHandle &set,
                       const std::vector<std::size_t> &slots,
                       const Bytes &nonce)
{
    if (slots.empty())
        return Error(Errc::invalidArgument, "empty quote subset");
    tpm::TpmQuote q;
    for (std::size_t slot : slots) {
        if (slot >= set.size())
            return Error(Errc::invalidArgument, "set slot out of range");
        const SePcrHandle h = set.slot(slot);
        if (bank_.state(h) != SePcrState::quote) {
            return Error(Errc::failedPrecondition,
                         "sePCR set slot not in the Quote state");
        }
        auto value = bank_.value(h);
        if (!value)
            return value.error();
        q.selection.push_back(tpm::pcrCount + h);
        q.values.push_back(*value);
    }
    q.nonce = nonce;
    bank_.base().charge(bank_.base().profile().quote, "sepcr:quote");
    q.signature = bank_.base().aikSign(q.signedPayload());
    return q;
}

Status
SePcrSets::release(const SePcrSetHandle &set)
{
    for (SePcrHandle h : set.slots) {
        if (auto s = bank_.release(h); !s.ok())
            return s;
    }
    return okStatus();
}

Status
SePcrSets::kill(const SePcrSetHandle &set, tpm::Locality locality)
{
    for (SePcrHandle h : set.slots) {
        if (auto s = bank_.kill(h, locality); !s.ok())
            return s;
    }
    return okStatus();
}

} // namespace mintcb::rec
