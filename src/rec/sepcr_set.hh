/**
 * @file
 * sePCR sets (paper Section 6).
 *
 * "It is a straightforward extension to group sePCRs into sets and bind
 * a set of sePCRs to each PAL. ... Some [TPM operations] will be indexed
 * by the sePCR set itself (e.g., SLAUNCH will need to cause all sePCRs
 * in a set to reset), some by a subset of the sePCRs in a set (e.g.,
 * TPM_Quote), and others by the individual sePCRs inside a set (e.g.,
 * TPM_Extend)."
 *
 * A set gives one PAL several measurement chains: slot 0 conventionally
 * holds the launch identity, further slots record inputs, outputs, or
 * phase markers -- mirroring how PCR 17/18 split duties on Intel.
 */

#ifndef MINTCB_REC_SEPCR_SET_HH
#define MINTCB_REC_SEPCR_SET_HH

#include <vector>

#include "rec/sepcr.hh"

namespace mintcb::rec
{

/** Handle of an allocated sePCR set. */
struct SePcrSetHandle
{
    std::vector<SePcrHandle> slots;

    std::size_t size() const { return slots.size(); }
    SePcrHandle slot(std::size_t i) const { return slots.at(i); }
};

/** Set-level operations layered on the sePCR bank. */
class SePcrSets
{
  public:
    explicit SePcrSets(SePcrTpm &bank) : bank_(bank) {}

    /**
     * SLAUNCH leg: allocate @p slots sePCRs atomically, reset them all,
     * and extend slot 0 with the PAL measurement. Fails (allocating
     * nothing) unless @p slots sePCRs are free.
     */
    Result<SePcrSetHandle> allocateAndMeasure(std::size_t slots,
                                              const Bytes &pal_image,
                                              tpm::Locality locality);

    /** Extend one slot (indexed by the individual sePCR). */
    Status extend(const SePcrSetHandle &set, std::size_t slot,
                  const Bytes &digest);

    /** SFREE leg: every slot moves Exclusive -> Quote. */
    Status transitionToQuote(const SePcrSetHandle &set,
                             tpm::Locality locality);

    /**
     * Quote a *subset* of the set's slots in one signature (Section 6:
     * TPM_Quote indexed "by a subset of the sePCRs in a set").
     */
    Result<tpm::TpmQuote> quoteSubset(const SePcrSetHandle &set,
                                      const std::vector<std::size_t> &slots,
                                      const Bytes &nonce);

    /** Free every slot after quoting. */
    Status release(const SePcrSetHandle &set);

    /** SKILL leg: kill every slot. */
    Status kill(const SePcrSetHandle &set, tpm::Locality locality);

  private:
    SePcrTpm &bank_;
};

} // namespace mintcb::rec

#endif // MINTCB_REC_SEPCR_SET_HH
