/**
 * @file
 * sePCR-quote verifier implementation.
 */

#include "rec/verifier.hh"

#include "common/bytebuf.hh"
#include "crypto/sha1.hh"

namespace mintcb::rec
{

namespace
{

Bytes
extendZero(const Bytes &measurement)
{
    ByteWriter w;
    w.raw(Bytes(crypto::sha1DigestSize, 0x00));
    w.raw(measurement);
    return crypto::Sha1::digestBytes(w.bytes());
}

} // namespace

void
SeVerifier::trustPalImage(std::string name, const Bytes &pal_image)
{
    trustMeasurement(std::move(name),
                     crypto::Sha1::digestBytes(pal_image));
}

void
SeVerifier::trustMeasurement(std::string name, const Bytes &measurement)
{
    whitelist_.push_back(
        {std::move(name), measurement, extendZero(measurement)});
}

Result<VerifiedSePcrLaunch>
SeVerifier::verify(const tpm::TpmQuote &quote,
                   const crypto::RsaPublicKey &aik,
                   const Bytes &expected_nonce) const
{
    if (auto s = tpm::verifyQuote(aik, quote, expected_nonce);
        !s.ok()) {
        return Error(s.error().code,
                     "sePCR quote refused: " + s.error().message);
    }
    // Locate the first sePCR-namespaced entry.
    const Bytes *value = nullptr;
    for (std::size_t i = 0; i < quote.selection.size(); ++i) {
        if (quote.selection[i] >= tpm::pcrCount) {
            value = &quote.values[i];
            break;
        }
    }
    if (!value) {
        return Error(Errc::invalidArgument,
                     "quote does not cover any sePCR");
    }

    // A SKILLed PAL's chain ends in the kill marker; no whitelist entry
    // can match it, but name the condition for the caller.
    for (const Entry &e : whitelist_) {
        ByteWriter w;
        w.raw(e.expectedValue);
        w.raw(SePcrTpm::killMarker());
        if (*value == crypto::Sha1::digestBytes(w.bytes())) {
            return Error(Errc::failedPrecondition,
                         "PAL \"" + e.name +
                             "\" was killed by SKILL before completing");
        }
    }

    for (const Entry &e : whitelist_) {
        if (*value == e.expectedValue)
            return VerifiedSePcrLaunch{e.name, e.measurement};
    }
    return Error(Errc::permissionDenied,
                 "sePCR identity matches no trusted PAL");
}

} // namespace mintcb::rec
