/**
 * @file
 * Life-cycle transition table.
 */

#include "rec/lifecycle.hh"

#include <string>

namespace mintcb::rec
{

const char *
palStateName(PalState s)
{
    switch (s) {
      case PalState::start:
        return "Start";
      case PalState::execute:
        return "Execute";
      case PalState::suspend:
        return "Suspend";
      case PalState::done:
        return "Done";
    }
    return "unknown";
}

Status
checkTransition(PalState from, PalState to)
{
    bool ok = false;
    switch (from) {
      case PalState::start:
        ok = to == PalState::execute; // SLAUNCH with MF=0
        break;
      case PalState::execute:
        // SYIELD/preempt -> Suspend; SFREE -> Done.
        ok = to == PalState::suspend || to == PalState::done;
        break;
      case PalState::suspend:
        // SLAUNCH with MF=1 -> Execute; SKILL -> Done.
        ok = to == PalState::execute || to == PalState::done;
        break;
      case PalState::done:
        ok = false; // terminal
        break;
    }
    if (ok)
        return okStatus();
    return Error(Errc::failedPrecondition,
                 std::string("illegal PAL life-cycle transition ") +
                     palStateName(from) + " -> " + palStateName(to));
}

} // namespace mintcb::rec
