/**
 * @file
 * External verification for the recommended architecture.
 *
 * Under SLAUNCH a PAL's identity lives in a sePCR, quoted by untrusted
 * code after exit (Section 5.4.3). The verifier's job is unchanged from
 * SEA -- whitelist PAL measurements, check the AIK signature -- but the
 * quote addresses sePCR handles (namespaced above the 24 ordinary PCRs)
 * and a kill marker may appear in the chain if the PAL was SKILLed.
 */

#ifndef MINTCB_REC_VERIFIER_HH
#define MINTCB_REC_VERIFIER_HH

#include <string>
#include <vector>

#include "common/result.hh"
#include "crypto/rsa.hh"
#include "rec/sepcr.hh"
#include "tpm/tpm.hh"

namespace mintcb::rec
{

/** Verdict of a successful sePCR-quote verification. */
struct VerifiedSePcrLaunch
{
    std::string palName;   //!< whitelist label that matched
    Bytes palMeasurement;  //!< the matched measurement
};

/** Verifier for sePCR quotes. */
class SeVerifier
{
  public:
    /** Whitelist a PAL by its measured SLB image. */
    void trustPalImage(std::string name, const Bytes &pal_image);

    /** Whitelist a raw SLB measurement. */
    void trustMeasurement(std::string name, const Bytes &measurement);

    /**
     * Verify @p quote (produced by SePcrTpm::quote or
     * SePcrSets::quoteSubset slot 0) against @p aik and
     * @p expected_nonce. Rejects kill-marked and unknown identities.
     */
    Result<VerifiedSePcrLaunch> verify(const tpm::TpmQuote &quote,
                                       const crypto::RsaPublicKey &aik,
                                       const Bytes &expected_nonce) const;

  private:
    struct Entry
    {
        std::string name;
        Bytes measurement;
        Bytes expectedValue; //!< extend(0, measurement)
    };
    std::vector<Entry> whitelist_;
};

} // namespace mintcb::rec

#endif // MINTCB_REC_VERIFIER_HH
