/**
 * @file
 * The untrusted OS as resource manager (paper Figure 4).
 *
 * "Our recommendations must ... enable the concurrent execution of an
 * arbitrary number of mutually-untrusting PALs alongside an untrusted
 * legacy OS and legacy applications, and ... performant context
 * switching of individual PALs" (Section 5). The scheduler multiplexes
 * PALs over CPUs in preemption-timer quanta while legacy work fills
 * every idle cycle -- exactly the multiprogramming model SLAUNCH enables
 * and today's SKINIT forbids.
 */

#ifndef MINTCB_REC_SCHEDULER_HH
#define MINTCB_REC_SCHEDULER_HH

#include <functional>
#include <string>
#include <vector>

#include "common/result.hh"
#include "rec/instructions.hh"

namespace mintcb::sea
{
class SealedStateStore; // defined in sea/statestore.hh (layering)
}

namespace mintcb::rec
{

class PalHooks;

/** What the OS knows about a PAL it wants to run. */
struct PalProgram
{
    std::string name;
    std::size_t codeBytes = 4096;     //!< SLB code size (identity)
    std::size_t dataPages = 1;        //!< extra pages for PAL data
    Duration totalCompute;            //!< work the PAL must retire
    int priority = 0;                 //!< higher runs sooner (aged)
    TimePoint deadline{};             //!< epoch = no deadline
    bool wantQuote = false;           //!< quote this PAL's sePCR on exit
    /** Runs inside the PAL on its first slice (e.g. unseal old state). */
    std::function<Status(PalHooks &)> onStart;
    /** Runs inside the PAL on its final slice (e.g. seal new state). */
    std::function<Status(PalHooks &)> onFinish;
    /** Durable home for sealed state, surfaced to the hooks; null keeps
     *  the classic arrangement (the OS holds the blob). */
    sea::SealedStateStore *stateStore = nullptr;
};

/** TPM/compute services available to a running PAL's hooks. */
class PalHooks
{
  public:
    PalHooks(SecureExecutive &exec, Secb &secb, CpuId cpu);

    CpuId cpu() const { return cpu_; }
    Secb &secb() { return secb_; }

    /** Charge PAL-side computation. */
    void compute(Duration d);

    /** Seal @p payload to this PAL's sePCR identity. */
    Result<tpm::SealedBlob> seal(const Bytes &payload);
    /** Unseal a blob sealed under this identity in any earlier run. */
    Result<Bytes> unseal(const tpm::SealedBlob &blob);
    /** Extend this PAL's sePCR (e.g. with input measurements). */
    Status extend(const Bytes &digest);

    /** @name Durable sealed-state home, when the program attached one.
     * @{ */
    void setStateStore(sea::SealedStateStore *store)
    {
        stateStore_ = store;
    }
    sea::SealedStateStore *stateStore() const { return stateStore_; }
    /** @} */

  private:
    SecureExecutive &exec_;
    Secb &secb_;
    CpuId cpu_;
    sea::SealedStateStore *stateStore_ = nullptr;
};

/** Per-PAL completion record. */
struct PalCompletion
{
    std::string name;
    Status result = okStatus();
    Duration finishedAt;       //!< platform time of SFREE
    std::uint64_t launches = 0;
    std::uint64_t yields = 0;
    tpm::TpmQuote quote;       //!< filled when quoting was requested
    bool quoted = false;
    std::size_t seq = 0;       //!< add() index, for caller correlation
    Bytes measurement;         //!< SLB identity hash of this PAL
    std::uint64_t preemptions = 0; //!< timer-forced suspends
    CpuId cpu = 0;             //!< CPU that ran the final slice
    bool deadlineMet = true;   //!< false iff a deadline was set and missed
};

/** Aggregate outcome of a scheduler run. */
struct RunStats
{
    Duration makespan;                 //!< all PALs finished by this time
    std::uint64_t legacyWorkUnits = 0; //!< retired concurrently
    std::uint64_t contextSwitches = 0;
    Duration contextSwitchTime;
    std::uint64_t slaunchRetries = 0;  //!< sePCR/TPM contention retries
    std::uint64_t preemptions = 0;     //!< timer expiries across all PALs
    std::vector<PalCompletion> completions;
};

/** The untrusted OS scheduler. */
class OsScheduler
{
  public:
    /**
     * @p quantum is the preemption-timer budget the OS grants per slice.
     * @p legacy_cpus reserves that many CPUs (from CPU 0 up) for pure
     * legacy work; the rest run PALs (and legacy filler between slices).
     */
    OsScheduler(SecureExecutive &exec, Duration quantum,
                std::uint32_t legacy_cpus = 1);

    /** Enqueue @p program; allocates its SECB immediately. */
    Result<std::size_t> add(const PalProgram &program);

    /** Request an attestation quote as each PAL exits. */
    void setQuoteOnExit(bool on) { quoteOnExit_ = on; }

    /** Invoked synchronously as each PAL completes (after its SFREE). */
    void setCompletionHook(std::function<void(const PalCompletion &)> hook)
    {
        completionHook_ = std::move(hook);
    }

    /** Run until every queued PAL is Done. */
    Result<RunStats> runAll();

  private:
    struct Task
    {
        PalProgram program;
        Secb secb;
        Duration remaining;
        bool startHookRan = false;
        bool finished = false;
        std::uint64_t lastRound = ~0ull; //!< one slice per round (causality)
        std::size_t seq = 0;             //!< add() order, stable tie-break
        std::uint64_t waitRounds = 0;    //!< rounds skipped (priority aging)
        Bytes measurement;               //!< SLB identity hash
    };

    SecureExecutive &exec_;
    Duration quantum_;
    std::uint32_t legacyCpus_;
    bool quoteOnExit_ = false;
    std::function<void(const PalCompletion &)> completionHook_;
    PhysAddr nextBase_ = 0x40000;
    std::vector<Task> tasks_;
};

} // namespace mintcb::rec

#endif // MINTCB_REC_SCHEDULER_HH
