/**
 * @file
 * OS scheduler implementation.
 *
 * Deterministic virtual-time round-robin: each scheduling round gives
 * every PAL-eligible CPU one slice (SLAUNCH + compute + SYIELD/SFREE);
 * every CPU then fills up to the round barrier with legacy work, which
 * is how the run measures legacy throughput *concurrent* with secure
 * execution -- the property today's hardware denies (Section 4.2).
 */

#include "rec/scheduler.hh"

#include <algorithm>

#include "sea/pal.hh"

namespace mintcb::rec
{

PalHooks::PalHooks(SecureExecutive &exec, Secb &secb, CpuId cpu)
    : exec_(exec), secb_(secb), cpu_(cpu)
{
}

void
PalHooks::compute(Duration d)
{
    exec_.machine().cpu(cpu_).advance(d);
}

Result<tpm::SealedBlob>
PalHooks::seal(const Bytes &payload)
{
    if (!secb_.sePcr)
        return Error(Errc::failedPrecondition, "PAL has no sePCR");
    exec_.machine().tpmAs(cpu_); // charge this core
    return exec_.sePcrs().seal(*secb_.sePcr, payload, *secb_.sePcr);
}

Result<Bytes>
PalHooks::unseal(const tpm::SealedBlob &blob)
{
    if (!secb_.sePcr)
        return Error(Errc::failedPrecondition, "PAL has no sePCR");
    exec_.machine().tpmAs(cpu_);
    return exec_.sePcrs().unseal(*secb_.sePcr, blob, *secb_.sePcr);
}

Status
PalHooks::extend(const Bytes &digest)
{
    if (!secb_.sePcr)
        return Error(Errc::failedPrecondition, "PAL has no sePCR");
    exec_.machine().tpmAs(cpu_);
    return exec_.sePcrs().extend(*secb_.sePcr, digest, *secb_.sePcr);
}

OsScheduler::OsScheduler(SecureExecutive &exec, Duration quantum,
                         std::uint32_t legacy_cpus)
    : exec_(exec), quantum_(quantum), legacyCpus_(legacy_cpus)
{
}

Result<std::size_t>
OsScheduler::add(const PalProgram &program)
{
    const sea::Pal identity = sea::Pal::fromLogic(
        program.name, program.codeBytes,
        [](sea::PalContext &) { return okStatus(); });
    auto secb = allocateSecb(exec_.machine(), identity, nextBase_,
                             program.dataPages, quantum_);
    if (!secb)
        return secb.error();
    nextBase_ += (secb->pages.size() + 1) * pageSize;

    Task task;
    task.program = program;
    task.secb = secb.take();
    task.remaining = program.totalCompute;
    task.seq = tasks_.size();
    task.measurement = identity.measurement();
    tasks_.push_back(std::move(task));
    return tasks_.size() - 1;
}

Result<RunStats>
OsScheduler::runAll()
{
    machine::Machine &m = exec_.machine();
    const std::uint32_t total_cpus =
        static_cast<std::uint32_t>(m.cpuCount());
    if (legacyCpus_ >= total_cpus && !tasks_.empty()) {
        return Error(Errc::invalidArgument,
                     "no CPUs left for PAL execution");
    }

    RunStats stats;
    std::uint64_t legacy_before = 0;
    for (CpuId c = 0; c < total_cpus; ++c)
        legacy_before += m.cpu(c).legacyWorkDone();
    const std::uint64_t switches_before = exec_.contextSwitches();
    const Duration switch_time_before = exec_.contextSwitchTime();

    std::uint64_t round = 0;
    // Aged-priority pick: effective priority grows by one per round a
    // PAL waits, so a starved low-priority PAL eventually outranks a
    // stream of high-priority arrivals. Ties go to the PAL with the
    // earliest deadline, then to submission order (deterministic).
    auto next_ready = [&]() -> Task * {
        Task *best = nullptr;
        for (Task &t : tasks_) {
            if (t.finished || t.secb.state == PalState::execute ||
                t.lastRound == round) {
                continue;
            }
            if (!best) {
                best = &t;
                continue;
            }
            const auto eff = [](const Task &x) {
                return x.program.priority +
                       static_cast<int>(x.waitRounds);
            };
            if (eff(t) != eff(*best)) {
                if (eff(t) > eff(*best))
                    best = &t;
                continue;
            }
            const bool td = t.program.deadline != TimePoint();
            const bool bd = best->program.deadline != TimePoint();
            if (td != bd) {
                if (td)
                    best = &t;
                continue;
            }
            if (td && t.program.deadline != best->program.deadline) {
                if (t.program.deadline < best->program.deadline)
                    best = &t;
                continue;
            }
            // seq order: tasks_ is already in add() order, keep best.
        }
        return best;
    };

    auto all_done = [&]() {
        return std::all_of(tasks_.begin(), tasks_.end(),
                           [](const Task &t) { return t.finished; });
    };

    // Bring every CPU to the same barrier *with the time accounted as
    // legacy work*. (An unaccounted clock sync here would teleport
    // lagging cores forward, silently deflating measured legacy
    // throughput and context-switch density.)
    auto fill_to_barrier = [&]() {
        TimePoint barrier;
        for (CpuId c = 0; c < total_cpus; ++c)
            barrier = std::max(barrier, m.cpu(c).now());
        for (CpuId c = 0; c < total_cpus; ++c) {
            const Duration gap = barrier - m.cpu(c).now();
            if (gap > Duration::zero())
                m.cpu(c).runLegacyWork(gap);
        }
        exec_.notifyBarrier();
    };

    while (!all_done()) {
        fill_to_barrier();
        bool progressed = false;

        for (CpuId cpu = legacyCpus_; cpu < total_cpus; ++cpu) {
            // A failed SLAUNCH (TPM busy, no free sePCR) must not idle
            // the CPU: fall through to the next-best candidate --
            // typically a suspended PAL that already owns an sePCR.
            Task *task = nullptr;
            while ((task = next_ready()) != nullptr) {
                task->lastRound = round;
                if (exec_.slaunch(cpu, task->secb))
                    break;
                ++stats.slaunchRetries;
                ++task->waitRounds; // keep aging across retries
            }
            if (!task)
                continue;
            task->waitRounds = 0;
            progressed = true;
            PalHooks hooks(exec_, task->secb, cpu);
            hooks.setStateStore(task->program.stateStore);

            if (!task->startHookRan) {
                task->startHookRan = true;
                if (task->program.onStart) {
                    if (auto s = task->program.onStart(hooks); !s.ok()) {
                        // PAL aborts: it yields, and the OS kills it.
                        exec_.syield(task->secb);
                        exec_.skill(task->secb);
                        task->finished = true;
                        PalCompletion aborted;
                        aborted.name = task->program.name;
                        aborted.result = Status{s.error()};
                        aborted.finishedAt =
                            m.cpu(cpu).now().sinceEpoch();
                        aborted.launches = task->secb.launches;
                        aborted.yields = task->secb.yields;
                        aborted.seq = task->seq;
                        aborted.measurement = task->measurement;
                        aborted.preemptions = task->secb.preemptions;
                        aborted.cpu = cpu;
                        // Same rule as normal completion: only a set
                        // deadline can be missed.
                        aborted.deadlineMet =
                            task->program.deadline == TimePoint() ||
                            m.cpu(cpu).now() <= task->program.deadline;
                        stats.preemptions += task->secb.preemptions;
                        stats.completions.push_back(std::move(aborted));
                        if (completionHook_)
                            completionHook_(stats.completions.back());
                        continue;
                    }
                }
            }

            // Hand the PAL its remaining work; the hardware preemption
            // timer cuts the slice at the OS-configured quantum and
            // auto-suspends (Section 5.3.1).
            auto retired = exec_.executeFor(task->secb, task->remaining);
            if (!retired)
                return retired.error();
            task->remaining -= *retired;

            if (task->remaining > Duration::zero()) {
                // Timer fired: the PAL is already suspended by hardware.
                continue;
            }

            // Final slice: run the finish hook inside the PAL, erase the
            // data pages (the PAL's own duty), and SFREE.
            Status finish = okStatus();
            if (task->program.onFinish)
                finish = task->program.onFinish(hooks);
            for (PageNum p : task->secb.pages)
                m.memory().zeroPage(p);
            if (auto s = exec_.sfree(task->secb, /*from_pal=*/true);
                !s.ok()) {
                return s.error();
            }

            PalCompletion done;
            done.name = task->program.name;
            done.result = finish;
            done.finishedAt = m.cpu(cpu).now().sinceEpoch();
            done.launches = task->secb.launches;
            done.yields = task->secb.yields;
            done.seq = task->seq;
            done.measurement = task->measurement;
            done.preemptions = task->secb.preemptions;
            done.cpu = cpu;
            done.deadlineMet =
                task->program.deadline == TimePoint() ||
                m.cpu(cpu).now() <= task->program.deadline;

            // Untrusted code collects the attestation, then frees the
            // sePCR for reuse (Section 5.4.3).
            if (task->secb.sePcr) {
                if (quoteOnExit_ || task->program.wantQuote) {
                    m.tpmAs(cpu);
                    auto q = exec_.sePcrs().quote(
                        *task->secb.sePcr, m.rng().bytes(20));
                    if (q) {
                        done.quote = q.take();
                        done.quoted = true;
                    }
                }
                exec_.sePcrs().release(*task->secb.sePcr);
            }
            task->finished = true;
            stats.preemptions += task->secb.preemptions;
            stats.completions.push_back(std::move(done));
            if (completionHook_)
                completionHook_(stats.completions.back());
        }

        // Round barrier: every CPU fills the gap to the slowest CPU with
        // legacy work -- the OS genuinely runs *alongside* the PALs.
        TimePoint round_end;
        for (CpuId c = 0; c < total_cpus; ++c)
            round_end = std::max(round_end, m.cpu(c).now());
        if (!progressed && round_end == m.now()) {
            // Nothing launched and no time passed (pure contention):
            // let the OS spin briefly so retries make progress.
            round_end += quantum_;
        }
        for (CpuId c = 0; c < total_cpus; ++c) {
            const Duration gap = round_end - m.cpu(c).now();
            if (gap > Duration::zero())
                m.cpu(c).runLegacyWork(gap);
        }
        exec_.notifyBarrier();
        // Everyone who waited this round ages by one (priority boost).
        for (Task &t : tasks_) {
            if (!t.finished && t.lastRound != round)
                ++t.waitRounds;
        }
        ++round;
    }

    stats.makespan = m.now().sinceEpoch();
    std::uint64_t legacy_after = 0;
    for (CpuId c = 0; c < total_cpus; ++c)
        legacy_after += m.cpu(c).legacyWorkDone();
    stats.legacyWorkUnits = legacy_after - legacy_before;
    stats.contextSwitches = exec_.contextSwitches() - switches_before;
    stats.contextSwitchTime =
        exec_.contextSwitchTime() - switch_time_before;
    return stats;
}

} // namespace mintcb::rec
