/**
 * @file
 * sePCR bank implementation.
 */

#include "rec/sepcr.hh"

#include <string>

#include "crypto/sha1.hh"
#include "tpm/blob.hh"

namespace mintcb::rec
{

namespace
{

/** One extend step v' = H(v || d), streamed (no concatenation buffer). */
Bytes
extendValue(const Bytes &value, const Bytes &digest)
{
    crypto::Sha1 ctx;
    ctx.update(value);
    ctx.update(digest);
    const auto out = ctx.finish();
    return Bytes(out.begin(), out.end());
}

} // namespace

const char *
sePcrStateName(SePcrState s)
{
    switch (s) {
      case SePcrState::free:
        return "Free";
      case SePcrState::exclusive:
        return "Exclusive";
      case SePcrState::quote:
        return "Quote";
    }
    return "unknown";
}

SePcrTpm::SePcrTpm(tpm::Tpm &base, std::size_t count) : base_(base)
{
    sePcrs_.resize(count);
    for (SePcr &p : sePcrs_)
        p.value.assign(crypto::sha1DigestSize, 0x00);
}

std::size_t
SePcrTpm::freeCount() const
{
    std::size_t n = 0;
    for (const SePcr &p : sePcrs_)
        n += p.state == SePcrState::free;
    return n;
}

SePcrState
SePcrTpm::state(SePcrHandle h) const
{
    assert(h < sePcrs_.size());
    return sePcrs_[h].state;
}

Result<Bytes>
SePcrTpm::value(SePcrHandle h) const
{
    if (h >= sePcrs_.size())
        return Error(Errc::notFound, "sePCR handle out of range");
    return sePcrs_[h].value;
}

Result<SePcrHandle>
SePcrTpm::allocateAndMeasure(const Bytes &pal_image,
                             tpm::Locality locality)
{
    if (locality != tpm::Locality::hardware) {
        return Error(Errc::permissionDenied,
                     "sePCR allocation is a hardware (SLAUNCH) operation");
    }
    for (SePcrHandle h = 0; h < sePcrs_.size(); ++h) {
        if (sePcrs_[h].state != SePcrState::free)
            continue;
        // Reset to zero, then extend with the PAL measurement -- the
        // same identity construction as PCR 17 after SKINIT.
        SePcr &p = sePcrs_[h];
        p.state = SePcrState::exclusive;
        p.value.assign(crypto::sha1DigestSize, 0x00);
        p.value = extendValue(p.value,
                              crypto::Sha1::digestBytes(pal_image));
        return h;
    }
    return Error(Errc::resourceExhausted,
                 "no free sePCR: concurrent-PAL limit reached");
}

Status
SePcrTpm::requireExclusiveCaller(SePcrHandle h, SePcrHandle caller,
                                 const char *op) const
{
    if (h >= sePcrs_.size())
        return Error(Errc::notFound, "sePCR handle out of range");
    if (sePcrs_[h].state != SePcrState::exclusive) {
        return Error(Errc::failedPrecondition,
                     std::string(op) + " requires an Exclusive sePCR");
    }
    if (h != caller) {
        // "other code attempting any TPM commands with the PAL's sePCR
        // handle will fail" (Section 5.4.2).
        return Error(Errc::permissionDenied,
                     std::string(op) +
                         " refused: sePCR bound to a different PAL");
    }
    return okStatus();
}

Status
SePcrTpm::extend(SePcrHandle h, const Bytes &digest, SePcrHandle caller)
{
    if (auto s = requireExclusiveCaller(h, caller, "sePCR Extend");
        !s.ok()) {
        return s;
    }
    if (digest.size() != crypto::sha1DigestSize) {
        return Error(Errc::invalidArgument,
                     "extend requires a 20-byte digest");
    }
    base_.charge(base_.profile().extend, "sepcr:extend");
    SePcr &p = sePcrs_[h];
    p.value = extendValue(p.value, digest);
    return okStatus();
}

Result<tpm::SealedBlob>
SePcrTpm::seal(SePcrHandle h, const Bytes &payload, SePcrHandle caller)
{
    if (auto s = requireExclusiveCaller(h, caller, "sePCR Seal"); !s.ok())
        return s.error();
    base_.charge(base_.profile().seal(payload.size()), "sepcr:seal");
    // Bind to the *value*, not the handle: any sePCR holding this value
    // in a future run may unseal (Section 5.4.4).
    tpm::SealPolicy policy = {{h, sePcrs_[h].value}};
    return tpm::sealBlob(base_.srkPublic(), base_.rng(), payload, policy,
                         /*se_pcr_bound=*/true);
}

Result<Bytes>
SePcrTpm::unseal(SePcrHandle h, const tpm::SealedBlob &blob,
                 SePcrHandle caller)
{
    if (auto s = requireExclusiveCaller(h, caller, "sePCR Unseal");
        !s.ok()) {
        return s.error();
    }
    base_.charge(base_.profile().unseal, "sepcr:unseal");
    if (!blob.sePcrBound) {
        return Error(Errc::failedPrecondition,
                     "blob is bound to ordinary PCRs, not a sePCR");
    }
    for (const tpm::PcrBinding &b : blob.policy) {
        // The handle recorded at seal time is advisory; the value must
        // match the *invoking PAL's* sePCR.
        if (b.digestAtRelease != sePcrs_[h].value) {
            return Error(Errc::permissionDenied,
                         "wrong PCR: sePCR value does not match the "
                         "sealed policy");
        }
    }
    return base_.unsealRaw(blob);
}

Status
SePcrTpm::transitionToQuote(SePcrHandle h, tpm::Locality locality)
{
    if (locality != tpm::Locality::hardware) {
        return Error(Errc::permissionDenied,
                     "Exclusive->Quote is a hardware (SFREE) transition");
    }
    if (h >= sePcrs_.size())
        return Error(Errc::notFound, "sePCR handle out of range");
    if (sePcrs_[h].state != SePcrState::exclusive) {
        return Error(Errc::failedPrecondition,
                     "only an Exclusive sePCR can move to Quote");
    }
    sePcrs_[h].state = SePcrState::quote;
    return okStatus();
}

Result<tpm::TpmQuote>
SePcrTpm::quote(SePcrHandle h, const Bytes &nonce)
{
    if (h >= sePcrs_.size())
        return Error(Errc::notFound, "sePCR handle out of range");
    if (sePcrs_[h].state != SePcrState::quote) {
        return Error(Errc::failedPrecondition,
                     "sePCR not in the Quote state");
    }
    base_.charge(base_.profile().quote, "sepcr:quote");
    tpm::TpmQuote q;
    // sePCR handles are namespaced above the 24 ordinary PCRs.
    q.selection = {tpm::pcrCount + h};
    q.values = {sePcrs_[h].value};
    q.nonce = nonce;
    q.signature = base_.aikSign(q.signedPayload());
    return q;
}

Status
SePcrTpm::release(SePcrHandle h)
{
    if (h >= sePcrs_.size())
        return Error(Errc::notFound, "sePCR handle out of range");
    if (sePcrs_[h].state != SePcrState::quote) {
        return Error(Errc::failedPrecondition,
                     "TPM_SEPCR_Free requires the Quote state");
    }
    sePcrs_[h].state = SePcrState::free;
    sePcrs_[h].value.assign(crypto::sha1DigestSize, 0x00);
    return okStatus();
}

Bytes
SePcrTpm::killMarker()
{
    return crypto::Sha1::digestBytes(
        Bytes{'S', 'K', 'I', 'L', 'L', 'E', 'D'});
}

Status
SePcrTpm::kill(SePcrHandle h, tpm::Locality locality)
{
    if (locality != tpm::Locality::hardware) {
        return Error(Errc::permissionDenied,
                     "SKILL's sePCR teardown is a hardware operation");
    }
    if (h >= sePcrs_.size())
        return Error(Errc::notFound, "sePCR handle out of range");
    if (sePcrs_[h].state == SePcrState::free) {
        return Error(Errc::failedPrecondition,
                     "sePCR already free");
    }
    // Extend the kill marker (so any later quote shows the kill), then
    // transition straight to Free (Section 5.5).
    SePcr &p = sePcrs_[h];
    p.value = extendValue(p.value, killMarker());
    p.state = SePcrState::free; // next allocateAndMeasure resets it
    return okStatus();
}

} // namespace mintcb::rec
