/**
 * @file
 * SECB allocation helper (the untrusted OS's side of Section 5.6's
 * "Launch: Protect and Measure" preamble).
 */

#include "rec/secb.hh"

#include "machine/machine.hh"
#include "sea/pal.hh"

namespace mintcb::rec
{

Result<Secb>
allocateSecb(machine::Machine &machine, const sea::Pal &pal,
             PhysAddr base, std::size_t data_pages,
             Duration preemption_timer)
{
    if (base % pageSize != 0) {
        return Error(Errc::invalidArgument,
                     "SECB memory must be page-aligned");
    }
    const Bytes image = pal.slbImage();
    if (auto s = machine.writeAs(0, base, image); !s.ok())
        return s.error();

    Secb secb;
    secb.palName = pal.name();
    secb.base = base;
    secb.preemptionTimer = preemption_timer;
    const std::uint64_t image_pages = pagesFor(image.size());
    for (std::uint64_t i = 0; i < image_pages + data_pages; ++i)
        secb.pages.push_back(pageOf(base) + i);
    return secb;
}

} // namespace mintcb::rec
