/**
 * @file
 * One-shot secure function execution on the recommended architecture.
 *
 * The common downstream pattern is "run this one security-sensitive
 * function with a minimal TCB and give me attestable evidence". This
 * wraps the full Section 5.6 life cycle -- allocate SECB, SLAUNCH,
 * run, erase, SFREE, quote, free the sePCR -- into a single call,
 * making the recommended architecture as easy to consume as
 * SeaDriver::execute() is for today's hardware.
 */

#ifndef MINTCB_REC_ONESHOT_HH
#define MINTCB_REC_ONESHOT_HH

#include <functional>
#include <string>

#include "rec/instructions.hh"
#include "rec/scheduler.hh"

namespace mintcb::rec
{

/** Everything a one-shot run returns. */
struct OneShotReport
{
    Bytes output;            //!< whatever the function produced
    Duration total;          //!< latency on the executing CPU
    Duration measurement;    //!< first-launch TPM measurement share
    tpm::TpmQuote quote;     //!< sePCR quote (when requested)
    bool quoted = false;
    Bytes palMeasurement;    //!< SHA-1 of the launched image
};

/** Options for a one-shot run. */
struct OneShotOptions
{
    std::size_t codeBytes = 4096; //!< identity size of the function
    std::size_t dataPages = 1;    //!< scratch memory
    CpuId cpu = 1;                //!< core to run on
    bool quote = true;            //!< produce attestation evidence
    PhysAddr base = 0x80000;      //!< where to place the image
};

/** The secure function body: gets TPM-via-sePCR hooks, returns output. */
using OneShotBody = std::function<Result<Bytes>(PalHooks &)>;

/**
 * Run @p body as the PAL named @p name under @p exec. The function's
 * sealed state (if it seals) is bound to the (name, codeBytes) identity,
 * so a later one-shot with the same identity can unseal it.
 */
Result<OneShotReport> runOneShot(SecureExecutive &exec,
                                 const std::string &name,
                                 const OneShotBody &body,
                                 const OneShotOptions &options = {});

} // namespace mintcb::rec

#endif // MINTCB_REC_ONESHOT_HH
