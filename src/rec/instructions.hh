/**
 * @file
 * The recommended CPU instructions: SLAUNCH, SYIELD, SFREE, SKILL.
 *
 * SecureExecutive models the hardware extension surface of Section 5: it
 * couples the memory controller's access-control table, the sePCR bank,
 * per-CPU preemption timers, and the VM-switch-class context-switch
 * costs into the Figure 7 semantics. This is the piece of hardware the
 * paper recommends but that was never built; mintcb executes it
 * functionally and charges the latencies the paper projects for it.
 */

#ifndef MINTCB_REC_INSTRUCTIONS_HH
#define MINTCB_REC_INSTRUCTIONS_HH

#include <cstdint>

#include "common/result.hh"
#include "machine/machine.hh"
#include "rec/secb.hh"
#include "rec/sepcr.hh"

namespace mintcb::rec
{

/** Externally visible life-cycle / synchronization events. */
enum class ExecEvent
{
    slaunchMeasure, //!< first launch: pages acquired, PAL measured
    slaunchResume,  //!< resume: pages re-acquired from NONE
    syield,         //!< suspend: pages to NONE, state saved
    sfree,          //!< clean exit: pages to ALL, sePCR to Quote
    skill,          //!< OS kill: pages erased and released
};

/** Printable event name. */
const char *execEventName(ExecEvent e);

/**
 * Observer of the hardware extension's synchronization points. The
 * verify layer hangs its happens-before race detector and trace
 * recorder here; the executive never behaves differently with an
 * observer attached. SLAUNCH events are page *acquisitions* by @p cpu,
 * SYIELD/SFREE/SKILL events are *releases* (for SKILL the OS reclaims
 * an already-suspended PAL, so the reporting CPU is 0).
 */
class ExecSyncObserver
{
  public:
    virtual ~ExecSyncObserver() = default;
    virtual void onPalEvent(ExecEvent event, CpuId cpu,
                            const Secb &secb) = 0;
    /** All CPUs meet a scheduler round barrier. */
    virtual void onBarrier() = 0;
};

/** Timing evidence from one SLAUNCH. */
struct SlaunchReport
{
    bool firstLaunch = false; //!< measured this time (MF was clear)
    Duration total;           //!< latency on the invoking CPU
    Duration measurement;     //!< TPM streaming cost (first launch only)
};

/** The hardware extension: new instructions + sePCR bank + ACL table. */
class SecureExecutive
{
  public:
    /**
     * Attach to @p machine with @p sepcr_count sePCRs (the concurrent
     * PAL limit, Section 5.4).
     */
    SecureExecutive(machine::Machine &machine,
                    std::size_t sepcr_count = 8);

    machine::Machine &machine() { return machine_; }
    SePcrTpm &sePcrs() { return sePcrs_; }

    /**
     * SLAUNCH (Figure 7). First launch: acquire the SECB's pages for
     * @p cpu, reinitialize the core, stream the PAL to the TPM, bind a
     * sePCR, set the Measured Flag, jump. Resume: re-acquire pages from
     * NONE, restore state, jump -- at VM-entry cost.
     *
     * The Measured Flag is honored only if the pages were in NONE
     * (Section 5.3.1); a forged MF on fresh pages forces re-measurement.
     *
     * @pre Like the real hardware structure (the CPU holds the SECB's
     * physical address), @p secb must not move while the PAL is in
     * Execute -- the executive keeps a pointer for interrupt routing.
     */
    Result<SlaunchReport> slaunch(CpuId cpu, Secb &secb);

    /**
     * SYIELD / preemption-timer expiry: save state to the SECB, move the
     * pages to NONE, clear leak-capable microarchitectural state, return
     * to the OS -- at VM-exit cost.
     */
    Status syield(Secb &secb);

    /**
     * Model the executing PAL computing for @p work. If the SECB's
     * preemption timer expires first, hardware runs only the budgeted
     * slice and then *automatically and securely* suspends the PAL
     * (Section 5.3.1: "When the timer expires ... the PAL's CPU state
     * should be automatically and securely written to its SECB by
     * hardware"). Returns the work actually retired.
     */
    Result<Duration> executeFor(Secb &secb, Duration work);

    /**
     * SFREE: clean PAL exit. Must execute from inside the PAL
     * (@p from_pal models the instruction-address check of Section 5.5).
     * Pages go to ALL; the sePCR moves to Quote.
     */
    Status sfree(Secb &secb, bool from_pal);

    /**
     * SKILL: the OS kills a suspended (or stuck-runnable) PAL. Hardware
     * erases every PAL page, releases them to ALL, extends the kill
     * marker, and frees the sePCR (Section 5.5).
     */
    Status skill(Secb &secb);

    /**
     * Section 6 multicore extension: join @p joining_cpu to a PAL
     * currently executing on @p secb.runningOn.
     */
    Status join(CpuId joining_cpu, Secb &secb);

    /**
     * Section 6 interrupt extension: the *running PAL* installs an IDT
     * covering @p vectors. Each subsequent resume of this PAL pays
     * idtReprogramCost to reprogram the interrupt routing logic (the
     * "undesirable overhead" the paper warns about).
     */
    Status configureIdt(Secb &secb, std::vector<std::uint8_t> vectors);

    /**
     * Deliver interrupt @p vector to @p cpu. Returns true if a PAL with
     * a matching IDT entry received it; false if it was deferred to the
     * untrusted OS (PAL running without opt-in, or no PAL at all).
     */
    Result<bool> deliverInterrupt(CpuId cpu, std::uint8_t vector);

    /** Interrupts a PAL absorbed (per-SECB count lives in the SECB;
     *  this is the platform total). */
    std::uint64_t palInterruptsDelivered() const
    {
        return palInterrupts_;
    }

    /** Cost to reprogram interrupt routing when scheduling an
     *  IDT-carrying PAL. */
    static constexpr Duration idtReprogramCost = Duration::micros(1.8);

    /** @name Aggregate statistics. @{ */
    std::uint64_t contextSwitches() const { return contextSwitches_; }
    Duration contextSwitchTime() const { return contextSwitchTime_; }
    /** @} */

    /** @name Verification hooks. @{ */
    /** Attach (or with nullptr detach) the sync-point observer. */
    void setSyncObserver(ExecSyncObserver *obs) { observer_ = obs; }
    ExecSyncObserver *syncObserver() const { return observer_; }
    /** Schedulers report their round barriers through the executive so
     *  an attached observer sees every synchronization edge. */
    void
    notifyBarrier()
    {
        if (observer_)
            observer_->onBarrier();
    }
    /** @} */

  private:
    void
    notify(ExecEvent event, CpuId cpu, const Secb &secb)
    {
        if (observer_)
            observer_->onPalEvent(event, cpu, secb);
    }

    machine::Machine &machine_;
    SePcrTpm sePcrs_;
    std::uint64_t contextSwitches_ = 0;
    Duration contextSwitchTime_;
    std::uint64_t palInterrupts_ = 0;
    std::vector<Secb *> runningOnCpu_; //!< indexed by CpuId, may be null
    ExecSyncObserver *observer_ = nullptr;
};

} // namespace mintcb::rec

#endif // MINTCB_REC_INSTRUCTIONS_HH
