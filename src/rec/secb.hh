/**
 * @file
 * The Secure Execution Control Block (paper Figure 5(a)).
 *
 * "We define a Secure Execution Control Block (SECB) as a structure to
 * hold PAL state and resource allocations, both for the purposes of
 * launching a PAL and for storing the state of a PAL when it is not
 * executing" (Section 5.1.1). The untrusted OS allocates it; the
 * hardware (SecureExecutive) owns its integrity-relevant fields while
 * the PAL is live.
 */

#ifndef MINTCB_REC_SECB_HH
#define MINTCB_REC_SECB_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/simtime.hh"
#include "common/types.hh"
#include "rec/lifecycle.hh"

namespace mintcb::rec
{

/** Handle naming a secure-execution PCR inside the TPM. */
using SePcrHandle = std::uint32_t;

/** Saved architectural state of a suspended PAL (Figure 5(a)'s "CPU
 *  State": general purpose registers, flags, EIP, ESP, ...). */
struct SavedCpuState
{
    std::uint64_t instructionPointer = 0;
    std::uint64_t stackPointer = 0;
    std::array<std::uint64_t, 16> gprs{};
    std::uint64_t flags = 0;
    bool valid = false; //!< set by SYIELD, consumed by resume
};

/** The SECB. */
struct Secb
{
    /** @name Filled in by the untrusted OS at allocation time. @{ */
    std::string palName;           //!< OS-side label (not trusted)
    PhysAddr base = 0;             //!< start of the PAL image in memory
    std::vector<PageNum> pages;    //!< physical pages allocated to the PAL
    Duration preemptionTimer;      //!< CPU budget per scheduling slice
    /** @} */

    /**
     * Interrupt vectors the PAL opted in to receive (Section 6: "a PAL
     * should be able to configure an Interrupt Descriptor Table").
     * Empty (the default and the paper's recommendation) means the PAL
     * takes no interrupts at all.
     */
    std::vector<std::uint8_t> interruptVectors;

    /** @name Owned by hardware once SLAUNCH runs. @{ */
    bool measuredFlag = false;     //!< Measured Flag (Figure 6's MF)
    bool resumeFlag = false;       //!< set after first suspend
    std::optional<SePcrHandle> sePcr; //!< TPM-assigned at first launch
    SavedCpuState saved;           //!< architectural state while Suspended
    PalState state = PalState::start;
    std::optional<CpuId> runningOn; //!< CPU while in Execute
    /** @} */

    /** @name Accounting (simulation-side, not architectural). @{ */
    Duration executed;             //!< total compute retired
    std::uint64_t launches = 0;    //!< SLAUNCH count (measure + resumes)
    std::uint64_t yields = 0;      //!< SYIELD/preempt count
    std::uint64_t preemptions = 0; //!< timer-forced SYIELDs only
    /** @} */
};

} // namespace mintcb::rec

namespace mintcb::machine
{
class Machine;
}
namespace mintcb::sea
{
class Pal;
}

namespace mintcb::rec
{

/**
 * Untrusted-OS helper: place @p pal's SLB image at page-aligned @p base,
 * allocate @p data_pages additional pages for PAL data, and build the
 * SECB describing the allocation.
 */
Result<Secb> allocateSecb(machine::Machine &machine, const sea::Pal &pal,
                          PhysAddr base, std::size_t data_pages,
                          Duration preemption_timer);

} // namespace mintcb::rec

#endif // MINTCB_REC_SECB_HH
