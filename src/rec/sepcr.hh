/**
 * @file
 * Secure-execution PCRs (paper Section 5.4).
 *
 * Today's TPM has one PCR 17; concurrent PALs need one measurement chain
 * each. sePCRs are extra resettable PCRs with a three-state life cycle:
 *
 *     Free --(SLAUNCH allocates)--> Exclusive --(SFREE)--> Quote
 *      ^                                                     |
 *      +------------------(TPM_SEPCR_Free / quote)-----------+
 *
 * While Exclusive, only the bound PAL (identified by the CPU-held handle)
 * may Extend/Seal/Unseal against it; TPM_Quote over a sePCR is reserved
 * for the Quote state so *untrusted* code can collect the attestation
 * after exit (Section 5.4.3). Sealing binds to the sePCR *value*, not
 * the handle index, so a PAL re-launched into a different sePCR can still
 * unseal its state (Challenge 4, Section 5.4.4).
 */

#ifndef MINTCB_REC_SEPCR_HH
#define MINTCB_REC_SEPCR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.hh"
#include "rec/secb.hh"
#include "tpm/tpm.hh"

namespace mintcb::rec
{

/** The Figure-like states of one sePCR. */
enum class SePcrState
{
    free,      //!< available for allocation by SLAUNCH
    exclusive, //!< bound to a live PAL
    quote,     //!< PAL exited; untrusted code may quote, then free
};

/** Printable state name. */
const char *sePcrStateName(SePcrState s);

/**
 * The sePCR bank grafted onto a v1.2 TPM. All mutating entry points take
 * the invoking locality and/or the caller's bound handle; enforcement is
 * real (wrong caller => permissionDenied, no state change).
 */
class SePcrTpm
{
  public:
    /**
     * Extend @p base with @p count sePCRs. "The number of sePCRs present
     * in a TPM establishes the limit for the number of concurrently
     * executing PALs" (Section 5.4).
     */
    SePcrTpm(tpm::Tpm &base, std::size_t count);

    tpm::Tpm &base() { return base_; }
    std::size_t count() const { return sePcrs_.size(); }
    std::size_t freeCount() const;
    SePcrState state(SePcrHandle h) const;
    Result<Bytes> value(SePcrHandle h) const;

    /**
     * SLAUNCH's measurement leg: allocate a free sePCR, reset it to
     * zero, and extend it with SHA-1(@p pal_image). Hardware locality
     * only. Fails with resourceExhausted when no sePCR is Free
     * (SLAUNCH must then return failure, Section 5.4.1).
     */
    Result<SePcrHandle> allocateAndMeasure(const Bytes &pal_image,
                                           tpm::Locality locality);

    /** @name PAL-exclusive operations (Section 5.4.2).
     * @p caller is the handle held in the invoking CPU/SECB; it must
     * equal @p h and the sePCR must be Exclusive.
     * @{ */
    Status extend(SePcrHandle h, const Bytes &digest, SePcrHandle caller);
    Result<tpm::SealedBlob> seal(SePcrHandle h, const Bytes &payload,
                                 SePcrHandle caller);
    Result<Bytes> unseal(SePcrHandle h, const tpm::SealedBlob &blob,
                         SePcrHandle caller);
    /** @} */

    /** SFREE's TPM leg: Exclusive -> Quote (hardware locality). */
    Status transitionToQuote(SePcrHandle h, tpm::Locality locality);

    /**
     * TPM_Quote extended to accept a sePCR handle, invocable from
     * untrusted code once the sePCR is in the Quote state.
     */
    Result<tpm::TpmQuote> quote(SePcrHandle h, const Bytes &nonce);

    /** TPM_SEPCR_Free: Quote -> Free (untrusted code, after quoting). */
    Status release(SePcrHandle h);

    /**
     * SKILL's TPM leg: extend the well-known kill marker, then free the
     * sePCR (Section 5.5, hardware locality).
     */
    Status kill(SePcrHandle h, tpm::Locality locality);

    /** The well-known constant SKILL extends (detectable by verifiers). */
    static Bytes killMarker();

  private:
    struct SePcr
    {
        SePcrState state = SePcrState::free;
        Bytes value;
    };

    Status requireExclusiveCaller(SePcrHandle h, SePcrHandle caller,
                                  const char *op) const;

    tpm::Tpm &base_;
    std::vector<SePcr> sePcrs_;
};

} // namespace mintcb::rec

#endif // MINTCB_REC_SEPCR_HH
