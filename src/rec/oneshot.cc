/**
 * @file
 * One-shot runner implementation.
 */

#include "rec/oneshot.hh"

#include "crypto/sha1.hh"
#include "sea/pal.hh"

namespace mintcb::rec
{

Result<OneShotReport>
runOneShot(SecureExecutive &exec, const std::string &name,
           const OneShotBody &body, const OneShotOptions &options)
{
    machine::Machine &m = exec.machine();
    const sea::Pal identity = sea::Pal::fromLogic(
        name, options.codeBytes,
        [](sea::PalContext &) { return okStatus(); });

    auto secb = allocateSecb(m, identity, options.base,
                             options.dataPages, Duration::zero());
    if (!secb)
        return secb.error();

    machine::Cpu &core = m.cpu(options.cpu);
    const TimePoint start = core.now();

    auto launch = exec.slaunch(options.cpu, *secb);
    if (!launch)
        return launch.error();

    OneShotReport report;
    report.measurement = launch->measurement;
    report.palMeasurement = identity.measurement();

    PalHooks hooks(exec, *secb, options.cpu);
    auto output = body(hooks);

    // The PAL erases its memory before exiting regardless of outcome.
    for (PageNum p : secb->pages)
        m.memory().zeroPage(p);

    if (!output) {
        // Abnormal completion: yield then let the OS SKILL it.
        exec.syield(*secb);
        exec.skill(*secb);
        return output.error();
    }
    report.output = output.take();

    if (auto s = exec.sfree(*secb, /*from_pal=*/true); !s.ok())
        return s.error();

    if (secb->sePcr) {
        if (options.quote) {
            m.tpmAs(options.cpu);
            auto quote =
                exec.sePcrs().quote(*secb->sePcr, m.rng().bytes(20));
            if (quote) {
                report.quote = quote.take();
                report.quoted = true;
            }
        }
        exec.sePcrs().release(*secb->sePcr);
    }

    report.total = core.now() - start;
    return report;
}

} // namespace mintcb::rec
