/**
 * @file
 * Shared PAL-body execution.
 */

#include "backend/bodyrun.hh"

#include "sea/pal.hh"

namespace mintcb::backend
{

BodyRun
runPalBody(machine::Machine &machine, const sea::PalRequest &request,
           CpuId cpu)
{
    BodyRun out;
    sea::PalContext ctx(machine, cpu, request.input);
    ctx.setStateStore(request.stateStore);
    machine::Cpu &core = machine.cpu(cpu);
    const TimePoint body_start = core.now();
    out.status = request.pal.body()(ctx);
    const Duration body_total = core.now() - body_start;
    out.seal = ctx.sealTime();
    out.unseal = ctx.unsealTime();
    out.compute = body_total - out.seal - out.unseal;
    out.output = ctx.output();
    return out;
}

} // namespace mintcb::backend
