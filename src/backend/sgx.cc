/**
 * @file
 * The sgx backend: an SGX-style process-enclave cost model.
 *
 * Process enclaves (the SoK's first family) invert the paper's cost
 * structure: launch is paid per *page* (EADD+EEXTEND measurement) plus
 * a fixed EINIT, boundary crossings are sub-10us ECALLs/OCALLs instead
 * of TPM seal/unseal, and the scarce resource is the EPC -- a working
 * set beyond it pays per-page paging faults. Attestation is EREPORT
 * plus a quoting-enclave signature, milliseconds not TPM-seconds.
 *
 * Parameter provenance (DESIGN.md section 12 collects the citations):
 * warm ECALL/OCALL ~8-14k cycles and EPC fault ~9us from the SGX
 * performance literature (e.g. Weisse et al., HotCalls, ISCA'17);
 * EINIT + quoting in the hundreds of microseconds.
 */

#include "backend/backends.hh"

#include <algorithm>

#include "backend/bodyrun.hh"
#include "crypto/sha1.hh"

namespace mintcb::backend
{

namespace
{

/** Calibrated cost parameters of the modeled enclave. */
struct SgxParams
{
    static constexpr Duration ecreate = Duration::micros(5);
    /** EADD + EEXTEND measurement per 4 KB page. */
    static constexpr Duration pageAddExtend = Duration::micros(11);
    static constexpr Duration einit = Duration::micros(650);
    /** Warm-path synchronous enclave crossing (~8.6k cycles). */
    static constexpr Duration ecall = Duration::micros(3.8);
    static constexpr Duration ocall = Duration::micros(3.8);
    /** EPC working-set budget granted to one enclave. */
    static constexpr std::size_t epcBudgetPages = 32;
    /** One EWB evict + ELDU reload round trip. */
    static constexpr Duration epcFault = Duration::micros(9);
    /** Faults charged per page beyond the EPC budget (the excess set
     *  thrashes against the budget as the body touches it). */
    static constexpr std::uint64_t faultsPerExcessPage = 4;
    /** EREPORT + quoting-enclave signature. */
    static constexpr Duration quoteReport = Duration::micros(650);
    /** EREMOVE per page. */
    static constexpr Duration pageRemove = Duration::micros(1.6);
    /** Where the modeled enclave's data pages live in simulated RAM. */
    static constexpr PhysAddr enclaveDataBase = 0x400000;
    /** Data-page probes per run (controlled-channel window). */
    static constexpr std::size_t maxProbes = 32;
};

class SgxBackend final : public Backend
{
  public:
    const BackendInfo &
    info() const override
    {
        static const BackendInfo inf{
            "sgx",
            "process enclave",
            "SGX-style enclave: per-page measured launch, ECALL/OCALL "
            "crossings, EPC paging pressure, EREPORT attestation",
            {sea::Capability::oneShot, sea::Capability::sealedState,
             sea::Capability::epcPaging, sea::Capability::attestation},
        };
        return inf;
    }

    Result<sea::ExecutionReport>
    run(machine::Machine &machine, const sea::PalRequest &request,
        CpuId cpu) const override
    {
        machine::Cpu &core = machine.cpu(cpu);
        sea::ExecutionReport report;
        report.palName = request.pal.name();
        report.backend = "sgx";
        report.cpu = cpu;
        const TimePoint t0 = core.now();
        report.submittedAt = t0;
        report.startedAt = t0;

        // Launch: ECREATE, then every code+data page is added and
        // measured, then EINIT verifies the launch token. Unlike
        // SKINIT, nothing else on the machine stops.
        const std::size_t code_pages =
            pagesFor(request.pal.slbBytes());
        const std::size_t total_pages = code_pages + request.dataPages;
        core.advance(SgxParams::ecreate);
        core.advance(SgxParams::pageAddExtend *
                     static_cast<double>(total_pages));
        core.advance(SgxParams::einit);
        report.phases.launch = core.now() - t0;
        report.launches = 1;
        report.palMeasurement = request.pal.measurement();

        // The enclave walks its data pages at input-dependent page and
        // cache-line offsets through the memory controller -- the
        // access pattern a page-fault-inducing (controlled-channel /
        // pigeonhole) adversary observes, refinable to 64 B lines by a
        // shared-cache adversary. The probes cost no time (they model
        // ordinary enclave loads); only their *addresses* leak.
        const std::size_t probes =
            std::min(request.input.size(), SgxParams::maxProbes);
        const std::size_t data_pages =
            request.dataPages > 0 ? request.dataPages : 1;
        for (std::size_t i = 0; i < probes; ++i) {
            const std::uint8_t b = request.input[i];
            const PhysAddr addr =
                SgxParams::enclaveDataBase +
                static_cast<PhysAddr>(b % data_pages) * pageSize +
                static_cast<PhysAddr>(b % 64) * 64;
            (void)machine.readAs(cpu, addr, 16);
        }

        // Body, entered through one ECALL; output marshalling and
        // system services leave through OCALLs (one per KB of I/O).
        const TimePoint body_t0 = core.now();
        BodyRun body = runPalBody(machine, request, cpu);
        const std::uint64_t ocalls =
            1 + (request.input.size() + body.output.size()) / 1024;
        core.advance(SgxParams::ecall);
        core.advance(SgxParams::ocall * static_cast<double>(ocalls));

        // EPC pressure: the pages beyond the budget thrash.
        const std::uint64_t excess =
            total_pages > SgxParams::epcBudgetPages
                ? total_pages - SgxParams::epcBudgetPages
                : 0;
        const std::uint64_t faults =
            excess * SgxParams::faultsPerExcessPage;
        core.advance(SgxParams::epcFault * static_cast<double>(faults));

        report.phases.compute = body.compute;
        report.phases.transition =
            (core.now() - body_t0) - body.compute;
        report.output = body.output;
        report.status = body.status;

        // Attestation: EREPORT + quoting enclave. The evidence is a
        // deterministic stand-in for the quote structure, bound to the
        // enclave measurement and the I/O it processed.
        Bytes evidence;
        if (request.wantQuote) {
            const TimePoint q0 = core.now();
            core.advance(SgxParams::quoteReport);
            report.phases.attestation = core.now() - q0;
            Bytes tbs = report.palMeasurement;
            const Bytes in_digest =
                crypto::Sha1::digestBytes(request.input);
            const Bytes out_digest =
                crypto::Sha1::digestBytes(body.output);
            tbs.insert(tbs.end(), in_digest.begin(), in_digest.end());
            tbs.insert(tbs.end(), out_digest.begin(), out_digest.end());
            tbs.push_back('S');
            evidence = crypto::Sha1::digestBytes(tbs);
        }

        // Teardown: EREMOVE every page.
        const TimePoint d0 = core.now();
        core.advance(SgxParams::pageRemove *
                     static_cast<double>(total_pages));
        report.phases.teardown = core.now() - d0;

        report.finishedAt = core.now();
        report.total = report.finishedAt - report.startedAt;

        sea::ReportSection &epc =
            report.section(sea::Capability::epcPaging);
        epc.addCost("epc_fault_time",
                    SgxParams::epcFault * static_cast<double>(faults));
        epc.addCount("epc_faults", faults);
        epc.addCount("enclave_pages", total_pages);
        epc.addCount("data_probes", probes);
        sea::ReportSection &os =
            report.section(sea::Capability::oneShot);
        os.addCount("ecalls", 1);
        os.addCount("ocalls", ocalls);
        if (request.wantQuote) {
            sea::ReportSection &att =
                report.section(sea::Capability::attestation);
            att.addCost("ereport_quote", report.phases.attestation);
            att.addEvidence("sgx_quote", std::move(evidence));
        }

        report.deadlineMet = request.deadline == TimePoint() ||
                             report.finishedAt <= request.deadline;
        return report;
    }
};

} // namespace

std::unique_ptr<Backend>
makeSgx()
{
    return std::make_unique<SgxBackend>();
}

} // namespace mintcb::backend
