/**
 * @file
 * The pluggable TEE execution backend interface.
 *
 * The paper measures one hardware point (SKINIT-era late launch) and
 * proposes a second (SLAUNCH); ROADMAP item 3 generalizes the cost
 * analysis across the modern TEE families the SoK on hardware-supported
 * TEEs taxonomizes. A Backend is one such point in the design space: it
 * declares the capabilities it implements (BackendInfo) and runs a
 * PalRequest against a simulated machine, answering with an
 * ExecutionReport whose canonical phases make the families comparable
 * and whose capability sections carry the family specifics.
 *
 * Backends are stateless with respect to machines: run() takes the
 * machine to execute on, so the sharded execution service can dispatch
 * the same registered backend concurrently against distinct shard
 * machines without synchronization. All state that must persist (sealed
 * blobs, sePCR banks, TPM contents) lives in the machine.
 */

#ifndef MINTCB_BACKEND_BACKEND_HH
#define MINTCB_BACKEND_BACKEND_HH

#include <string>

#include "common/result.hh"
#include "machine/machine.hh"
#include "sea/capability.hh"
#include "sea/request.hh"

namespace mintcb::backend
{

/** What a backend is and what it can do. */
struct BackendInfo
{
    std::string name;        //!< registry key ("sgx", "vm-tee", ...)
    std::string family;      //!< SoK family label
    std::string description; //!< one-line cost-model summary
    sea::CapabilitySet capabilities;
};

/** One TEE execution model behind the unified request/report API. */
class Backend
{
  public:
    virtual ~Backend() = default;

    virtual const BackendInfo &info() const = 0;

    /**
     * Execute @p request on @p machine, entering the protected
     * environment from core @p cpu. Infrastructure failures come back
     * as errors; the PAL's application outcome travels in
     * ExecutionReport::status. Implementations must be deterministic:
     * any randomness comes from machine.rng(), never from host state.
     */
    virtual Result<sea::ExecutionReport>
    run(machine::Machine &machine, const sea::PalRequest &request,
        CpuId cpu) const = 0;
};

} // namespace mintcb::backend

#endif // MINTCB_BACKEND_BACKEND_HH
