/**
 * @file
 * The vm-tee backend: a SEV-SNP/TDX-style VM-level TEE cost model.
 *
 * VM TEEs (the SoK's second family) protect a whole guest: launch pays
 * a per-page measured LAUNCH_UPDATE plus an expensive firmware
 * LAUNCH_FINISH, runtime pays VM exits (sampled from the machine's
 * calibrated world-switch timing, paper Table 2, plus a fixed
 * confidential-computing tax per exit) and a small memory-encryption
 * drag on all compute, and attestation is a guest request to the
 * platform security processor -- milliseconds of firmware latency.
 *
 * The guest's data pages are accessed *through the memory controller*
 * at input-dependent offsets, so a MemAccessObserver sees the page
 * access pattern exactly as a SEV-Step-style single-stepping hypervisor
 * would (the adversary scenario in tests/backend/sevstep_test.cc).
 */

#include "backend/backends.hh"

#include <algorithm>

#include "backend/bodyrun.hh"
#include "crypto/sha1.hh"

namespace mintcb::backend
{

namespace
{

/** Calibrated cost parameters of the modeled confidential VM. */
struct VmTeeParams
{
    /** SNP LAUNCH_UPDATE / TDX PAGE.ADD measurement per 4 KB page. */
    static constexpr Duration launchMeasurePerPage =
        Duration::micros(12);
    /** LAUNCH_FINISH / TD finalization in firmware. */
    static constexpr Duration launchFinish = Duration::millis(1.2);
    /** Extra confidential-computing work per exit on top of the bare
     *  world switch (VMSA protect/restore, GHCB marshalling). */
    static constexpr Duration exitTax = Duration::micros(0.8);
    /** Inline memory-encryption drag applied to guest compute. */
    static constexpr double encryptionOverhead = 0.03;
    /** Guest compute per timer-driven exit. */
    static constexpr Duration exitQuantum = Duration::micros(250);
    /** Guest attestation report via the PSP / TDX module. */
    static constexpr Duration attestationReport = Duration::millis(7.5);
    /** VM destroy + per-page scrub. */
    static constexpr Duration teardownBase = Duration::micros(300);
    static constexpr Duration pageScrub = Duration::micros(0.5);
    /** Where the modeled guest's data pages live in simulated RAM. */
    static constexpr PhysAddr guestDataBase = 0x200000;
    /** Data-page probes per run (SEV-Step observability window). */
    static constexpr std::size_t maxProbes = 32;
    /** Guest progress per data-page probe (TLB walk + decrypt-on-load).
     *  Smaller than the single-step adversary's 5 us APIC cadence, so
     *  a stepping hypervisor attributes probes to distinct interrupt
     *  windows -- the timing dimension of the SEV-Step channel. */
    static constexpr Duration probeStep = Duration::micros(4);
};

class VmTeeBackend final : public Backend
{
  public:
    const BackendInfo &
    info() const override
    {
        static const BackendInfo inf{
            "vm-tee",
            "VM-level TEE",
            "SEV-SNP/TDX-style confidential VM: measured launch, VM "
            "exits + encryption drag, firmware attestation reports",
            {sea::Capability::oneShot, sea::Capability::sealedState,
             sea::Capability::vmIsolation,
             sea::Capability::attestation},
        };
        return inf;
    }

    Result<sea::ExecutionReport>
    run(machine::Machine &machine, const sea::PalRequest &request,
        CpuId cpu) const override
    {
        machine::Cpu &core = machine.cpu(cpu);
        sea::ExecutionReport report;
        report.palName = request.pal.name();
        report.backend = "vm-tee";
        report.cpu = cpu;
        const TimePoint t0 = core.now();
        report.submittedAt = t0;
        report.startedAt = t0;

        // Launch: measure every guest page into the launch digest,
        // then the firmware finalizes the measurement.
        const std::size_t code_pages =
            pagesFor(request.pal.slbBytes());
        const std::size_t total_pages = code_pages + request.dataPages;
        core.advance(VmTeeParams::launchMeasurePerPage *
                     static_cast<double>(total_pages));
        core.advance(VmTeeParams::launchFinish);
        report.phases.launch = core.now() - t0;
        report.launches = 1;
        report.palMeasurement = request.pal.measurement();

        // The guest touches its data pages at input-dependent offsets
        // through the memory controller -- the access pattern a
        // single-stepping hypervisor observes (SEV-Step).
        const std::size_t probes =
            std::min(request.input.size(), VmTeeParams::maxProbes);
        const std::size_t data_pages =
            request.dataPages > 0 ? request.dataPages : 1;
        const TimePoint p0 = core.now();
        for (std::size_t i = 0; i < probes; ++i) {
            const std::uint8_t b = request.input[i];
            const PhysAddr addr =
                VmTeeParams::guestDataBase +
                static_cast<PhysAddr>(b % data_pages) * pageSize +
                static_cast<PhysAddr>(b % 64) * 64;
            (void)machine.readAs(cpu, addr, 16);
            core.advance(VmTeeParams::probeStep);
        }
        const Duration probe_time = core.now() - p0;

        // Body, with the inline-encryption drag on its compute.
        BodyRun body = runPalBody(machine, request, cpu);
        core.advance(body.compute * VmTeeParams::encryptionOverhead);
        report.phases.compute =
            body.compute +
            body.compute * VmTeeParams::encryptionOverhead;

        // VM exits: timer-driven (one per compute quantum) plus I/O
        // marshalling exits; each pays the calibrated Table 2 world
        // switch (sampled from the machine's RNG, so same-seed runs
        // stay byte-identical) plus the confidential-computing tax.
        const std::uint64_t exits =
            2 +
            static_cast<std::uint64_t>(body.compute.ticks() /
                                       VmTeeParams::exitQuantum.ticks()) +
            (request.input.size() + body.output.size()) / 512;
        const machine::VmSwitchTiming &timing = machine.spec().vmTiming;
        Duration exit_time;
        for (std::uint64_t i = 0; i < exits; ++i) {
            exit_time = exit_time + timing.sampleExit(machine.rng()) +
                        timing.sampleEnter(machine.rng()) +
                        VmTeeParams::exitTax;
        }
        core.advance(exit_time);
        report.phases.transition =
            exit_time + body.seal + body.unseal + probe_time;
        report.output = body.output;
        report.status = body.status;

        // Attestation: the guest asks the firmware for a report over
        // the launch digest and its I/O binding.
        Bytes evidence;
        if (request.wantQuote) {
            const TimePoint q0 = core.now();
            core.advance(VmTeeParams::attestationReport);
            report.phases.attestation = core.now() - q0;
            Bytes tbs = report.palMeasurement;
            const Bytes in_digest =
                crypto::Sha1::digestBytes(request.input);
            const Bytes out_digest =
                crypto::Sha1::digestBytes(body.output);
            tbs.insert(tbs.end(), in_digest.begin(), in_digest.end());
            tbs.insert(tbs.end(), out_digest.begin(), out_digest.end());
            tbs.push_back('V');
            evidence = crypto::Sha1::digestBytes(tbs);
        }

        // Teardown: destroy the VM context and scrub guest pages.
        const TimePoint d0 = core.now();
        core.advance(VmTeeParams::teardownBase +
                     VmTeeParams::pageScrub *
                         static_cast<double>(total_pages));
        report.phases.teardown = core.now() - d0;

        report.finishedAt = core.now();
        report.total = report.finishedAt - report.startedAt;

        sea::ReportSection &vm =
            report.section(sea::Capability::vmIsolation);
        vm.addCost("vm_exit_time", exit_time);
        vm.addCost("encryption_drag",
                   body.compute * VmTeeParams::encryptionOverhead);
        vm.addCount("vm_exits", exits);
        vm.addCount("guest_pages", total_pages);
        vm.addCount("data_page_probes", probes);
        vm.addCost("data_probe_time", probe_time);
        if (request.wantQuote) {
            sea::ReportSection &att =
                report.section(sea::Capability::attestation);
            att.addCost("firmware_report", report.phases.attestation);
            att.addEvidence("snp_report", std::move(evidence));
        }

        report.deadlineMet = request.deadline == TimePoint() ||
                             report.finishedAt <= request.deadline;
        return report;
    }
};

} // namespace

std::unique_ptr<Backend>
makeVmTee()
{
    return std::make_unique<VmTeeBackend>();
}

} // namespace mintcb::backend
