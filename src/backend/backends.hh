/**
 * @file
 * The five standard TEE backends (one factory per family).
 *
 * | name        | SoK family        | modeled after                    |
 * |-------------|-------------------|----------------------------------|
 * | sea-oneshot | late launch       | SKINIT/SENTER sessions (Sec. 4)  |
 * | rec-service | scheduler TEE     | SLAUNCH recommended hw (Sec. 5)  |
 * | sgx         | process enclave   | Intel SGX ECALL/OCALL + EPC      |
 * | vm-tee      | VM-level TEE      | AMD SEV-SNP / Intel TDX          |
 * | trustzone   | world switch      | ARM TrustZone SMC (Amacher &     |
 * |             |                   | Schiavoni, Middleware'19)        |
 *
 * Cost parameters live as documented constants in each factory's .cc
 * file; DESIGN.md section 12 collects them with citations.
 */

#ifndef MINTCB_BACKEND_BACKENDS_HH
#define MINTCB_BACKEND_BACKENDS_HH

#include <memory>

#include "backend/backend.hh"

namespace mintcb::backend
{

/** Section 4's measured reality: suspend OS, SKINIT, run, resume, with
 *  every sibling core halted. Wraps sea::SeaDriver. */
std::unique_ptr<Backend> makeSeaOneshot();

/** Section 5/6's proposal: a single-PAL SLAUNCH campaign under the
 *  recommended-hardware executive (standalone counterpart of the
 *  native path inside ExecutionService). */
std::unique_ptr<Backend> makeRecService();

/** SGX-style process enclave: ECREATE/EADD/EINIT launch, ECALL/OCALL
 *  transitions, EPC paging pressure, EREPORT-based attestation. */
std::unique_ptr<Backend> makeSgx();

/** SEV-SNP/TDX-style VM TEE: launch-digest measurement, VM exits,
 *  memory-encryption overhead, firmware attestation reports. */
std::unique_ptr<Backend> makeVmTee();

/** TrustZone-style world switch: TA session open/close and SMC
 *  round-trips; no remote attestation (fails closed on wantQuote). */
std::unique_ptr<Backend> makeTrustZone();

} // namespace mintcb::backend

#endif // MINTCB_BACKEND_BACKENDS_HH
