/**
 * @file
 * The rec-service backend: a standalone single-request SLAUNCH campaign.
 *
 * Inside ExecutionService this execution model is the *native* path --
 * submitted requests with backend "" or "rec-service" join the shared
 * scheduler campaign and its persistent executive. This standalone
 * adapter exists for direct registry users (the backend-matrix bench,
 * one-off comparisons): it brings up a fresh executive on the given
 * machine and runs one program to completion under the preemption
 * timer, so all five zoo members answer run() uniformly.
 */

#include "backend/backends.hh"

#include <algorithm>

#include "backend/registry.hh"
#include "crypto/sha1.hh"
#include "rec/scheduler.hh"

namespace mintcb::backend
{

namespace
{

class RecServiceBackend final : public Backend
{
  public:
    const BackendInfo &
    info() const override
    {
        static const BackendInfo inf{
            defaultBackendName,
            "scheduler TEE",
            "SLAUNCH preemptible slices under the recommended-hardware "
            "executive; sePCR identity + quote (paper Sections 5-6)",
            {sea::Capability::preemptible, sea::Capability::sealedState,
             sea::Capability::sePcr, sea::Capability::attestation,
             sea::Capability::ioBinding},
        };
        return inf;
    }

    Result<sea::ExecutionReport>
    run(machine::Machine &machine, const sea::PalRequest &request,
        CpuId cpu) const override
    {
        rec::SecureExecutive exec(machine, /*sepcr_count=*/8);
        // One CPU stays legacy (the "OS core"); the campaign schedules
        // the PAL over the rest, matching the service defaults.
        rec::OsScheduler sched(exec, Duration::millis(1),
                               /*legacy_cpus=*/1);

        sea::ExecutionReport report;
        report.palName = request.pal.name();
        report.backend = defaultBackendName;
        const TimePoint t0 = machine.now();
        report.submittedAt = t0;

        const Duration compute =
            request.slicedCompute > Duration::zero()
                ? request.slicedCompute
                : Duration::millis(1);

        struct Slot
        {
            TimePoint startedAt;
            bool started = false;
            Bytes output;
        } slot;

        rec::PalProgram prog;
        prog.name = request.pal.name();
        prog.codeBytes = request.pal.code().size();
        prog.dataPages = request.dataPages;
        prog.totalCompute = compute;
        prog.priority = request.priority;
        prog.deadline = request.deadline;
        prog.wantQuote = request.wantQuote;
        prog.stateStore = request.stateStore;
        const Bytes input = request.input;
        prog.onStart = [&machine, &slot,
                        &input](rec::PalHooks &hooks) -> Status {
            slot.started = true;
            slot.startedAt = machine.cpu(hooks.cpu()).now();
            return hooks.extend(crypto::Sha1::digestBytes(input));
        };
        const sea::SecureBody body = request.secureBody;
        prog.onFinish = [&slot, &input,
                         body](rec::PalHooks &hooks) -> Status {
            if (body) {
                auto out_bytes = body(hooks, input);
                if (!out_bytes)
                    return out_bytes.error();
                slot.output = out_bytes.take();
            }
            return hooks.extend(crypto::Sha1::digestBytes(slot.output));
        };

        if (auto idx = sched.add(prog); !idx)
            return idx.error();

        bool have_completion = false;
        rec::PalCompletion done;
        sched.setCompletionHook(
            [&done, &have_completion](const rec::PalCompletion &c) {
                done = c;
                have_completion = true;
            });

        auto stats = sched.runAll();
        if (!stats)
            return stats.error();
        if (!have_completion)
            return Error(Errc::failedPrecondition,
                         "campaign finished without a completion");

        report.status = done.result;
        report.output = slot.output;
        report.palMeasurement = done.measurement;
        report.quote = done.quote;
        report.quoted = done.quoted;
        report.startedAt =
            slot.started ? slot.startedAt : TimePoint(done.finishedAt);
        report.finishedAt = TimePoint(done.finishedAt);
        report.queueWait = report.startedAt - report.submittedAt;
        report.total = report.finishedAt - report.startedAt;
        report.launches = done.launches;
        report.yields = done.yields;
        report.cpu = done.cpu;
        report.deadlineMet = done.deadlineMet;

        // Canonical phases. The campaign interleaves them, so the
        // breakdown is reconstructed: transitions are the measured
        // context-switch time, attestation is the post-SFREE tail
        // (sePCR quote), and launch is the remaining non-compute time
        // (first SLAUNCH measurement stream + state init).
        report.phases.compute = compute;
        report.phases.transition = stats->contextSwitchTime;
        const Duration tail = machine.now() - report.finishedAt;
        report.phases.attestation =
            done.quoted ? tail : Duration::zero();
        const Duration residual = report.total - compute -
                                  stats->contextSwitchTime;
        report.phases.launch = std::max(Duration::zero(), residual);

        sea::ReportSection &pre =
            report.section(sea::Capability::preemptible);
        pre.addCount("slaunches", done.launches);
        pre.addCount("yields", done.yields);
        pre.addCount("preemptions", done.preemptions);
        report.section(sea::Capability::sePcr)
            .addCount("sepcr_slots", 8);
        if (done.quoted) {
            report.section(sea::Capability::attestation)
                .addCost("sepcr_quote", report.phases.attestation);
        }
        (void)cpu;
        return report;
    }
};

} // namespace

std::unique_ptr<Backend>
makeRecService()
{
    return std::make_unique<RecServiceBackend>();
}

} // namespace mintcb::backend
