/**
 * @file
 * The sea-oneshot backend: Section 4's measured reality as a zoo member.
 *
 * A thin adapter over sea::SeaDriver -- the whole cost model (OS
 * suspend, SKINIT at LPC speed, TPM seal/unseal, OS resume, halted
 * siblings) lives in the driver and the machine's calibrated timing
 * profiles; the backend contributes only the capability descriptor.
 */

#include "backend/backends.hh"

#include "sea/session.hh"

namespace mintcb::backend
{

namespace
{

class SeaOneshotBackend final : public Backend
{
  public:
    const BackendInfo &
    info() const override
    {
        static const BackendInfo inf{
            "sea-oneshot",
            "late launch",
            "SKINIT/SENTER one-shot sessions; whole platform stalls, "
            "PCR 17 evidence, TPM-speed seal/unseal (paper Section 4)",
            {sea::Capability::oneShot, sea::Capability::sealedState,
             sea::Capability::pcr17Evidence,
             sea::Capability::siblingStall, sea::Capability::ioBinding},
        };
        return inf;
    }

    Result<sea::ExecutionReport>
    run(machine::Machine &machine, const sea::PalRequest &request,
        CpuId cpu) const override
    {
        sea::SeaDriver driver(machine);
        return driver.run(request, cpu);
    }
};

} // namespace

std::unique_ptr<Backend>
makeSeaOneshot()
{
    return std::make_unique<SeaOneshotBackend>();
}

} // namespace mintcb::backend
