/**
 * @file
 * The backend registry: named TEE execution models, one lookup point.
 *
 * The execution service, the network gateway, and the benches all
 * resolve PalRequest::backend through a BackendRegistry. Registration
 * is fail-closed (duplicates refused) and admission is fail-closed
 * (unknown names and capability mismatches are rejected at submit time,
 * before any protected work starts).
 */

#ifndef MINTCB_BACKEND_REGISTRY_HH
#define MINTCB_BACKEND_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "backend/backend.hh"
#include "common/result.hh"
#include "sea/request.hh"

namespace mintcb::backend
{

/** The backend name an empty PalRequest::backend resolves to: the
 *  native recommended-hardware scheduler inside the execution service. */
inline constexpr const char *defaultBackendName = "rec-service";

/** Name -> Backend. Ordered by registration (names() is stable). */
class BackendRegistry
{
  public:
    BackendRegistry() = default;

    BackendRegistry(const BackendRegistry &) = delete;
    BackendRegistry &operator=(const BackendRegistry &) = delete;
    BackendRegistry(BackendRegistry &&) = default;
    BackendRegistry &operator=(BackendRegistry &&) = default;

    /** Register @p backend under its info().name. A second registration
     *  of the same name is refused (Errc::failedPrecondition): silently
     *  replacing an execution model would change what a quote means. */
    Status add(std::unique_ptr<Backend> backend);

    /** The backend registered as @p name (empty resolves to
     *  defaultBackendName), or nullptr. */
    const Backend *find(const std::string &name) const;

    bool has(const std::string &name) const
    {
        return find(name) != nullptr;
    }

    /** Registration-ordered backend names. */
    std::vector<std::string> names() const;

    std::size_t size() const { return backends_.size(); }

    /**
     * Fail-closed admission check for @p request: the named backend
     * must exist (Errc::notFound lists what is registered) and must
     * implement every capability the request demands -- today that is
     * Capability::attestation when wantQuote is set
     * (Errc::failedPrecondition). Called by ExecutionService::submit
     * and the gateway before any protected work starts.
     */
    Status admissible(const sea::PalRequest &request) const;

    /**
     * The process-wide registry holding the five standard backends
     * (sea-oneshot, rec-service, sgx, vm-tee, trustzone). Built once,
     * never mutated afterwards; services that want a custom zoo build
     * their own registry and point ServiceConfig::backends at it.
     */
    static const BackendRegistry &standard();

    /** A fresh registry populated with the five standard backends. */
    static BackendRegistry makeStandard();

  private:
    std::vector<std::unique_ptr<Backend>> backends_;
};

} // namespace mintcb::backend

#endif // MINTCB_BACKEND_REGISTRY_HH
