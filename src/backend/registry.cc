/**
 * @file
 * BackendRegistry implementation.
 */

#include "backend/registry.hh"

#include "backend/backends.hh"

namespace mintcb::backend
{

Status
BackendRegistry::add(std::unique_ptr<Backend> backend)
{
    const std::string &name = backend->info().name;
    if (name.empty())
        return Error(Errc::invalidArgument, "backend must be named");
    if (has(name)) {
        return Error(Errc::failedPrecondition,
                     "backend '" + name + "' is already registered");
    }
    backends_.push_back(std::move(backend));
    return okStatus();
}

const Backend *
BackendRegistry::find(const std::string &name) const
{
    const std::string &key = name.empty() ? defaultBackendName : name;
    for (const auto &b : backends_)
        if (b->info().name == key)
            return b.get();
    return nullptr;
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(backends_.size());
    for (const auto &b : backends_)
        out.push_back(b->info().name);
    return out;
}

Status
BackendRegistry::admissible(const sea::PalRequest &request) const
{
    const Backend *b = find(request.backend);
    if (b == nullptr) {
        std::string known;
        for (const std::string &name : names()) {
            if (!known.empty())
                known += ", ";
            known += name;
        }
        return Error(Errc::notFound,
                     "unknown backend '" + request.backend +
                         "' (registered: " + known + ")");
    }
    if (request.wantQuote &&
        !b->info().capabilities.has(sea::Capability::attestation)) {
        return Error(Errc::failedPrecondition,
                     "backend '" + b->info().name +
                         "' cannot honor wantQuote: no attestation "
                         "capability (has: " +
                         b->info().capabilities.str() + ")");
    }
    return okStatus();
}

BackendRegistry
BackendRegistry::makeStandard()
{
    BackendRegistry r;
    // Registration order is the canonical presentation order of the
    // zoo (benches, --help listings): the paper's two points first,
    // then the modern families.
    (void)r.add(makeSeaOneshot());
    (void)r.add(makeRecService());
    (void)r.add(makeSgx());
    (void)r.add(makeVmTee());
    (void)r.add(makeTrustZone());
    return r;
}

const BackendRegistry &
BackendRegistry::standard()
{
    static const BackendRegistry instance = makeStandard();
    return instance;
}

} // namespace mintcb::backend
