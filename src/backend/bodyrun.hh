/**
 * @file
 * Shared PAL-body execution for the simulated modern-TEE backends.
 *
 * The sgx / vm-tee / trustzone cost models differ in *how* the
 * protected environment is entered, crossed, and left -- but the
 * application work inside it is the same PalBody the SEA backends run,
 * so identical workloads produce identical outputs across the whole
 * zoo (the property the backend-matrix bench asserts).
 */

#ifndef MINTCB_BACKEND_BODYRUN_HH
#define MINTCB_BACKEND_BODYRUN_HH

#include "common/result.hh"
#include "common/simtime.hh"
#include "common/types.hh"
#include "machine/machine.hh"
#include "sea/request.hh"

namespace mintcb::backend
{

/** What one in-TEE body execution produced and cost. */
struct BodyRun
{
    Status status = okStatus(); //!< the PAL's application outcome
    Bytes output;
    Duration compute; //!< body time minus state-protection calls
    Duration seal;    //!< sealState time charged by the body
    Duration unseal;  //!< unsealState time charged by the body
};

/** Run @p request's PAL body on @p machine's core @p cpu, charging its
 *  compute to that core's clock, and split out the state-protection
 *  time so each family can reprice it as its own transition cost. */
BodyRun runPalBody(machine::Machine &machine,
                   const sea::PalRequest &request, CpuId cpu);

} // namespace mintcb::backend

#endif // MINTCB_BACKEND_BODYRUN_HH
