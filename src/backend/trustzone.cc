/**
 * @file
 * The trustzone backend: an ARM TrustZone world-switch cost model.
 *
 * World-switch TEEs (the SoK's third family) split the machine into a
 * normal and a secure world: entering protected execution is opening a
 * trusted-application session, every service call is an SMC round trip
 * through the secure monitor, and shared-memory marshalling is charged
 * per buffer chunk. Parameters are calibrated from "On The Performance
 * of ARM TrustZone" (Amacher & Schiavoni, DAIS'19): a raw world switch
 * is single-digit microseconds while TA session open/close runs to
 * hundreds of microseconds in OP-TEE.
 *
 * Deliberately absent: Capability::attestation. Stock TrustZone ships
 * no remote-attestation primitive, so a wantQuote request against this
 * backend is refused at admission -- the registry's fails-closed
 * capability-mismatch case.
 */

#include "backend/backends.hh"

#include "backend/bodyrun.hh"

namespace mintcb::backend
{

namespace
{

/** Calibrated cost parameters of the modeled secure world. */
struct TrustZoneParams
{
    /** SMC world-switch round trip through the secure monitor. */
    static constexpr Duration smcRoundTrip = Duration::micros(3.6);
    /** TEEC_OpenSession: load + authenticate the TA. */
    static constexpr Duration sessionOpen = Duration::micros(610);
    /** TEEC_CloseSession. */
    static constexpr Duration sessionClose = Duration::micros(255);
    /** Shared-memory marshalling per 4 KB chunk crossed. */
    static constexpr Duration marshalPerChunk = Duration::micros(12);
    static constexpr std::size_t chunkBytes = 4096;
    /** Secure-world compute per scheduler-driven return to the normal
     *  world (the secure world must yield for normal-world ticks). */
    static constexpr Duration yieldQuantum = Duration::micros(500);
};

class TrustZoneBackend final : public Backend
{
  public:
    const BackendInfo &
    info() const override
    {
        static const BackendInfo inf{
            "trustzone",
            "world switch",
            "ARM TrustZone-style TA: SMC round trips + shared-memory "
            "marshalling (Amacher & Schiavoni); no remote attestation",
            {sea::Capability::oneShot, sea::Capability::sealedState,
             sea::Capability::worldSwitch},
        };
        return inf;
    }

    Result<sea::ExecutionReport>
    run(machine::Machine &machine, const sea::PalRequest &request,
        CpuId cpu) const override
    {
        // The registry refuses this earlier; direct callers get the
        // same fails-closed answer.
        if (request.wantQuote) {
            return Error(Errc::failedPrecondition,
                         "trustzone backend has no attestation "
                         "capability");
        }
        machine::Cpu &core = machine.cpu(cpu);
        sea::ExecutionReport report;
        report.palName = request.pal.name();
        report.backend = "trustzone";
        report.cpu = cpu;
        const TimePoint t0 = core.now();
        report.submittedAt = t0;
        report.startedAt = t0;

        // Launch: open the TA session (one SMC in, load, authenticate).
        core.advance(TrustZoneParams::smcRoundTrip);
        core.advance(TrustZoneParams::sessionOpen);
        report.phases.launch = core.now() - t0;
        report.launches = 1;
        report.palMeasurement = request.pal.measurement();

        // Body in the secure world.
        BodyRun body = runPalBody(machine, request, cpu);
        report.phases.compute = body.compute;
        report.output = body.output;
        report.status = body.status;

        // Transitions: the command SMC, marshalling SMCs per shared-
        // memory chunk of I/O, and scheduler-driven yields back to the
        // normal world per compute quantum.
        const std::uint64_t marshal_chunks =
            (request.input.size() + body.output.size() +
             TrustZoneParams::chunkBytes - 1) /
            TrustZoneParams::chunkBytes;
        const std::uint64_t yields = static_cast<std::uint64_t>(
            body.compute.ticks() /
            TrustZoneParams::yieldQuantum.ticks());
        const std::uint64_t smcs = 1 + marshal_chunks + yields;
        const Duration smc_time =
            TrustZoneParams::smcRoundTrip * static_cast<double>(smcs) +
            TrustZoneParams::marshalPerChunk *
                static_cast<double>(marshal_chunks);
        core.advance(smc_time);
        report.phases.transition = smc_time + body.seal + body.unseal;
        report.yields = yields;

        // Teardown: close the session.
        const TimePoint d0 = core.now();
        core.advance(TrustZoneParams::sessionClose);
        report.phases.teardown = core.now() - d0;

        report.finishedAt = core.now();
        report.total = report.finishedAt - report.startedAt;

        sea::ReportSection &ws =
            report.section(sea::Capability::worldSwitch);
        ws.addCost("smc_time", smc_time);
        ws.addCount("smc_calls", smcs);
        ws.addCount("marshal_chunks", marshal_chunks);

        report.deadlineMet = request.deadline == TimePoint() ||
                             report.finishedAt <= request.deadline;
        return report;
    }
};

} // namespace

std::unique_ptr<Backend>
makeTrustZone()
{
    return std::make_unique<TrustZoneBackend>();
}

} // namespace mintcb::backend
