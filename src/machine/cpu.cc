/**
 * @file
 * CPU core implementation.
 */

#include "machine/cpu.hh"

namespace mintcb::machine
{

void
Cpu::resetToTrustedState(Duration init_cost)
{
    clock_.advance(init_cost);
    ring_ = 0;
    interruptsEnabled_ = false;
}

void
Cpu::secureStateClear(Duration flush_cost)
{
    clock_.advance(flush_cost);
    ++secureClears_;
}

std::uint64_t
Cpu::runLegacyWork(Duration d)
{
    clock_.advance(d);
    // Work units are abstract "gigacycles * ns" progress counters.
    const std::uint64_t units =
        static_cast<std::uint64_t>(d.toNanos() * freqGhz_);
    legacyWork_ += units;
    return units;
}

} // namespace mintcb::machine
