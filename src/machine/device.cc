/**
 * @file
 * DMA device (header-only logic; this file anchors the translation unit).
 */

#include "machine/device.hh"

namespace mintcb::machine
{

// All members are defined inline in the header.

} // namespace mintcb::machine
