/**
 * @file
 * Physical memory implementation.
 */

#include "machine/memory.hh"

#include <algorithm>

namespace mintcb::machine
{

PhysicalMemory::PhysicalMemory(std::uint64_t pages)
    : pages_(pages), data_(pages * pageSize, 0)
{
}

bool
PhysicalMemory::contains(PhysAddr addr, std::uint64_t len) const
{
    return addr <= sizeBytes() && len <= sizeBytes() - addr;
}

Result<Bytes>
PhysicalMemory::read(PhysAddr addr, std::uint64_t len) const
{
    if (!contains(addr, len))
        return Error(Errc::invalidArgument, "physical read out of range");
    return Bytes(data_.begin() + static_cast<std::ptrdiff_t>(addr),
                 data_.begin() + static_cast<std::ptrdiff_t>(addr + len));
}

Status
PhysicalMemory::write(PhysAddr addr, const Bytes &data)
{
    if (!contains(addr, data.size()))
        return Error(Errc::invalidArgument, "physical write out of range");
    std::copy(data.begin(), data.end(),
              data_.begin() + static_cast<std::ptrdiff_t>(addr));
    return okStatus();
}

Status
PhysicalMemory::zeroPage(PageNum page)
{
    if (page >= pages_)
        return Error(Errc::invalidArgument, "page out of range");
    std::fill_n(data_.begin() +
                    static_cast<std::ptrdiff_t>(page * pageSize),
                pageSize, 0);
    return okStatus();
}

} // namespace mintcb::machine
