/**
 * @file
 * The assembled platform: CPUs + memory + north bridge + LPC + TPM.
 *
 * This is the substrate everything else runs on. The simulation is
 * single-threaded; concurrency is modeled with per-core virtual clocks
 * that the latelaunch / sea / rec layers advance and synchronize.
 */

#ifndef MINTCB_MACHINE_MACHINE_HH
#define MINTCB_MACHINE_MACHINE_HH

#include <cassert>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "machine/cpu.hh"
#include "machine/device.hh"
#include "machine/lpc.hh"
#include "machine/memctrl.hh"
#include "machine/memory.hh"
#include "machine/platform.hh"
#include "tpm/tpm.hh"

namespace mintcb::machine
{

/** A complete simulated computer. */
class Machine
{
  public:
    /** Build from a spec; @p seed diversifies the TPM identity and all
     *  derived randomness. */
    explicit Machine(const PlatformSpec &spec, std::uint64_t seed = 0);

    /** Build one of the paper's preset platforms. */
    static Machine
    forPlatform(PlatformId id, std::uint64_t seed = 0)
    {
        return Machine(PlatformSpec::forPlatform(id), seed);
    }

    /** @name Shard factory (sharded execution service).
     * A sharded service runs each affinity shard on its own independent
     * machine. The shard seed is a splitmix64 mix of the front
     * machine's master seed and the shard index, so every shard gets a
     * distinct TPM identity and RNG stream while the whole fleet stays
     * a pure function of (spec, masterSeed) -- the determinism argument
     * for byte-identical reports across worker counts.
     * @{ */
    static std::uint64_t shardSeed(std::uint64_t master_seed,
                                   std::uint32_t shard);
    static std::unique_ptr<Machine>
    forShard(const PlatformSpec &spec, std::uint64_t master_seed,
             std::uint32_t shard);
    /** @} */

    const PlatformSpec &spec() const { return spec_; }

    /** The seed this machine was built with (shard derivation). */
    std::uint64_t seed() const { return seed_; }

    /** @name Components. @{ */
    std::size_t cpuCount() const { return cpus_.size(); }
    Cpu &cpu(CpuId id) { return cpus_.at(id); }
    const Cpu &cpu(CpuId id) const { return cpus_.at(id); }
    PhysicalMemory &memory() { return memory_; }
    MemoryController &memctrl() { return memctrl_; }
    LpcBus &lpc() { return lpc_; }
    DmaDevice &nic() { return nic_; }
    Rng &rng() { return rng_; }
    /** @} */

    /** @name TPM access. @{ */
    bool hasTpm() const { return tpm_ != nullptr; }
    /** The TPM, with op latency charged to @p cpu's clock (the invoking
     *  core stalls for the command duration). Asserts hasTpm(). */
    tpm::Tpm &tpmAs(CpuId cpu);
    /** The TPM without re-targeting its clock (state inspection). */
    tpm::Tpm &
    tpm()
    {
        assert(tpm_ && "platform has no TPM");
        return *tpm_;
    }
    /** @} */

    /** @name Time. @{ */
    /** Platform time: the furthest-ahead CPU clock. */
    TimePoint now() const;
    /** Barrier: drag every CPU clock forward to the platform time (used
     *  when an operation halts the whole machine, e.g. SKINIT). */
    void syncAllCpus();
    /** Drag every CPU clock forward to @p at (clocks already past it
     *  stay put). Reconciles a shard machine onto the service timeline
     *  at the start of a sharded drain. */
    void alignTo(TimePoint at);
    /** @} */

    /** Convenience: memory-controller-mediated access as a given CPU. */
    Result<Bytes>
    readAs(CpuId cpu, PhysAddr addr, std::uint64_t len)
    {
        return memctrl_.read(Agent::forCpu(cpu), addr, len);
    }
    Status
    writeAs(CpuId cpu, PhysAddr addr, const Bytes &data)
    {
        return memctrl_.write(Agent::forCpu(cpu), addr, data);
    }

    /** Power cycle: PCRs to boot values, protections cleared, clocks
     *  reset. RAM contents survive (warm reboot). */
    void reboot();

  private:
    std::uint64_t seed_ = 0;
    PlatformSpec spec_;
    PhysicalMemory memory_;
    MemoryController memctrl_;
    LpcBus lpc_;
    std::vector<Cpu> cpus_;
    std::unique_ptr<tpm::Tpm> tpm_;
    DmaDevice nic_;
    Rng rng_;
};

} // namespace mintcb::machine

#endif // MINTCB_MACHINE_MACHINE_HH
