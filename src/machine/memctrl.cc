/**
 * @file
 * Memory controller implementation.
 */

#include "machine/memctrl.hh"

#include <algorithm>
#include <string>

namespace mintcb::machine
{

MemoryController::MemoryController(PhysicalMemory &memory)
    : memory_(memory), dev_(memory.pages(), false),
      acl_(memory.pages())
{
}

void
MemoryController::reset()
{
    std::fill(dev_.begin(), dev_.end(), false);
    std::fill(acl_.begin(), acl_.end(), AclEntry{});
    stats_ = mintcb::MemCtrlStats{};
}

Status
MemoryController::check(Agent agent, PageNum page) const
{
    if (page >= acl_.size())
        return Error(Errc::invalidArgument, "page out of range");

    const AclEntry &entry = acl_[page];
    if (agent.kind == Agent::Kind::dmaDevice) {
        // DMA is blocked by either mechanism: the DEV bit (today) or a
        // non-ALL ACL state (recommendation).
        if (dev_[page]) {
            return Error(Errc::permissionDenied,
                         "DEV blocks DMA to page " + std::to_string(page));
        }
        if (entry.state != PageState::all) {
            return Error(Errc::permissionDenied,
                         "ACL blocks DMA to protected page " +
                             std::to_string(page));
        }
        return okStatus();
    }

    // CPU access: the DEV does not restrict CPUs, only the ACL table.
    switch (entry.state) {
      case PageState::all:
        return okStatus();
      case PageState::owned:
        if (entry.ownerMask & (1ull << agent.cpu))
            return okStatus();
        return Error(Errc::permissionDenied,
                     "page " + std::to_string(page) +
                         " owned by another CPU");
      case PageState::none:
        return Error(Errc::permissionDenied,
                     "page " + std::to_string(page) +
                         " belongs to a suspended PAL (state NONE)");
    }
    return Error(Errc::permissionDenied, "unreachable");
}

void
MemoryController::addAccessObserver(MemAccessObserver *obs)
{
    if (obs == nullptr || hasAccessObserver(obs))
        return;
    observers_.push_back(obs);
}

void
MemoryController::removeAccessObserver(MemAccessObserver *obs)
{
    observers_.erase(
        std::remove(observers_.begin(), observers_.end(), obs),
        observers_.end());
}

bool
MemoryController::hasAccessObserver(const MemAccessObserver *obs) const
{
    return std::find(observers_.begin(), observers_.end(), obs) !=
           observers_.end();
}

void
MemoryController::notifyAccess(const Agent &agent, PageNum page,
                               PhysAddr addr, std::uint64_t len,
                               bool isWrite, bool granted) const
{
    if (observers_.empty())
        return;
    // Clip [addr, addr+len) to this page: the sub-page byte range the
    // access touches here (a zero-length probe reports len == 0 at the
    // probed offset).
    const PhysAddr base = pageBase(page);
    const PhysAddr start = std::max(addr, base);
    const PhysAddr end = std::min(addr + len, base + pageSize);
    const auto offset = static_cast<std::uint32_t>(start - base);
    const auto chunk = static_cast<std::uint32_t>(
        end > start ? end - start : 0);
    for (MemAccessObserver *obs : observers_)
        obs->onAccess(agent, page, offset, chunk, isWrite, granted);
}

Result<Bytes>
MemoryController::read(Agent agent, PhysAddr addr, std::uint64_t len) const
{
    if (!memory_.contains(addr, len))
        return Error(Errc::invalidArgument, "read out of range");
    const bool dma = agent.kind == Agent::Kind::dmaDevice;
    (dma ? stats_.dmaReads : stats_.cpuReads) += 1;
    const PageNum first = pageOf(addr);
    const PageNum last = len ? pageOf(addr + len - 1) : first;
    for (PageNum p = first; p <= last; ++p) {
        if (auto s = check(agent, p); !s.ok()) {
            (dma ? stats_.dmaDenials : stats_.cpuDenials) += 1;
            notifyAccess(agent, p, addr, len, /*isWrite=*/false, false);
            return s.error();
        }
        notifyAccess(agent, p, addr, len, /*isWrite=*/false, true);
    }
    return memory_.read(addr, len);
}

Status
MemoryController::write(Agent agent, PhysAddr addr, const Bytes &data)
{
    if (!memory_.contains(addr, data.size()))
        return Error(Errc::invalidArgument, "write out of range");
    const bool dma = agent.kind == Agent::Kind::dmaDevice;
    (dma ? stats_.dmaWrites : stats_.cpuWrites) += 1;
    const PageNum first = pageOf(addr);
    const PageNum last =
        data.empty() ? first : pageOf(addr + data.size() - 1);
    for (PageNum p = first; p <= last; ++p) {
        if (auto s = check(agent, p); !s.ok()) {
            (dma ? stats_.dmaDenials : stats_.cpuDenials) += 1;
            notifyAccess(agent, p, addr, data.size(), /*isWrite=*/true,
                         false);
            return s;
        }
        notifyAccess(agent, p, addr, data.size(), /*isWrite=*/true,
                     true);
    }
    return memory_.write(addr, data);
}

Status
MemoryController::devProtect(PageNum first, std::uint64_t count)
{
    if (first + count > dev_.size())
        return Error(Errc::invalidArgument, "DEV range out of bounds");
    for (std::uint64_t i = 0; i < count; ++i)
        dev_[first + i] = true;
    return okStatus();
}

Status
MemoryController::devUnprotect(PageNum first, std::uint64_t count)
{
    if (first + count > dev_.size())
        return Error(Errc::invalidArgument, "DEV range out of bounds");
    for (std::uint64_t i = 0; i < count; ++i)
        dev_[first + i] = false;
    return okStatus();
}

bool
MemoryController::devProtected(PageNum page) const
{
    return page < dev_.size() && dev_[page];
}

Status
MemoryController::aclAcquire(const std::vector<PageNum> &pages, CpuId cpu)
{
    // Validate the whole transition before applying any of it, so a
    // failed SLAUNCH leaves the table untouched (Section 5.6: "If the
    // memory controller discovers that another PAL is already using any
    // of these memory pages, it signals the CPU that SLAUNCH must return
    // a failure code").
    for (PageNum p : pages) {
        if (p >= acl_.size())
            return Error(Errc::invalidArgument, "page out of range");
        const AclEntry &e = acl_[p];
        if (e.state == PageState::owned) {
            return Error(Errc::permissionDenied,
                         "page " + std::to_string(p) +
                             " already owned by another CPU");
        }
    }
    for (PageNum p : pages) {
        acl_[p] = {PageState::owned, 1ull << cpu};
        ++stats_.aclTransitions;
    }
    return okStatus();
}

Status
MemoryController::aclSuspend(const std::vector<PageNum> &pages, CpuId cpu)
{
    for (PageNum p : pages) {
        if (p >= acl_.size())
            return Error(Errc::invalidArgument, "page out of range");
        const AclEntry &e = acl_[p];
        if (e.state != PageState::owned ||
            !(e.ownerMask & (1ull << cpu))) {
            return Error(Errc::failedPrecondition,
                         "page " + std::to_string(p) +
                             " not owned by suspending CPU");
        }
    }
    for (PageNum p : pages) {
        acl_[p].state = PageState::none;
        ++stats_.aclTransitions;
    }
    return okStatus();
}

Status
MemoryController::aclRelease(const std::vector<PageNum> &pages)
{
    for (PageNum p : pages) {
        if (p >= acl_.size())
            return Error(Errc::invalidArgument, "page out of range");
    }
    for (PageNum p : pages) {
        acl_[p] = AclEntry{};
        ++stats_.aclTransitions;
    }
    return okStatus();
}

PageState
MemoryController::pageState(PageNum page) const
{
    return page < acl_.size() ? acl_[page].state : PageState::all;
}

std::optional<CpuId>
MemoryController::pageOwner(PageNum page) const
{
    if (page >= acl_.size() || acl_[page].state == PageState::all)
        return std::nullopt;
    return static_cast<CpuId>(
        __builtin_ctzll(acl_[page].ownerMask));
}

std::uint64_t
MemoryController::pageOwnerMask(PageNum page) const
{
    if (page >= acl_.size() || acl_[page].state == PageState::all)
        return 0;
    return acl_[page].ownerMask;
}

Status
MemoryController::aclJoin(const std::vector<PageNum> &pages,
                          CpuId existing_cpu, CpuId joining_cpu)
{
    for (PageNum p : pages) {
        if (p >= acl_.size())
            return Error(Errc::invalidArgument, "page out of range");
        const AclEntry &e = acl_[p];
        if (e.state != PageState::owned ||
            !(e.ownerMask & (1ull << existing_cpu))) {
            return Error(Errc::failedPrecondition,
                         "join requires pages owned by the existing CPU");
        }
    }
    for (PageNum p : pages)
        acl_[p].ownerMask |= 1ull << joining_cpu;
    return okStatus();
}

} // namespace mintcb::machine
