/**
 * @file
 * Raw physical memory for the simulated platform.
 *
 * Storage only; all access-control decisions live in the MemoryController
 * (the north bridge), exactly as in the paper's minimal-TCB picture
 * (Figure 1: CPU + RAM + the interface between them).
 */

#ifndef MINTCB_MACHINE_MEMORY_HH
#define MINTCB_MACHINE_MEMORY_HH

#include <cstdint>

#include "common/result.hh"
#include "common/types.hh"

namespace mintcb::machine
{

/** Byte-addressable physical memory with page-granular helpers. */
class PhysicalMemory
{
  public:
    /** @p pages 4 KB pages of zeroed RAM. */
    explicit PhysicalMemory(std::uint64_t pages);

    std::uint64_t pages() const { return pages_; }
    std::uint64_t sizeBytes() const { return pages_ * pageSize; }

    /** True when [addr, addr+len) lies inside RAM. */
    bool contains(PhysAddr addr, std::uint64_t len) const;

    /** Read @p len bytes at @p addr (bounds-checked). */
    Result<Bytes> read(PhysAddr addr, std::uint64_t len) const;

    /** Write @p data at @p addr (bounds-checked). */
    Status write(PhysAddr addr, const Bytes &data);

    /** Zero an entire page (SKILL's secure erase). */
    Status zeroPage(PageNum page);

  private:
    std::uint64_t pages_;
    Bytes data_;
};

} // namespace mintcb::machine

#endif // MINTCB_MACHINE_MEMORY_HH
