/**
 * @file
 * Platform-wide statistics report.
 *
 * Renders the counters every component collects (common/counters.hh)
 * into one gem5-style summary: per-CPU work, LPC traffic, TPM command
 * mix, protection activity.
 */

#ifndef MINTCB_MACHINE_PLATFORMSTATS_HH
#define MINTCB_MACHINE_PLATFORMSTATS_HH

#include <string>

#include "common/counters.hh"

namespace mintcb::machine
{

class Machine;

/**
 * Render a human-readable stats report for @p machine.
 */
std::string statsReport(Machine &machine);

} // namespace mintcb::machine

#endif // MINTCB_MACHINE_PLATFORMSTATS_HH
