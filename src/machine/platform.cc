/**
 * @file
 * Platform preset definitions.
 *
 * Calibration notes:
 *  - cpuStateInit: Table 1's 0 KB rows -- dc5750 shows 0.00 ms, Tyan shows
 *    0.01 ms, so reaching the protected CPU state costs single-digit
 *    microseconds ("placing the CPU in an appropriate state introduces
 *    relatively little overhead (less than 10 us)").
 *  - Intel TEP: SENTER(0 KB) = 26.39 ms = ACMod transfer+hash over LPC
 *    (10.2 KB at the TEP Atmel's long-wait rate) + chipset signature
 *    verification + hash-sequence bookkeeping; the 0.1244 ms/KB slope is
 *    the ACMod hashing the MLE on the main CPU.
 */

#include "machine/platform.hh"

namespace mintcb::machine
{

PlatformSpec
PlatformSpec::forPlatform(PlatformId id)
{
    PlatformSpec s;
    s.id = id;
    s.memoryPages = 4096; // 16 MB of simulated RAM is ample for PALs
    s.maxSlbBytes = 64 * 1024;
    s.mptBytes = 512 * 1024;
    s.acmodBytes = 0;
    s.acmodSigVerify = Duration::zero();
    // SHA-1 throughput of a 2 GHz-class 2007 CPU, from the Table 1 Intel
    // slope; AMD machines use it for the footnote-4 two-part PAL trick.
    s.cpuHashPerByte = Duration::nanos(7.96e6 / 65536.0);
    s.microarchFlush = Duration::nanos(80);

    switch (id) {
      case PlatformId::hpDc5750:
        s.name = "HP dc5750 (2.2 GHz AMD Athlon64 X2, Broadcom TPM)";
        s.cpuVendor = CpuVendor::amd;
        s.cpuCount = 2;
        s.freqGhz = 2.2;
        s.hasTpm = true;
        s.tpmVendor = tpm::TpmVendor::broadcom;
        s.cpuStateInit = Duration::micros(3);
        break;
      case PlatformId::tyanN3600R:
        s.name = "Tyan n3600R (2x 1.8 GHz dual-core Opteron, no TPM)";
        s.cpuVendor = CpuVendor::amd;
        s.cpuCount = 4;
        s.freqGhz = 1.8;
        s.hasTpm = false;
        s.tpmVendor = tpm::TpmVendor::ideal;
        s.cpuStateInit = Duration::micros(10);
        break;
      case PlatformId::intelTep:
        s.name = "MPC ClientPro 385 TEP (2.66 GHz Core 2 Duo, Atmel TPM)";
        s.cpuVendor = CpuVendor::intel;
        s.cpuCount = 2;
        s.freqGhz = 2.66;
        s.hasTpm = true;
        s.tpmVendor = tpm::TpmVendor::atmelTep;
        s.cpuStateInit = Duration::micros(8);
        s.acmodBytes = 10444; // "just over 10 KB" (Section 4.3.2)
        s.acmodSigVerify = Duration::millis(1.1);
        // Table 1 slope: (34.35 - 26.39) ms / 64 KB.
        s.cpuHashPerByte = Duration::nanos(7.96e6 / 65536.0);
        break;
      case PlatformId::lenovoT60:
        s.name = "Lenovo T60 (Intel, Atmel TPM)";
        s.cpuVendor = CpuVendor::intel;
        s.cpuCount = 2;
        s.freqGhz = 2.0;
        s.hasTpm = true;
        s.tpmVendor = tpm::TpmVendor::atmelT60;
        s.cpuStateInit = Duration::micros(8);
        s.acmodBytes = 10444;
        s.acmodSigVerify = Duration::millis(1.1);
        s.cpuHashPerByte = Duration::nanos(7.96e6 / 65536.0);
        break;
      case PlatformId::amdInfineonWs:
        s.name = "AMD workstation (Infineon TPM)";
        s.cpuVendor = CpuVendor::amd;
        s.cpuCount = 2;
        s.freqGhz = 2.2;
        s.hasTpm = true;
        s.tpmVendor = tpm::TpmVendor::infineon;
        s.cpuStateInit = Duration::micros(3);
        break;
      case PlatformId::recTestbed:
        s.name = "Recommendation testbed (4-core AMD, Broadcom TPM)";
        s.cpuVendor = CpuVendor::amd;
        s.cpuCount = 4;
        s.freqGhz = 2.2;
        s.hasTpm = true;
        s.tpmVendor = tpm::TpmVendor::broadcom;
        s.cpuStateInit = Duration::micros(3);
        break;
      case PlatformId::recServer:
        s.name = "Recommendation server (8-core AMD, Broadcom TPM)";
        s.cpuVendor = CpuVendor::amd;
        s.cpuCount = 8;
        s.freqGhz = 2.2;
        s.hasTpm = true;
        s.tpmVendor = tpm::TpmVendor::broadcom;
        s.cpuStateInit = Duration::micros(3);
        s.memoryPages = 8192; // room for many concurrent SECBs
        break;
    }
    s.vmTiming = VmSwitchTiming::forVendor(s.cpuVendor);
    return s;
}

} // namespace mintcb::machine
