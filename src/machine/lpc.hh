/**
 * @file
 * Low Pin Count bus model.
 *
 * The TPM hangs off the LPC bus (Figure 1), whose maximum bandwidth is
 * 16.67 MB/s -- "the fastest possible transfer of 64 KB is 3.8 ms"
 * (Section 4.3.1). Measured transfer on the TPM-less Tyan n3600R is
 * 8.82 ms for 64 KB (protocol overhead roughly halves the raw rate);
 * that effective per-byte cost is what this model charges. TPM-induced
 * long wait cycles are charged separately by the TPM's timing profile.
 */

#ifndef MINTCB_MACHINE_LPC_HH
#define MINTCB_MACHINE_LPC_HH

#include <cstdint>

#include "common/simtime.hh"

namespace mintcb::machine
{

/** The LPC bus connecting the south bridge / TPM. */
class LpcBus
{
  public:
    /** Effective cost per transferred byte (protocol included). */
    explicit LpcBus(Duration per_byte) : perByte_(per_byte) {}

    /** Calibrated from the Tyan n3600R row of Table 1:
     *  8.82 ms / 64 KB = 134.58 ns per byte. */
    static LpcBus
    calibrated()
    {
        return LpcBus(Duration::nanos(8.82e6 / 65536.0));
    }

    Duration perByte() const { return perByte_; }

    /** Simulated time to move @p bytes across the bus. */
    Duration
    transferTime(std::uint64_t bytes) const
    {
        return perByte_ * static_cast<double>(bytes);
    }

    /** Charge a transfer of @p bytes to @p clock. */
    void
    transfer(std::uint64_t bytes, Timeline &clock) const
    {
        clock.advance(transferTime(bytes));
    }

    /** Cumulative bytes moved (test observability). */
    std::uint64_t bytesMoved() const { return bytesMoved_; }

    /** transfer() + accounting, for callers that track traffic. */
    void
    transferTracked(std::uint64_t bytes, Timeline &clock)
    {
        transfer(bytes, clock);
        bytesMoved_ += bytes;
    }

  private:
    Duration perByte_;
    std::uint64_t bytesMoved_ = 0;
};

} // namespace mintcb::machine

#endif // MINTCB_MACHINE_LPC_HH
