/**
 * @file
 * Low Pin Count bus model.
 *
 * The TPM hangs off the LPC bus (Figure 1), whose maximum bandwidth is
 * 16.67 MB/s -- "the fastest possible transfer of 64 KB is 3.8 ms"
 * (Section 4.3.1). Measured transfer on the TPM-less Tyan n3600R is
 * 8.82 ms for 64 KB (protocol overhead roughly halves the raw rate);
 * that effective per-byte cost is what this model charges. TPM-induced
 * long wait cycles are charged separately by the TPM's timing profile.
 */

#ifndef MINTCB_MACHINE_LPC_HH
#define MINTCB_MACHINE_LPC_HH

#include <cstdint>

#include "common/simtime.hh"

namespace mintcb::machine
{

/**
 * Observer of every bus transfer. The obs layer's telemetry session
 * implements this to attribute simulated time to LPC traffic; the bus
 * itself never behaves differently with an observer attached.
 */
class LpcObserver
{
  public:
    virtual ~LpcObserver() = default;
    /** @p bytes moved during [@p start, @p start + @p cost) on the
     *  charged clock. */
    virtual void onTransfer(std::uint64_t bytes, TimePoint start,
                            Duration cost) = 0;
};

/** The LPC bus connecting the south bridge / TPM. */
class LpcBus
{
  public:
    /** Effective cost per transferred byte (protocol included). */
    explicit LpcBus(Duration per_byte) : perByte_(per_byte) {}

    /** Calibrated from the Tyan n3600R row of Table 1:
     *  8.82 ms / 64 KB = 134.58 ns per byte. */
    static LpcBus
    calibrated()
    {
        return LpcBus(Duration::nanos(8.82e6 / 65536.0));
    }

    Duration perByte() const { return perByte_; }

    /** Simulated time to move @p bytes across the bus. */
    Duration
    transferTime(std::uint64_t bytes) const
    {
        return perByte_ * static_cast<double>(bytes);
    }

    /** Charge a transfer of @p bytes to @p clock. */
    void
    transfer(std::uint64_t bytes, Timeline &clock) const
    {
        const TimePoint start = clock.now();
        const Duration cost = transferTime(bytes);
        clock.advance(cost);
        if (observer_)
            observer_->onTransfer(bytes, start, cost);
    }

    /** Attach (or with nullptr detach) the transfer observer. */
    void setObserver(LpcObserver *obs) { observer_ = obs; }
    LpcObserver *observer() const { return observer_; }

    /** Cumulative bytes moved (test observability). */
    std::uint64_t bytesMoved() const { return bytesMoved_; }

    /** transfer() + accounting, for callers that track traffic. */
    void
    transferTracked(std::uint64_t bytes, Timeline &clock)
    {
        transfer(bytes, clock);
        bytesMoved_ += bytes;
    }

  private:
    Duration perByte_;
    std::uint64_t bytesMoved_ = 0;
    LpcObserver *observer_ = nullptr;
};

} // namespace mintcb::machine

#endif // MINTCB_MACHINE_LPC_HH
