/**
 * @file
 * Platform presets: the five machines benchmarked in the paper.
 *
 * Sections 4.2-4.3 measure on an HP dc5750 (AMD + Broadcom TPM, the
 * primary machine), a Tyan n3600R (AMD, TPM-less -- isolates SKINIT from
 * TPM overhead), an MPC ClientPro 385 "Intel TEP" (Core 2 Duo + Atmel
 * TPM), a Lenovo T60 (Atmel TPM), and an AMD workstation (Infineon TPM).
 */

#ifndef MINTCB_MACHINE_PLATFORM_HH
#define MINTCB_MACHINE_PLATFORM_HH

#include <cstdint>
#include <optional>
#include <string>

#include "common/simtime.hh"
#include "machine/vmswitch.hh"
#include "tpm/timing.hh"

namespace mintcb::machine
{

/** The benchmarked platforms plus a multicore recommendation testbed. */
enum class PlatformId
{
    hpDc5750,       //!< 2.2 GHz AMD Athlon64 X2, Broadcom v1.2 TPM
    tyanN3600R,     //!< 2x 1.8 GHz dual-core Opteron, no TPM
    intelTep,       //!< 2.66 GHz Core 2 Duo, Atmel v1.2 TPM (TXT TEP)
    lenovoT60,      //!< T60 laptop, Atmel v1.2 TPM (TPM benchmarks only)
    amdInfineonWs,  //!< AMD workstation, Infineon v1.2 TPM
    recTestbed,     //!< 4-core AMD machine for recommended-architecture
                    //!< concurrency experiments (Figure 4 style)
    recServer,      //!< 8-core server build of the recommendation testbed
                    //!< (execution-service scaling experiments)
};

/** Everything needed to instantiate a Machine. */
struct PlatformSpec
{
    PlatformId id;
    std::string name;

    CpuVendor cpuVendor;
    std::uint32_t cpuCount;
    double freqGhz;
    std::uint64_t memoryPages; //!< simulated RAM size (4 KB pages)

    bool hasTpm;
    tpm::TpmVendor tpmVendor; //!< meaningful when hasTpm

    /** @name Late-launch parameters. @{ */
    std::uint32_t maxSlbBytes;  //!< DEV-covered SLB limit (AMD: 64 KB)
    std::uint32_t mptBytes;     //!< Intel MPT default coverage (512 KB)
    Duration cpuStateInit;      //!< cost to reach the trusted CPU state
    /** @} */

    /** @name Intel SENTER specifics (ignored on AMD). @{ */
    std::uint32_t acmodBytes;   //!< Authenticated Code Module size
    Duration acmodSigVerify;    //!< chipset RSA verification of the ACMod
    Duration cpuHashPerByte;    //!< ACMod hashing the MLE on the main CPU
    /** @} */

    VmSwitchTiming vmTiming;

    /** Cost to flush leak-capable microarchitectural state on a secure
     *  context switch (cache lines etc.; folded into the sub-us switch). */
    Duration microarchFlush;

    /** Preset for one of the paper's machines. */
    static PlatformSpec forPlatform(PlatformId id);
};

} // namespace mintcb::machine

#endif // MINTCB_MACHINE_PLATFORM_HH
