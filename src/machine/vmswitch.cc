/**
 * @file
 * Table 2 world-switch calibration.
 */

#include "machine/vmswitch.hh"

#include <algorithm>

namespace mintcb::machine
{

const char *
cpuVendorName(CpuVendor v)
{
    switch (v) {
      case CpuVendor::amd:
        return "AMD SVM";
      case CpuVendor::intel:
        return "Intel TXT";
    }
    return "unknown";
}

VmSwitchTiming
VmSwitchTiming::forVendor(CpuVendor vendor)
{
    VmSwitchTiming t;
    switch (vendor) {
      case CpuVendor::amd:
        // Table 2: Tyan n3600R, 1.8 GHz Opteron.
        t.enterMean = Duration::micros(0.5580);
        t.enterStdev = Duration::micros(0.0028);
        t.exitMean = Duration::micros(0.5193);
        t.exitStdev = Duration::micros(0.0036);
        break;
      case CpuVendor::intel:
        // Table 2: MPC ClientPro 385, 2.66 GHz Core 2 Duo.
        t.enterMean = Duration::micros(0.4457);
        t.enterStdev = Duration::micros(0.0029);
        t.exitMean = Duration::micros(0.4491);
        t.exitStdev = Duration::micros(0.0015);
        break;
    }
    return t;
}

namespace
{

Duration
sampleAround(Duration mean, Duration stdev, Rng &rng)
{
    const double sampled =
        mean.toNanos() + stdev.toNanos() * rng.nextGaussian();
    return Duration::nanos(std::max(sampled, 0.0));
}

} // namespace

Duration
VmSwitchTiming::sampleEnter(Rng &rng) const
{
    return sampleAround(enterMean, enterStdev, rng);
}

Duration
VmSwitchTiming::sampleExit(Rng &rng) const
{
    return sampleAround(exitMean, exitStdev, rng);
}

} // namespace mintcb::machine
