/**
 * @file
 * The north-bridge memory controller.
 *
 * Two protection mechanisms live here:
 *
 *  1. Today's hardware: the Device Exclusion Vector (AMD) / Memory
 *     Protection Table (Intel) -- a bit per page that blocks DMA-capable
 *     devices (Section 2.2.1). CPUs are NOT restricted by the DEV.
 *
 *  2. The paper's recommendation (Section 5.2): an access-control table
 *     with one entry per physical page recording which CPU, if any, may
 *     touch the page. Pages move through the Figure 5(b) state machine:
 *
 *         ALL --(SLAUNCH)--> CPUi --(suspend)--> NONE
 *          ^                   |                   |
 *          +----(SFREE/SKILL)--+<----(resume)------+
 *
 * Every read, write, and DMA access in the simulation is mediated by this
 * class, so isolation is enforced, not merely asserted.
 */

#ifndef MINTCB_MACHINE_MEMCTRL_HH
#define MINTCB_MACHINE_MEMCTRL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.hh"
#include "common/types.hh"
#include "common/counters.hh"
#include "machine/memory.hh"

namespace mintcb::machine
{

/** Originator of a memory request (CPUs carry their agent id; devices are
 *  DMA requestors behind the DEV). */
struct Agent
{
    enum class Kind
    {
        cpu,
        dmaDevice,
    };

    Kind kind = Kind::cpu;
    CpuId cpu = 0; //!< meaningful for Kind::cpu

    static Agent
    forCpu(CpuId id)
    {
        return {Kind::cpu, id};
    }
    static Agent
    forDevice()
    {
        return {Kind::dmaDevice, 0};
    }
};

/**
 * Observer of every mediated access, page chunk by page chunk. The
 * verify layer's happens-before race detector, the telemetry session,
 * and the side-channel audit adversaries all implement this; the
 * controller itself never behaves differently with observers attached.
 *
 * An access spanning N pages produces N callbacks, each carrying the
 * sub-page byte range [offset, offset + len) the access touches inside
 * that page -- so an observer can reconstruct the victim's footprint at
 * page granularity or refine it down to 64-byte cache lines (the
 * granularities the leakage audit compares).
 */
class MemAccessObserver
{
  public:
    virtual ~MemAccessObserver() = default;
    /** One page chunk of one read/write: bytes [offset, offset + len)
     *  within @p page; @p granted tells whether the access-control
     *  check admitted it (a zero-length probe reports len == 0). */
    virtual void onAccess(const Agent &agent, PageNum page,
                          std::uint32_t offset, std::uint32_t len,
                          bool isWrite, bool granted) = 0;
};

/** Per-page access-control state (Figure 5(b)). */
enum class PageState
{
    all,  //!< accessible to every CPU and DMA device (default)
    owned,//!< accessible only to the owning CPU (a PAL is executing)
    none, //!< accessible to nothing (the owning PAL is suspended)
};

/** The north bridge. */
class MemoryController
{
  public:
    /** Mediates access to @p memory (not owned). */
    explicit MemoryController(PhysicalMemory &memory);

    /** @name Mediated access. @{ */
    Result<Bytes> read(Agent agent, PhysAddr addr, std::uint64_t len) const;
    Status write(Agent agent, PhysAddr addr, const Bytes &data);
    /** @} */

    /** @name DEV / MPT (today's hardware). @{ */
    /** Mark pages DMA-protected (set during SKINIT for the SLB region). */
    Status devProtect(PageNum first, std::uint64_t count);
    /** Clear DMA protection. */
    Status devUnprotect(PageNum first, std::uint64_t count);
    bool devProtected(PageNum page) const;
    /** @} */

    /** @name Recommended access-control table (Section 5.2). @{ */
    /**
     * ALL/NONE -> CPUi for every page in @p pages. Fails without change
     * if any page is owned by another CPU or (for @p from_none = false)
     * not in ALL. SLAUNCH-on-launch uses from_none = false; resume allows
     * NONE -> CPUi.
     */
    Status aclAcquire(const std::vector<PageNum> &pages, CpuId cpu);
    /** CPUi -> NONE (PAL suspend). Fails if @p cpu is not an owner. */
    Status aclSuspend(const std::vector<PageNum> &pages, CpuId cpu);
    /** CPUi/NONE -> ALL (SFREE / SKILL). */
    Status aclRelease(const std::vector<PageNum> &pages);
    /**
     * Multicore-PAL join (Section 6): add @p joining_cpu as a co-owner of
     * pages currently owned (in part) by @p existing_cpu.
     */
    Status aclJoin(const std::vector<PageNum> &pages, CpuId existing_cpu,
                   CpuId joining_cpu);
    PageState pageState(PageNum page) const;
    /** Lowest-numbered owner when the page is owned/none; nullopt for
     *  ALL pages. */
    std::optional<CpuId> pageOwner(PageNum page) const;
    /** Bitmask of co-owning CPUs (bit i = CPU i); 0 for ALL pages. */
    std::uint64_t pageOwnerMask(PageNum page) const;
    /** @} */

    /** Number of pages under management. */
    std::uint64_t pages() const { return acl_.size(); }

    /** Access/denial counters (gem5-style observability). */
    const MemCtrlStats &stats() const { return stats_; }

    /** @name Access-observer fan-out.
     * Any number of observers may watch the mediated access stream
     * concurrently (telemetry, the HB race detector, audit traces);
     * each is notified in attach order for every page chunk. The old
     * single-slot setAccessObserver() silently overwrote whichever
     * observer attached first -- the footgun this multiplexer removes.
     * @{ */
    /** Attach @p obs (idempotent: re-adding an attached observer does
     *  not duplicate its callbacks; nullptr is ignored). */
    void addAccessObserver(MemAccessObserver *obs);
    /** Detach @p obs (idempotent: unknown observers are ignored). */
    void removeAccessObserver(MemAccessObserver *obs);
    bool hasAccessObserver(const MemAccessObserver *obs) const;
    std::size_t accessObserverCount() const { return observers_.size(); }
    /** @} */

    /** Reset every protection (platform reboot). */
    void reset();

  private:
    struct AclEntry
    {
        PageState state = PageState::all;
        std::uint64_t ownerMask = 0; //!< bit i set => CPU i co-owns
    };

    /** Can @p agent touch @p page right now? */
    Status check(Agent agent, PageNum page) const;

    /** Fan the page chunk of [addr, addr+len) that lies inside @p page
     *  out to every attached observer. */
    void notifyAccess(const Agent &agent, PageNum page, PhysAddr addr,
                      std::uint64_t len, bool isWrite,
                      bool granted) const;

    PhysicalMemory &memory_;
    std::vector<bool> dev_;
    std::vector<AclEntry> acl_;
    mutable MemCtrlStats stats_;
    std::vector<MemAccessObserver *> observers_;
};

} // namespace mintcb::machine

#endif // MINTCB_MACHINE_MEMCTRL_HH
