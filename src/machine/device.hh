/**
 * @file
 * A DMA-capable peripheral.
 *
 * The threat model (Section 3.2) grants the attacker "add-on hardware such
 * as a DMA-capable Ethernet card with access to the PCI bus". This device
 * issues DMA reads/writes through the memory controller; the DEV / ACL
 * protections must stop it from touching PAL memory.
 */

#ifndef MINTCB_MACHINE_DEVICE_HH
#define MINTCB_MACHINE_DEVICE_HH

#include <string>

#include "common/result.hh"
#include "common/types.hh"
#include "machine/memctrl.hh"

namespace mintcb::machine
{

/** A (possibly attacker-controlled) bus-mastering device. */
class DmaDevice
{
  public:
    DmaDevice(std::string name, MemoryController &memctrl)
        : name_(std::move(name)), memctrl_(memctrl)
    {
    }

    const std::string &name() const { return name_; }

    /** Attempt a DMA read of @p len bytes at @p addr. */
    Result<Bytes>
    dmaRead(PhysAddr addr, std::uint64_t len)
    {
        ++attempts_;
        auto r = memctrl_.read(Agent::forDevice(), addr, len);
        if (!r.ok())
            ++blocked_;
        return r;
    }

    /** Attempt a DMA write of @p data at @p addr. */
    Status
    dmaWrite(PhysAddr addr, const Bytes &data)
    {
        ++attempts_;
        auto s = memctrl_.write(Agent::forDevice(), addr, data);
        if (!s.ok())
            ++blocked_;
        return s;
    }

    /** @name Attack accounting (test observability). @{ */
    std::uint64_t attempts() const { return attempts_; }
    std::uint64_t blocked() const { return blocked_; }
    /** @} */

  private:
    std::string name_;
    MemoryController &memctrl_;
    std::uint64_t attempts_ = 0;
    std::uint64_t blocked_ = 0;
};

} // namespace mintcb::machine

#endif // MINTCB_MACHINE_DEVICE_HH
