/**
 * @file
 * Stats report renderer.
 */

#include "machine/platformstats.hh"

#include <cstdio>

#include "machine/machine.hh"

namespace mintcb::machine
{

std::string
statsReport(Machine &machine)
{
    std::string out;
    char line[160];
    auto emit = [&out, &line]() { out += line; };

    std::snprintf(line, sizeof(line), "=== platform stats: %s ===\n",
                  machine.spec().name.c_str());
    emit();
    std::snprintf(line, sizeof(line), "sim time: %s\n",
                  machine.now().sinceEpoch().str().c_str());
    emit();

    for (CpuId c = 0; c < machine.cpuCount(); ++c) {
        const Cpu &cpu = machine.cpu(c);
        std::snprintf(line, sizeof(line),
                      "cpu%u: t=%s legacy_work=%llu secure_clears=%llu\n",
                      c, cpu.now().sinceEpoch().str().c_str(),
                      static_cast<unsigned long long>(
                          cpu.legacyWorkDone()),
                      static_cast<unsigned long long>(
                          cpu.secureClears()));
        emit();
    }

    std::snprintf(line, sizeof(line), "lpc: bytes_moved=%llu\n",
                  static_cast<unsigned long long>(
                      machine.lpc().bytesMoved()));
    emit();

    const MemCtrlStats &mc = machine.memctrl().stats();
    std::snprintf(line, sizeof(line),
                  "memctrl: cpu_rd=%llu cpu_wr=%llu dma_rd=%llu "
                  "dma_wr=%llu cpu_denied=%llu dma_denied=%llu "
                  "acl_transitions=%llu\n",
                  static_cast<unsigned long long>(mc.cpuReads),
                  static_cast<unsigned long long>(mc.cpuWrites),
                  static_cast<unsigned long long>(mc.dmaReads),
                  static_cast<unsigned long long>(mc.dmaWrites),
                  static_cast<unsigned long long>(mc.cpuDenials),
                  static_cast<unsigned long long>(mc.dmaDenials),
                  static_cast<unsigned long long>(mc.aclTransitions));
    emit();

    if (machine.hasTpm()) {
        const TpmStats &t = machine.tpm().stats();
        std::snprintf(line, sizeof(line),
                      "tpm(%s): extend=%llu read=%llu seal=%llu "
                      "unseal=%llu quote=%llu getrandom=%llu "
                      "hash_seq=%llu denied=%llu\n",
                      tpm::vendorName(machine.tpm().vendor()),
                      static_cast<unsigned long long>(t.extends),
                      static_cast<unsigned long long>(t.reads),
                      static_cast<unsigned long long>(t.seals),
                      static_cast<unsigned long long>(t.unseals),
                      static_cast<unsigned long long>(t.quotes),
                      static_cast<unsigned long long>(t.getRandoms),
                      static_cast<unsigned long long>(t.hashSequences),
                      static_cast<unsigned long long>(t.deniedCommands));
        emit();
    } else {
        out += "tpm: (absent)\n";
    }
    return out;
}

} // namespace mintcb::machine
