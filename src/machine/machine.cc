/**
 * @file
 * Machine assembly.
 */

#include "machine/machine.hh"

#include <algorithm>

namespace mintcb::machine
{

Machine::Machine(const PlatformSpec &spec, std::uint64_t seed)
    : seed_(seed), spec_(spec), memory_(spec.memoryPages),
      memctrl_(memory_), lpc_(LpcBus::calibrated()),
      nic_("attacker-nic", memctrl_), rng_(0x6d616368 ^ seed)
{
    cpus_.reserve(spec.cpuCount);
    for (CpuId i = 0; i < spec.cpuCount; ++i)
        cpus_.emplace_back(i, spec.freqGhz);
    if (spec.hasTpm)
        tpm_ = std::make_unique<tpm::Tpm>(spec.tpmVendor, seed);
}

std::uint64_t
Machine::shardSeed(std::uint64_t master_seed, std::uint32_t shard)
{
    // splitmix64 over (master, shard+1): shard 0 must not alias the
    // front machine's own seed (distinct TPM identity per shard).
    std::uint64_t z = master_seed ^
                      (static_cast<std::uint64_t>(shard) + 1) *
                          0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::unique_ptr<Machine>
Machine::forShard(const PlatformSpec &spec, std::uint64_t master_seed,
                  std::uint32_t shard)
{
    return std::make_unique<Machine>(spec,
                                     shardSeed(master_seed, shard));
}

tpm::Tpm &
Machine::tpmAs(CpuId cpu_id)
{
    assert(tpm_ && "platform has no TPM");
    tpm_->attachClock(&cpu(cpu_id).clock());
    return *tpm_;
}

TimePoint
Machine::now() const
{
    TimePoint latest;
    for (const Cpu &c : cpus_)
        latest = std::max(latest, c.now());
    return latest;
}

void
Machine::syncAllCpus()
{
    const TimePoint latest = now();
    for (Cpu &c : cpus_)
        c.clock().syncTo(latest);
}

void
Machine::alignTo(TimePoint at)
{
    for (Cpu &c : cpus_)
        c.clock().syncTo(at);
}

void
Machine::reboot()
{
    memctrl_.reset();
    if (tpm_)
        tpm_->reboot();
    for (Cpu &c : cpus_) {
        c.clock().reset();
        c.setRing(0);
        c.setInterruptsEnabled(true);
        c.setIdleForLateLaunch(false);
        c.disarmPreemptionTimer();
    }
}

} // namespace mintcb::machine
