/**
 * @file
 * Machine assembly.
 */

#include "machine/machine.hh"

#include <algorithm>

namespace mintcb::machine
{

Machine::Machine(const PlatformSpec &spec, std::uint64_t seed)
    : spec_(spec), memory_(spec.memoryPages), memctrl_(memory_),
      lpc_(LpcBus::calibrated()), nic_("attacker-nic", memctrl_),
      rng_(0x6d616368 ^ seed)
{
    cpus_.reserve(spec.cpuCount);
    for (CpuId i = 0; i < spec.cpuCount; ++i)
        cpus_.emplace_back(i, spec.freqGhz);
    if (spec.hasTpm)
        tpm_ = std::make_unique<tpm::Tpm>(spec.tpmVendor, seed);
}

tpm::Tpm &
Machine::tpmAs(CpuId cpu_id)
{
    assert(tpm_ && "platform has no TPM");
    tpm_->attachClock(&cpu(cpu_id).clock());
    return *tpm_;
}

TimePoint
Machine::now() const
{
    TimePoint latest;
    for (const Cpu &c : cpus_)
        latest = std::max(latest, c.now());
    return latest;
}

void
Machine::syncAllCpus()
{
    const TimePoint latest = now();
    for (Cpu &c : cpus_)
        c.clock().syncTo(latest);
}

void
Machine::reboot()
{
    memctrl_.reset();
    if (tpm_)
        tpm_->reboot();
    for (Cpu &c : cpus_) {
        c.clock().reset();
        c.setRing(0);
        c.setInterruptsEnabled(true);
        c.setIdleForLateLaunch(false);
        c.disarmPreemptionTimer();
    }
}

} // namespace mintcb::machine
