/**
 * @file
 * Hardware-virtualization world-switch timing (paper Table 2).
 *
 * The recommended architecture's claim rests on this measurement: "VM
 * entry and exit overheads are on the order of half a microsecond"
 * (Section 5.3.2), versus the 200-1000 ms TPM-based context switch. The
 * SLAUNCH context-switch path charges these costs.
 */

#ifndef MINTCB_MACHINE_VMSWITCH_HH
#define MINTCB_MACHINE_VMSWITCH_HH

#include "common/rng.hh"
#include "common/simtime.hh"

namespace mintcb::machine
{

/** CPU vendor, which selects the Table 2 row. */
enum class CpuVendor
{
    amd,   //!< SVM: SKINIT, VMRUN/VMMCALL
    intel, //!< TXT: SENTER (GETSEC leaf), VMRESUME/VMCALL
};

/** Printable vendor name. */
const char *cpuVendorName(CpuVendor v);

/** World-switch latency model with Table 2 means and standard deviations. */
struct VmSwitchTiming
{
    Duration enterMean;  //!< VM Entry (resume a guest)
    Duration enterStdev;
    Duration exitMean;   //!< VM Exit (guest traps to host)
    Duration exitStdev;

    /** The calibrated Table 2 numbers for @p vendor. */
    static VmSwitchTiming forVendor(CpuVendor vendor);

    /** Sample one VM Entry latency. */
    Duration sampleEnter(Rng &rng) const;
    /** Sample one VM Exit latency. */
    Duration sampleExit(Rng &rng) const;
};

} // namespace mintcb::machine

#endif // MINTCB_MACHINE_VMSWITCH_HH
