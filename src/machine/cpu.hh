/**
 * @file
 * A CPU core model.
 *
 * mintcb CPUs are latency/state models, not instruction interpreters:
 * each core owns a virtual timeline, a privilege ring, an interrupt flag,
 * and the late-launch-relevant architectural state. "Executing code" means
 * charging time to the core's timeline while C++ callbacks perform the
 * code's effects against the simulated platform.
 */

#ifndef MINTCB_MACHINE_CPU_HH
#define MINTCB_MACHINE_CPU_HH

#include <cstdint>
#include <optional>

#include "common/simtime.hh"
#include "common/types.hh"

namespace mintcb::machine
{

/** One CPU core. */
class Cpu
{
  public:
    Cpu(CpuId id, double freq_ghz) : id_(id), freqGhz_(freq_ghz) {}

    CpuId id() const { return id_; }
    double freqGhz() const { return freqGhz_; }

    /** @name Virtual clock. @{ */
    Timeline &clock() { return clock_; }
    const Timeline &clock() const { return clock_; }
    TimePoint now() const { return clock_.now(); }
    void advance(Duration d) { clock_.advance(d); }
    /** @} */

    /** @name Privilege and interrupts. @{ */
    int ring() const { return ring_; }
    void setRing(int ring) { ring_ = ring; }
    bool interruptsEnabled() const { return interruptsEnabled_; }
    void setInterruptsEnabled(bool on) { interruptsEnabled_ = on; }
    /** @} */

    /**
     * Reinitialize to the well-known trusted state a late launch
     * establishes: flat 32-bit protected mode, ring 0, interrupts off
     * (Section 2.2.1). Charges the (tiny) hardware cost.
     */
    void resetToTrustedState(Duration init_cost);

    /**
     * Clear architectural and microarchitectural state that could leak a
     * PAL's secrets across a context switch (Section 5.3.1: "any
     * microarchitectural state that may persist long enough to leak the
     * secrets of a PAL must be cleared upon PAL yield").
     */
    void secureStateClear(Duration flush_cost);

    /** Number of secure state clears performed (test observability). */
    std::uint64_t secureClears() const { return secureClears_; }

    /** @name Special idle state.
     * During SKINIT/SENTER, "the late launch operation requires all but
     * one of the processors to be in a special idle state" (Section 4.2).
     * @{ */
    bool idleForLateLaunch() const { return idleForLateLaunch_; }
    void setIdleForLateLaunch(bool idle) { idleForLateLaunch_ = idle; }
    /** @} */

    /** @name PAL preemption timer (recommendation, Section 5.3.1). @{ */
    void armPreemptionTimer(Duration budget) { preemptionBudget_ = budget; }
    void disarmPreemptionTimer() { preemptionBudget_.reset(); }
    std::optional<Duration> preemptionBudget() const
    {
        return preemptionBudget_;
    }
    /** @} */

    /**
     * Model the core running untrusted/legacy instructions for @p d of
     * virtual time; returns the abstract work units retired (one unit per
     * nanosecond-GHz) so throughput experiments can count progress.
     */
    std::uint64_t runLegacyWork(Duration d);

    /** Total legacy work units retired on this core. */
    std::uint64_t legacyWorkDone() const { return legacyWork_; }

  private:
    CpuId id_;
    double freqGhz_;
    Timeline clock_;
    int ring_ = 0;
    bool interruptsEnabled_ = true;
    bool idleForLateLaunch_ = false;
    std::uint64_t secureClears_ = 0;
    std::uint64_t legacyWork_ = 0;
    std::optional<Duration> preemptionBudget_;
};

} // namespace mintcb::machine

#endif // MINTCB_MACHINE_CPU_HH
